//! Offline API shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` MPMC channels (`unbounded`/`bounded`,
//! cloneable senders *and* receivers) over a `Mutex<VecDeque>` + condvars,
//! and `crossbeam::deque` work-stealing queues (`Injector`/`Worker`/
//! `Stealer`). Semantics match upstream where this workspace relies on
//! them: receivers drain queued messages after all senders drop; sends fail
//! once every receiver is gone; `bounded` blocks producers at capacity;
//! deque owners push/pop LIFO while stealers take FIFO from the other end.

pub mod deque {
    //! Work-stealing deques, API-compatible with `crossbeam-deque`.
    //!
    //! The shim trades the lock-free Chase-Lev algorithm for a plain
    //! `Mutex<VecDeque>`; the *scheduling* semantics the thread pool relies
    //! on are preserved exactly: the owning thread pushes and pops at the
    //! back (LIFO, so a recursively split task keeps working on its own
    //! freshest half), while [`Stealer`]s and the global [`Injector`] hand
    //! out work from the front (FIFO, so thieves take the oldest — largest —
    //! pending piece).

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// A race was lost; try again (the shim never returns this, but the
        /// variant exists so callers are written against the upstream API).
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// True if the steal succeeded.
        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        /// True if the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// The owning half of a work-stealing deque: LIFO push/pop at the back.
    #[derive(Debug)]
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// A new LIFO deque (the flavor work-stealing pools use).
        pub fn new_lifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Push a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.inner.lock().unwrap().push_back(task);
        }

        /// Pop the most recently pushed task (LIFO).
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap().pop_back()
        }

        /// A handle other threads use to steal from the front.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: self.inner.clone(),
            }
        }

        /// True when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }
    }

    /// A thief's handle onto another thread's deque: FIFO steal from the
    /// front. Cloneable and shareable.
    #[derive(Debug)]
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steal the oldest queued task.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// True when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }
    }

    /// A global FIFO injection queue feeding a pool of workers.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueue a task at the back.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Steal the oldest queued task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// True when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().unwrap().len()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn owner_is_lifo_thief_is_fifo() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(w.pop(), Some(3), "owner pops newest");
            assert_eq!(s.steal(), Steal::Success(1), "thief takes oldest");
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
            assert_eq!(s.steal(), Steal::Empty);
        }

        #[test]
        fn injector_is_fifo() {
            let inj = Injector::new();
            inj.push("a");
            inj.push("b");
            assert_eq!(inj.len(), 2);
            assert_eq!(inj.steal(), Steal::Success("a"));
            assert_eq!(inj.steal(), Steal::Success("b"));
            assert!(inj.steal().is_empty());
        }

        #[test]
        fn stealers_work_across_threads() {
            let w = Worker::new_lifo();
            for i in 0..1000 {
                w.push(i);
            }
            let thieves: Vec<_> = (0..4)
                .map(|_| {
                    let s = w.stealer();
                    std::thread::spawn(move || {
                        let mut got = 0usize;
                        while s.steal().is_success() {
                            got += 1;
                        }
                        got
                    })
                })
                .collect();
            let total: usize = thieves.into_iter().map(|t| t.join().unwrap()).sum();
            assert_eq!(total + w.len(), 1000);
        }

        #[test]
        fn steal_success_accessor() {
            assert_eq!(Steal::Success(7).success(), Some(7));
            assert_eq!(Steal::<i32>::Empty.success(), None);
            assert!(!Steal::<i32>::Retry.is_success());
        }
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Create a bounded MPMC channel holding at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a non-blocking receive attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// Empty and all senders dropped.
        Disconnected,
    }

    /// Outcome of a timed receive attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// Empty and all senders dropped.
        Disconnected,
    }

    /// The producing half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The consuming half; cloneable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueue a message, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.queue.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.inner.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.inner.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Sender {{ .. }}")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Receiver {{ .. }}")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap().senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.queue.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.queue.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.not_empty.wait(st).unwrap();
            }
        }

        /// Like [`Receiver::recv`] with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.queue.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .inner
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.queue.lock().unwrap();
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap().receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.queue.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.inner.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn drains_after_sender_drop() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn try_and_timeout_variants() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.try_recv(), Ok(9));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = unbounded::<usize>();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = 0usize;
                        while rx.recv().is_ok() {
                            got += 1;
                        }
                        got
                    })
                })
                .collect();
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 1000);
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded::<usize>(2);
            tx.send(0).unwrap();
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || {
                tx.send(2).unwrap(); // blocks until a slot frees
                tx.send(3).unwrap();
            });
            std::thread::sleep(Duration::from_millis(10));
            for i in 0..4 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            t.join().unwrap();
        }
    }
}
