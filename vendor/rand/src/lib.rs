//! Offline API shim for the `rand` crate.
//!
//! Implements the slice of the rand 0.8 API this workspace uses:
//! `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and the `Rng` extension
//! methods `gen`, `gen_range`, `gen_bool`. The generator is SplitMix64 —
//! fast, full 64-bit period, and deterministic in the seed (which the
//! engine's replay-based fault tolerance depends on).

use std::ops::Range;

/// Low-level generator interface: a source of 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, matching `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Value types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draw one value from the uniform/standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Element types [`Rng::gen_range`] can produce, mirroring
/// `rand::distributions::uniform::SampleUniform` so integer literals infer
/// their type from the call site.
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty gen_range");
        let unit = f64::sample(rng);
        let v = lo + (hi - lo) * unit;
        // Guard against rounding up to the exclusive bound.
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

/// User-facing random-value methods, auto-implemented for every generator.
pub trait Rng: RngCore {
    /// A value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range` (half-open).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: one 64-bit state word, full period, passes BigCrush.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..7);
            assert!((-5..7).contains(&v));
            let u = rng.gen_range(3usize..4);
            assert_eq!(u, 3);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "{b}");
        }
    }
}
