//! Offline API shim for the `criterion` benchmark harness.
//!
//! Implements the subset this workspace uses — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::{iter, iter_batched}`,
//! `criterion_group!`/`criterion_main!` — with a simple but honest
//! measurement loop: a warm-up pass, then `sample_size` timed samples, and
//! a median/mean/min report per benchmark on stdout.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing policy for [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh input per iteration.
    PerIteration,
    /// Small inputs (shim treats the same as `PerIteration`).
    SmallInput,
    /// Large inputs (shim treats the same as `PerIteration`).
    LargeInput,
}

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/name` identifier.
    pub id: String,
    /// Median per-iteration time.
    pub median: Duration,
    /// Mean per-iteration time.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Samples taken.
    pub samples: usize,
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warmup: Duration::from_millis(300),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the default number of timed samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let warmup = self.warmup;
        let m = run_bench(id, sample_size, warmup, f);
        self.results.push(m);
        self
    }

    /// All measurements recorded so far (shim extension, used to export
    /// numbers without re-parsing stdout).
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Benchmark one function.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let full = format!("{}/{}", self.name, id);
        let m = run_bench(&full, sample_size, self.criterion.warmup, f);
        self.criterion.results.push(m);
        self
    }

    /// Finish the group (formatting no-op in the shim).
    pub fn finish(self) {}
}

fn run_bench<F>(id: &str, samples: usize, warmup: Duration, mut f: F) -> Measurement
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run until the warm-up budget elapses at least once.
    let start = Instant::now();
    while start.elapsed() < warmup {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters == 0 {
            break; // closure never called iter(); avoid a spin
        }
    }
    let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            per_iter.push(b.elapsed / b.iters as u32);
        }
    }
    per_iter.sort();
    let median = per_iter
        .get(per_iter.len() / 2)
        .copied()
        .unwrap_or_default();
    let min = per_iter.first().copied().unwrap_or_default();
    let mean = if per_iter.is_empty() {
        Duration::ZERO
    } else {
        per_iter.iter().sum::<Duration>() / per_iter.len() as u32
    };
    println!("{id:<48} time: [min {min:>12.3?}  med {median:>12.3?}  mean {mean:>12.3?}]");
    Measurement {
        id: id.to_string(),
        median,
        mean,
        min,
        samples: per_iter.len(),
    }
}

/// Passed to benchmark closures; times the measured routine.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` once per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t = Instant::now();
        let out = routine();
        self.elapsed += t.elapsed();
        self.iters += 1;
        black_box(out);
    }

    /// Time `routine` on a fresh input from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t = Instant::now();
        let out = routine(input);
        self.elapsed += t.elapsed();
        self.iters += 1;
        black_box(out);
    }
}

/// Collect benchmark functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let m = &c.measurements()[0];
        assert_eq!(m.id, "noop");
        assert_eq!(m.samples, 3);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("x", |b| {
            b.iter_batched(|| 5u64, |v| v * 2, BatchSize::PerIteration)
        });
        g.finish();
        assert_eq!(c.measurements()[0].id, "grp/x");
    }
}
