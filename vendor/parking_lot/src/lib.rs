//! Offline API shim for `parking_lot`: a `Mutex` whose `lock()` returns the
//! guard directly (no poisoning), implemented over `std::sync::Mutex`.

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// A mutual-exclusion lock with non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard released on drop.
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
