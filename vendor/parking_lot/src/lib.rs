//! Offline API shim for `parking_lot`: a `Mutex` whose `lock()` returns the
//! guard directly (no poisoning) and a matching `Condvar`, implemented over
//! `std::sync`.

use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard};
use std::time::Duration;

/// A mutual-exclusion lock with non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard released on drop.
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Result of a timed wait: reports whether the wait timed out.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed (not a
    /// notification).
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable paired with [`Mutex`], parking_lot-style: `wait_for`
/// updates the guard in place instead of consuming it.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Park on the condvar until notified, releasing `guard`'s lock while
    /// parked and re-acquiring it before returning. Like every condvar,
    /// spurious wakeups are possible — callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's `wait` consumes the guard and returns a fresh one;
        // parking_lot's signature updates it in place.
        // SAFETY: `ptr::read` duplicates the guard, but exactly one of the
        // two copies is live at any point: `moved` is consumed by `wait`,
        // and the guard it returns (possibly via the poison branch) is
        // written back over `*guard` before returning. `wait` itself does
        // not unwind (lock re-acquisition aborts on failure), so no path
        // leaves `*guard` logically dropped while the caller still owns it.
        unsafe {
            let moved = std::ptr::read(guard);
            let restored = match self.inner.wait(moved) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            std::ptr::write(guard, restored);
        }
    }

    /// Park on the condvar for at most `timeout`, releasing `guard`'s lock
    /// while parked and re-acquiring it before returning.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        // std's `wait_timeout` consumes the guard and returns a fresh one;
        // parking_lot's signature updates it in place.
        // SAFETY: same single-ownership dance as `wait` above — `moved` is
        // consumed by `wait_timeout`, the returned guard (or the one
        // recovered from the poison error) is written back exactly once,
        // and no intervening code can unwind between the read and write.
        unsafe {
            let moved = std::ptr::read(guard);
            let (restored, timed_out) = match self.inner.wait_timeout(moved, timeout) {
                Ok((g, r)) => (g, r.timed_out()),
                Err(poisoned) => {
                    let (g, r) = poisoned.into_inner();
                    (g, r.timed_out())
                }
            };
            std::ptr::write(guard, restored);
            WaitTimeoutResult(timed_out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_times_out_without_notification() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_untimed_wait_wakes_on_notify() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wakes_on_notify_all() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                let r = cv2.wait_for(&mut g, Duration::from_secs(5));
                assert!(!r.timed_out());
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
