//! Offline shim for the `memmap2` crate: a read-only file memory map.
//!
//! The build environment has no crates.io access (vendor/README.md), so the
//! out-of-core storage tier wraps raw `mmap(2)` here instead of depending on
//! the real `memmap2`. The surface is the subset the workspace uses — a
//! read-only, private, `Send + Sync` mapping dereferencing to `[u8]` — plus
//! one extension the real crate spells `advise`: [`Mmap::advise_dontneed`],
//! which drops the physical pages of a sub-range so a block cache can evict
//! mapped column chunks (the kernel refaults identical bytes from the file
//! on the next access).
//!
//! On non-unix targets mapping is unavailable and [`Mmap::map`] returns
//! `Unsupported`; callers fall back to their pread/heap tiers.

use std::fs::File;
use std::io;
use std::ops::Deref;

/// The system page size (cached; 4096 when it cannot be queried). Mapping
/// bases are page-aligned, so sub-range advice must be too.
pub fn page_size() -> usize {
    use std::sync::OnceLock;
    static PAGE: OnceLock<usize> = OnceLock::new();
    *PAGE.get_or_init(|| {
        #[cfg(unix)]
        {
            // SAFETY: `sysconf` is a pure query with no pointer arguments
            // or global side effects; any `name` value is safe to pass.
            let sz = unsafe { sys::sysconf(sys::SC_PAGESIZE) };
            if sz > 0 {
                return sz as usize;
            }
        }
        4096
    })
}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 0x1;
    pub const MAP_PRIVATE: i32 = 0x02;
    pub const MADV_DONTNEED: i32 = 4;
    #[cfg(target_os = "linux")]
    pub const SC_PAGESIZE: i32 = 30;
    #[cfg(not(target_os = "linux"))]
    pub const SC_PAGESIZE: i32 = 29;

    // The libc symbols std already links; declaring them directly keeps the
    // shim dependency-free.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
        pub fn sysconf(name: i32) -> i64;
    }
}

/// A read-only, private memory map of an entire file.
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is read-only (PROT_READ) and the file's lifetime is
// not borrowed — the kernel keeps the backing alive via the mapping itself —
// so ownership can move between threads freely.
unsafe impl Send for Mmap {}
// SAFETY: all access through `&Mmap` is read-only; concurrent readers of an
// immutable mapping cannot race.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `file` read-only in its entirety.
    ///
    /// # Safety
    ///
    /// The caller must ensure the underlying file is not truncated or
    /// rewritten while the map is alive: unix gives no way to make a
    /// file-backed mapping immune to outside modification, so reads through
    /// the map could otherwise observe torn data or fault. The storage
    /// layer only maps sealed, immutable `hvc` files.
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 {
            // mmap rejects zero-length maps; represent as a dangling map.
            return Ok(Mmap {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
            });
        }
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            let ptr = sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            );
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mmap {
                ptr: ptr as *const u8,
                len,
            })
        }
        #[cfg(not(unix))]
        {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "memory mapping is only available on unix targets",
            ))
        }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length mapping.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop the physical pages backing `offset .. offset + len` (rounded out
    /// to page boundaries, clipped to the mapping). The next access refaults
    /// the same bytes from the file — this is the eviction primitive of the
    /// block cache. `offset` must be page-aligned.
    pub fn advise_dontneed(&self, offset: usize, len: usize) -> io::Result<()> {
        if len == 0 || self.len == 0 {
            return Ok(());
        }
        if !offset.is_multiple_of(page_size()) || offset >= self.len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "advise range must start page-aligned inside the mapping",
            ));
        }
        let len = len.min(self.len - offset);
        #[cfg(unix)]
        {
            // SAFETY: `offset < self.len` and `len` clipped above keep the
            // range inside this mapping; MADV_DONTNEED on a file-backed
            // private read-only map only drops clean physical pages — the
            // virtual range stays valid and refaults from the file.
            let rc = unsafe {
                sys::madvise(
                    self.ptr.add(offset) as *mut std::ffi::c_void,
                    len,
                    sys::MADV_DONTNEED,
                )
            };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
        #[cfg(not(unix))]
        {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "madvise is only available on unix targets",
            ))
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        // SAFETY: `ptr` is either a live `len`-byte mapping owned by self
        // (unmapped only in Drop) or dangling with `len == 0`, which
        // `from_raw_parts` permits. Immutability of the bytes is the
        // caller contract documented on `Mmap::map`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len > 0 {
            // SAFETY: `len > 0` implies `ptr` came from a successful `mmap`
            // of exactly `len` bytes, and Drop runs at most once.
            unsafe {
                sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
            }
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir().join("memmap2-shim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.bin");
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&data)
            .unwrap();
        let f = File::open(&path).unwrap();
        // SAFETY: the file was fully written and closed above; nothing
        // mutates it while the map lives.
        let m = unsafe { Mmap::map(&f) }.unwrap();
        assert_eq!(&m[..], &data[..]);
        // Dropping pages and re-reading yields the same bytes.
        m.advise_dontneed(0, m.len()).unwrap();
        assert_eq!(&m[..], &data[..]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_empty() {
        let dir = std::env::temp_dir().join("memmap2-shim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::File::create(&path).unwrap();
        let f = File::open(&path).unwrap();
        // SAFETY: empty file created above; nothing mutates it while the
        // map lives.
        let m = unsafe { Mmap::map(&f) }.unwrap();
        assert!(m.is_empty());
        assert_eq!(&m[..], &[] as &[u8]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unaligned_advise_rejected() {
        let dir = std::env::temp_dir().join("memmap2-shim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.bin");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&[1u8; 64])
            .unwrap();
        let f = File::open(&path).unwrap();
        // SAFETY: the file was fully written and closed above; nothing
        // mutates it while the map lives.
        let m = unsafe { Mmap::map(&f) }.unwrap();
        assert!(m.advise_dontneed(1, 10).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
