//! Offline API shim for the `bytes` crate.
//!
//! Provides cheap-to-clone immutable byte buffers (`Bytes`), a growable
//! builder (`BytesMut`), and the `Buf`/`BufMut` reader/writer traits — the
//! exact surface this workspace consumes. See `vendor/README.md`.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
///
/// Backed by an `Arc<[u8]>` plus a window; `clone` and `slice` are O(1) and
/// share storage, matching the upstream crate's semantics.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static byte slice (zero-copy in spirit; one allocation here).
    pub fn from_static(b: &'static [u8]) -> Self {
        Bytes::from(b.to_vec())
    }

    /// Copy an arbitrary slice into a new buffer.
    pub fn copy_from_slice(b: &[u8]) -> Self {
        Bytes::from(b.to_vec())
    }

    /// Length of the visible window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-window sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the window out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes::from_static(b)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(b: &'static [u8; N]) -> Self {
        Bytes::from_static(b)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// Reader over a byte source, advancing an internal cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread window.
    fn chunk(&self) -> &[u8];
    /// Advance the cursor.
    fn advance(&mut self, n: usize);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        f64::from_le_bytes(raw)
    }

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Split off the next `n` bytes as an owned buffer.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let out = Bytes::from(self.chunk()[..n].to_vec());
        self.advance(n);
        out
    }

    /// Fill `dst` from the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Writer trait appending to a growable buffer.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, b: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, b: &[u8]) {
        self.extend_from_slice(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.slice(..2).as_ref(), &[2, 3]);
    }

    #[test]
    fn buf_reads() {
        let mut m = BytesMut::with_capacity(0);
        m.put_u8(7);
        m.put_f64_le(1.5);
        let mut b = m.freeze();
        assert_eq!(b.remaining(), 9);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_f64_le(), 1.5);
        assert!(!b.has_remaining());
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.copy_to_bytes(2);
        assert_eq!(head.as_ref(), &[1, 2]);
        assert_eq!(b.as_ref(), &[3, 4]);
    }
}
