//! Offline API shim for the `proptest` crate.
//!
//! Implements the property-testing surface this workspace uses: the
//! [`proptest!`] macro, `prop_assert*`, [`prop_oneof!`], [`Strategy`] with
//! `prop_map`, range/tuple/collection/option/string-pattern strategies, and
//! [`any`]. Each property runs for [`ProptestConfig::cases`] inputs drawn
//! from a deterministic per-test seed (override the count with the
//! `PROPTEST_CASES` environment variable). Failing cases report the case
//! number and message but are **not** shrunk.

/// Deterministic generator driving value production for one test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Construct from a case seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits (SplitMix64).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was falsified.
    Fail(String),
    /// The input was rejected (filtered); not counted as failure.
    Reject(String),
}

impl TestCaseError {
    /// A falsification with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drive a property for `cfg.cases` deterministic cases. Used by the
/// [`proptest!`] macro expansion; panics on the first falsified case.
pub fn run_cases<F>(cfg: ProptestConfig, test_name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cfg.cases);
    // Deterministic per-test seed: FNV-1a over the test path.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    for case in 0..cases {
        let mut rng = TestRng::new(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match f(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {test_name}: case {case}/{cases} failed: {msg}");
            }
        }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type produced.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase for heterogeneous composition ([`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produce an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mostly finite values across magnitudes; occasionally special.
        match rng.below(20) {
            0 => f64::from_bits(rng.next_u64()), // any bit pattern (NaN, subnormal...)
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -0.0,
            _ => {
                let mag = (rng.unit_f64() * 600.0) - 300.0; // exponent range ~1e±300
                let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
                sign * rng.unit_f64() * 10f64.powf(mag)
            }
        }
    }
}

/// Strategy producing arbitrary values of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// String pattern strategies
// ---------------------------------------------------------------------------

/// `&str` acts as a regex-like string strategy, as in upstream proptest.
///
/// Supported syntax (the subset this workspace uses): literal characters,
/// character classes `[a-z0-9,' ]` with ranges and escapes, the printable
/// class `\PC`, and bounded repetition `{lo,hi}` applied to the previous
/// atom.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

#[derive(Debug, Clone)]
enum Atom {
    /// Choose uniformly among these chars.
    Class(Vec<char>),
    /// Any printable (non-control) char.
    Printable,
    /// A literal char.
    Literal(char),
}

fn parse_pattern(pattern: &str) -> Vec<(Atom, u32, u32)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms: Vec<(Atom, u32, u32)> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        set.push(chars[i + 1]);
                        i += 2;
                        continue;
                    }
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                set.push(c);
                            }
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                Atom::Class(set)
            }
            '\\' if i + 2 < chars.len() && chars[i + 1] == 'P' && chars[i + 2] == 'C' => {
                i += 3;
                Atom::Printable
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional {lo,hi} repetition.
        let (mut lo, mut hi) = (1u32, 1u32);
        if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed repetition brace")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            if let Some((a, b)) = body.split_once(',') {
                lo = a.trim().parse().expect("repetition lower bound");
                hi = b.trim().parse().expect("repetition upper bound");
            } else {
                lo = body.trim().parse().expect("repetition count");
                hi = lo;
            }
            i = close + 1;
        }
        atoms.push((atom, lo, hi));
    }
    atoms
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (atom, lo, hi) in parse_pattern(pattern) {
        let n = if hi > lo {
            lo + rng.below((hi - lo + 1) as u64) as u32
        } else {
            lo
        };
        for _ in 0..n {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => {
                    out.push(set[rng.below(set.len() as u64) as usize]);
                }
                Atom::Printable => {
                    // ASCII printable most of the time, occasional BMP chars.
                    let c = if rng.below(8) > 0 {
                        char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap()
                    } else {
                        loop {
                            let c = char::from_u32(0xA0 + rng.below(0xFF00) as u32);
                            if let Some(c) = c {
                                if !c.is_control() {
                                    break c;
                                }
                            }
                        }
                    };
                    out.push(c);
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Collection & option strategies
// ---------------------------------------------------------------------------

/// Strategies for collections of values.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Inclusive-exclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<T>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            // Insert up to n elements; duplicates collapse, as upstream.
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Sets of `element` values with at most `size` elements.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Strategies for `Option<T>`.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `Some` with a given probability.
    pub struct Weighted<S> {
        prob_some: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < self.prob_some {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some(value)` with probability `prob_some`, else `None`.
    pub fn weighted<S: Strategy>(prob_some: f64, inner: S) -> Weighted<S> {
        Weighted { prob_some, inner }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
                |__pt_rng: &mut $crate::TestRng|
                    -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $pat = $crate::Strategy::generate(&($strat), __pt_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

/// Assert a condition inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), a, b,
            )));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a,
            )));
        }
    }};
}

/// Uniform choice among heterogeneous strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 3usize..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&v));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn collections_respect_sizes(
            mut v in crate::collection::vec(0u32..100, 2..5),
            s in crate::collection::btree_set(0u32..100, 0..8),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(s.len() < 8);
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![Just(0i64), any::<i64>().prop_map(|v| v.saturating_abs())],
        ) {
            prop_assert!(x >= 0);
        }

        #[test]
        fn string_patterns_match_classes(s in "[a-z]{0,8}", p in "\\PC{0,24}") {
            prop_assert!(s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(p.chars().count() <= 24);
            prop_assert!(p.chars().all(|c| !c.is_control()));
        }

        #[test]
        fn options_are_weighted(o in crate::option::weighted(0.5, 0u8..10)) {
            if let Some(v) = o {
                prop_assert!(v < 10);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        crate::run_cases(ProptestConfig::with_cases(10), "det", |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        crate::run_cases(ProptestConfig::with_cases(10), "det", |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_panic_with_case_info() {
        crate::run_cases(ProptestConfig::with_cases(5), "fail", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
