//! Progressive visualization: partial results and cancellation.
//!
//! Paper §5.3: aggregation nodes propagate partially merged summaries every
//! 100 ms, so "the client sees an initial visualization quickly and
//! subsequently sees more precise results", with a progress bar and a
//! cancel button. This example slows the leaves down (cold-style work) and
//! prints each partial update as it arrives, then demonstrates cancelling.
//!
//! ```sh
//! cargo run -p hillview-examples --bin progressive
//! ```

use hillview_columnar::udf::UdfRegistry;
use hillview_core::dataset::{FnSource, SourceRegistry};
use hillview_core::progress::Partial;
use hillview_core::{Cluster, ClusterConfig, Engine, Spreadsheet};
use hillview_data::{generate_flights, FlightsConfig};
use hillview_net::Wire;
use hillview_sketch::histogram::HistogramSummary;
use hillview_storage::partition_table;
use hillview_viz::display::DisplaySpec;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut sources = SourceRegistry::new();
    sources.register(Arc::new(FnSource::new("flights", |w, _n, mp, _s| {
        Ok(partition_table(
            &generate_flights(&FlightsConfig::new(2_500_000, w as u64)),
            mp,
        ))
    })));
    let cluster = Cluster::new(
        ClusterConfig {
            workers: 2,
            threads_per_worker: 1, // deliberately starved: leaves trickle in
            micropartition_rows: 30_000,
            batch_interval: Duration::from_millis(25),
            ..Default::default()
        },
        sources,
        UdfRegistry::with_builtins(),
    );
    let engine = Arc::new(Engine::new(cluster));
    let sheet = Spreadsheet::open(engine, "flights", 0, DisplaySpec::new(48, 10)).expect("open");
    // Chart the bulk of the distribution (zooming first keeps the demo
    // chart readable; the heavy delay tail would otherwise own the range).
    let mut sheet = sheet
        .filtered(hillview_columnar::Predicate::range(
            "DepDelay", -30.0, 120.0,
        ))
        .expect("zoom filter");

    // Stream partial histograms to the "browser": each update re-renders.
    let updates = Arc::new(Mutex::new(0usize));
    let updates2 = updates.clone();
    sheet.on_partial = Some(Arc::new(move |p: &Partial| {
        let mut n = updates2.lock();
        *n += 1;
        if let Ok(h) = HistogramSummary::from_bytes(p.summary.clone()) {
            let bar = "#".repeat((p.fraction * 40.0) as usize);
            println!(
                "partial {:>2}: [{bar:<40}] {:>5.1}%  rows so far: {}",
                *n,
                p.fraction * 100.0,
                h.rows_inspected
            );
        }
    }));

    println!("== Progressive histogram over 2.4M rows on 2 starved workers ==");
    let (chart, _, stats) = sheet
        .histogram_with_cdf("DepDelay", Some(24))
        .expect("histogram");
    println!(
        "\nfinal chart after {:.2}s ({} partial updates, first at {:.2}s):",
        stats.duration.as_secs_f64(),
        updates.lock(),
        stats.first_partial.unwrap_or_default().as_secs_f64(),
    );
    println!("{}", chart.to_ascii(8));

    // Cancellation: fire a query and cancel it after the first partial.
    println!("== Cancellation: stop after the first partial ==");
    let cancel = sheet.cancel.clone();
    sheet.on_partial = Some(Arc::new(move |p: &Partial| {
        println!("  partial at {:.1}% — user hits cancel", p.fraction * 100.0);
        cancel.cancel();
    }));
    let started = std::time::Instant::now();
    let result = sheet.histogram_with_cdf("ArrDelay", Some(24));
    println!(
        "  returned in {:.2}s: {}",
        started.elapsed().as_secs_f64(),
        match result {
            Ok((chart, ..)) => format!("partial chart with {} bars kept", chart.heights_px.len()),
            Err(e) => format!("{e}"),
        }
    );
}
