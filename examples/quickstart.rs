//! Quickstart: load a dataset, browse it, chart it.
//!
//! ```sh
//! cargo run -p hillview-examples --bin quickstart
//! ```

use hillview_columnar::udf::UdfRegistry;
use hillview_core::dataset::{FnSource, SourceRegistry};
use hillview_core::{Cluster, ClusterConfig, Engine, Spreadsheet};
use hillview_data::{generate_flights, FlightsConfig};
use hillview_storage::partition_table;
use hillview_viz::display::DisplaySpec;
use std::sync::Arc;

fn main() {
    // 1. Register a data source. Hillview never ingests or re-partitions:
    //    it reads whatever horizontal shards the storage layer provides.
    let mut sources = SourceRegistry::new();
    sources.register(Arc::new(FnSource::new(
        "flights",
        |worker, _n, mp, _snap| {
            let table = generate_flights(&FlightsConfig::new(200_000, worker as u64));
            Ok(partition_table(&table, mp))
        },
    )));

    // 2. Build a simulated cluster: 4 workers × 4 threads.
    let cluster = Cluster::new(
        ClusterConfig {
            workers: 4,
            threads_per_worker: 4,
            micropartition_rows: 50_000,
            ..Default::default()
        },
        sources,
        UdfRegistry::with_builtins(),
    );
    let engine = Arc::new(Engine::new(cluster));

    // 3. Open a spreadsheet on the dataset.
    let sheet =
        Spreadsheet::open(engine, "flights", 0, DisplaySpec::new(72, 16)).expect("load flights");

    let (rows, _) = sheet.row_count().expect("count");
    println!("Loaded {rows} rows across 4 workers.\n");

    // 4. Tabular view: first page sorted by departure delay.
    let (page, stats) = sheet
        .sort_view(&["DepDelay", "Carrier", "Origin"], 8)
        .expect("sort view");
    println!(
        "== First page by DepDelay ({} root bytes) ==",
        stats.root_bytes
    );
    println!("{}", page.to_text());

    // 5. Chart: histogram of departure delays, rendered at 72×16 "pixels".
    let (chart, cdf, stats) = sheet
        .histogram_with_cdf("DepDelay", Some(36))
        .expect("histogram");
    println!(
        "== DepDelay histogram (max bar = {} flights, {} bytes on the wire) ==",
        chart.max_count, stats.root_bytes
    );
    println!("{}", chart.to_ascii(12));
    println!(
        "CDF endpoints: {}..{} px over {} sampled rows\n",
        cdf.heights_px.first().unwrap(),
        cdf.heights_px.last().unwrap(),
        cdf.rows
    );

    // 6. Analyses: distinct counts and heavy hitters.
    let (distinct, _) = sheet.distinct_count("TailNum").expect("distinct");
    println!("Distinct tail numbers (HyperLogLog): ≈{distinct:.0}");
    let (hh, _) = sheet
        .heavy_hitters_streaming("Carrier", 14)
        .expect("heavy hitters");
    println!("Top carriers:\n{}", hh.to_text());
}
