//! Log explorer: drilling into datacenter telemetry.
//!
//! The paper motivates trillion-cell spreadsheets with server logs (§3.1).
//! This example browses a synthetic log table: find the noisy hosts, chart
//! latency, search messages, and drill into errors.
//!
//! ```sh
//! cargo run -p hillview-examples --bin log_explorer
//! ```

use hillview_columnar::udf::UdfRegistry;
use hillview_columnar::{Predicate, StrMatchKind};
use hillview_core::dataset::{FnSource, SourceRegistry};
use hillview_core::{Cluster, ClusterConfig, Engine, Spreadsheet};
use hillview_data::{generate_logs, LogsConfig};
use hillview_storage::partition_table;
use hillview_viz::display::DisplaySpec;
use std::sync::Arc;

fn main() {
    let mut sources = SourceRegistry::new();
    sources.register(Arc::new(FnSource::new("logs", |w, _n, mp, _s| {
        Ok(partition_table(
            &generate_logs(&LogsConfig::new(300_000, w as u64 + 1)),
            mp,
        ))
    })));
    let cluster = Cluster::new(
        ClusterConfig {
            workers: 4,
            threads_per_worker: 4,
            micropartition_rows: 50_000,
            ..Default::default()
        },
        sources,
        UdfRegistry::with_builtins(),
    );
    let engine = Arc::new(Engine::new(cluster));
    let sheet = Spreadsheet::open(engine, "logs", 0, DisplaySpec::new(64, 12)).expect("open");
    let (rows, _) = sheet.row_count().unwrap();
    println!("Browsing {rows} log rows.\n");

    println!("== Which hosts produce the most log volume? (heavy hitters) ==");
    let (hh, _) = sheet.heavy_hitters_streaming("Server", 20).unwrap();
    print!("{}", hh.to_text());

    println!("\n== Latency distribution (log-ish right tail) ==");
    let capped = sheet
        .filtered(Predicate::range("LatencyMs", 0.0, 200.0))
        .unwrap();
    let (chart, _, _) = capped.histogram_with_cdf("LatencyMs", Some(32)).unwrap();
    println!("{}", chart.to_ascii(10));

    println!("== Errors only: which hosts? ==");
    let errors = sheet.filtered(Predicate::equals("Level", "ERROR")).unwrap();
    let (err_rows, _) = errors.row_count().unwrap();
    let (hh, _) = errors.heavy_hitters_streaming("Server", 20).unwrap();
    println!("{err_rows} error rows; top sources:");
    print!("{}", hh.to_text());

    println!("\n== Error latency vs overall (derived views share storage) ==");
    let (all_m, _) = sheet.moments("LatencyMs", 2).unwrap();
    let (err_m, _) = errors.moments("LatencyMs", 2).unwrap();
    println!(
        "overall mean {:.1} ms; errors mean {:.1} ms",
        all_m.mean().unwrap(),
        err_m.mean().unwrap()
    );

    println!("\n== Find: first TLS failure in time order ==");
    let (found, _) = sheet
        .find_text(
            "Message",
            "TLS handshake",
            StrMatchKind::Substring,
            false,
            &["Timestamp"],
            None,
        )
        .unwrap();
    match found.first {
        Some((key, row)) => {
            println!(
                "{} matches; first at {} → {}",
                found.matches_total,
                key.values()[0],
                row
            );
        }
        None => println!("no matches"),
    }

    println!("\n== Status × level stacked histogram ==");
    let (stacked, _, _) = sheet
        .stacked_histogram_with_cdf("LatencyMs", "Status")
        .unwrap();
    println!(
        "{} bars; tallest bar = {} rows",
        stacked.bar_px.len(),
        stacked.max_count
    );
}
