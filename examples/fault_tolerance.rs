//! Fault tolerance: soft state, crash, lazy replay, deterministic replay.
//!
//! Paper §5.7–5.8: workers are stateless; the root keeps a redo log and
//! reconstructs lost datasets on demand by replaying lineage (loads,
//! filters, maps) with their original seeds — so a recovered cluster
//! produces bit-identical results.
//!
//! ```sh
//! cargo run -p hillview-examples --bin fault_tolerance
//! ```

use hillview_columnar::udf::UdfRegistry;
use hillview_columnar::Predicate;
use hillview_core::dataset::{FnSource, SourceRegistry};
use hillview_core::{Cluster, ClusterConfig, Engine, Spreadsheet};
use hillview_data::{generate_flights, FlightsConfig};
use hillview_storage::partition_table;
use hillview_viz::display::DisplaySpec;
use std::sync::Arc;

fn main() {
    let mut sources = SourceRegistry::new();
    sources.register(Arc::new(FnSource::new("flights", |w, _n, mp, _s| {
        Ok(partition_table(
            &generate_flights(&FlightsConfig::new(150_000, w as u64)),
            mp,
        ))
    })));
    let mut udfs = UdfRegistry::with_builtins();
    udfs.register_sum("TotalDelay", "DepDelay", "ArrDelay");
    let cluster = Cluster::new(
        ClusterConfig {
            workers: 3,
            threads_per_worker: 2,
            micropartition_rows: 50_000,
            ..Default::default()
        },
        sources,
        udfs,
    );
    let engine = Arc::new(Engine::new(cluster));
    let sheet =
        Spreadsheet::open(engine.clone(), "flights", 0, DisplaySpec::new(60, 12)).expect("open");
    sheet.set_seed(2024);

    // Build a little lineage: filter, then a derived column.
    let late = sheet
        .filtered(Predicate::range("DepDelay", 15.0, 1e9))
        .expect("filter");
    let derived = late.with_column("TotalDelay", "TotalDelay").expect("map");
    derived.set_seed(2024);
    println!(
        "lineage depth: {} logged operations (load → filter → map)",
        engine.redo_log().len()
    );

    let (before, _, _) = derived
        .histogram_with_cdf("TotalDelay", Some(20))
        .expect("histogram");
    println!("\nhistogram before any failure:");
    println!("{}", before.to_ascii(8));

    // Crash a worker: all of its soft state evaporates.
    println!("!! killing worker 1 (soft state lost)");
    engine.cluster().worker(1).kill();
    assert!(!engine.cluster().worker(1).is_alive());

    // The next query transparently restarts the worker and replays its
    // lineage chain. Re-pin the seed sequence so the recovered query uses
    // the same sketch seeds as the original — §5.8's determinism claim is
    // "same seeds → bit-identical summaries", and each query consumes the
    // next seed in the sequence.
    derived.set_seed(2024);
    let started = std::time::Instant::now();
    let (after, _, _) = derived
        .histogram_with_cdf("TotalDelay", Some(20))
        .expect("recovered histogram");
    println!(
        "recovered in {:.2}s — worker restarted, lineage replayed lazily",
        started.elapsed().as_secs_f64()
    );
    assert_eq!(
        before.heights_px, after.heights_px,
        "deterministic replay reconverged"
    );
    println!("renderings identical before/after crash ✔");

    // Cache expiry behaves the same way: evict everything, query again.
    println!("\n!! evicting every dataset on every worker (cache expiry)");
    engine.cluster().evict_all();
    derived.set_seed(2024);
    let (again, _, _) = derived
        .histogram_with_cdf("TotalDelay", Some(20))
        .expect("post-eviction histogram");
    assert_eq!(before.heights_px, again.heights_px);
    println!("cold reconstruction also identical ✔");
    println!(
        "\nrows reloaded per worker: {:?}",
        (0..3)
            .map(|i| engine.cluster().worker(i).rows_loaded())
            .collect::<Vec<_>>()
    );
}
