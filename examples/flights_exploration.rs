//! Flights exploration: the paper's §7.5 analyst workflow, scripted.
//!
//! Answers a handful of the Figure 10 questions against the synthetic
//! flights dataset using only spreadsheet operations (filter, chart,
//! summarize) — exactly what the paper's human operator clicked through.
//!
//! ```sh
//! cargo run -p hillview-examples --bin flights_exploration
//! ```

use hillview_columnar::udf::UdfRegistry;
use hillview_columnar::Predicate;
use hillview_core::dataset::{FnSource, SourceRegistry};
use hillview_core::{Cluster, ClusterConfig, Engine, Spreadsheet};
use hillview_data::{generate_flights, FlightsConfig};
use hillview_storage::partition_table;
use hillview_viz::display::DisplaySpec;
use std::sync::Arc;

fn mean_delay(sheet: &Spreadsheet, pred: Predicate) -> f64 {
    let f = sheet.filtered(pred).expect("filter");
    let (m, _) = f.moments("DepDelay", 2).expect("moments");
    m.mean().unwrap_or(f64::NAN)
}

fn main() {
    let mut sources = SourceRegistry::new();
    sources.register(Arc::new(FnSource::new("flights", |w, _n, mp, _s| {
        Ok(partition_table(
            &generate_flights(&FlightsConfig::new(250_000, w as u64)),
            mp,
        ))
    })));
    let mut udfs = UdfRegistry::with_builtins();
    udfs.register_ratio("Speed", "Distance", "AirTime");
    let cluster = Cluster::new(
        ClusterConfig {
            workers: 4,
            threads_per_worker: 4,
            micropartition_rows: 50_000,
            ..Default::default()
        },
        sources,
        udfs,
    );
    let engine = Arc::new(Engine::new(cluster));
    let sheet = Spreadsheet::open(engine, "flights", 0, DisplaySpec::new(60, 12)).expect("open");

    println!("Q1: Who has more late flights, UA or AA?");
    for carrier in ["UA", "AA"] {
        let all = sheet
            .filtered(Predicate::equals("Carrier", carrier))
            .unwrap();
        let (total, _) = all.row_count().unwrap();
        let late = all
            .filtered(Predicate::range("DepDelay", 15.0, 1e9))
            .unwrap();
        let (n, _) = late.row_count().unwrap();
        println!(
            "  {carrier}: {n} of {total} ({:.1}%)",
            n as f64 / total as f64 * 100.0
        );
    }

    println!("\nQ5: Is it better to fly SFO→JFK or SFO→EWR?");
    for dest in ["JFK", "EWR"] {
        let m = mean_delay(
            &sheet,
            Predicate::equals("Origin", "SFO").and(Predicate::equals("Dest", dest)),
        );
        println!("  SFO→{dest}: mean departure delay {m:.1} min");
    }

    println!("\nQ7: What is the best time of day to fly?");
    for (label, lo, hi) in [
        ("red-eye 00–06", 0.0, 600.0),
        ("morning 06–12", 600.0, 1200.0),
        ("afternoon 12–18", 1200.0, 1800.0),
        ("evening 18–24", 1800.0, 2400.0),
    ] {
        let m = mean_delay(&sheet, Predicate::range("CRSDepTime", lo, hi));
        println!("  {label}: {m:.1} min");
    }

    println!("\nQ11: What is the longest flight in distance?");
    let (range, _) = sheet.range_of("Distance").unwrap();
    println!("  {:.0} miles", range.max.unwrap());

    println!("\nQ14: Which airlines fly to Hawaii?");
    let hawaii = sheet
        .filtered(Predicate::equals("DestState", "HI"))
        .unwrap();
    let (hh, _) = hawaii.heavy_hitters_streaming("Carrier", 14).unwrap();
    let names: Vec<String> = hh.items.iter().map(|(v, _, _)| v.to_string()).collect();
    println!("  {} carriers: {}", names.len(), names.join(", "));

    println!("\nDerived column: cruise speed = Distance / AirTime (UDF)");
    let speedy = sheet.with_column("Speed", "Speed").expect("udf column");
    let (chart, _, _) = speedy.histogram_with_cdf("Speed", Some(30)).unwrap();
    println!("{}", chart.to_ascii(10));

    println!("Zoom: delays in [0, 60) minutes only (chart-region filter)");
    let zoomed = sheet
        .filtered(Predicate::range("DepDelay", 0.0, 60.0))
        .unwrap();
    let (chart, _, _) = zoomed.histogram_with_cdf("DepDelay", Some(30)).unwrap();
    println!("{}", chart.to_ascii(10));
}
