//! Cross-system agreement: Hillview's exact vizketches, the GP engine, and
//! the row-store DB must produce identical exact answers; sampled
//! vizketches must land within their error bounds of those answers.

use hillview_baseline::{GpEngine, RowDb};
use hillview_core::QueryOptions;
use hillview_data::{generate_flights, FlightsConfig};
use hillview_integration::test_engine;
use hillview_sketch::heavy::MisraGriesSketch;
use hillview_sketch::histogram::HistogramSketch;
use hillview_sketch::BucketSpec;

#[test]
fn three_systems_one_histogram() {
    let engine = test_engine(2, 10_000);
    let ds = engine.load("flights", 3).unwrap();

    // Hillview exact histogram over Distance.
    let spec = BucketSpec::numeric(0.0, 3000.0, 30);
    let (hv, _) = engine
        .run(
            ds,
            HistogramSketch::streaming("Distance", spec),
            &QueryOptions::default(),
        )
        .unwrap();

    // Row-store DB over the identical data.
    let mut db = RowDb::create(&["Distance"]);
    for w in 0..2 {
        db.insert_table(&generate_flights(&FlightsConfig::new(10_000, 3 ^ w)));
    }
    let db_hist = db.histogram("Distance", 0.0, 3000.0, 30);
    assert_eq!(hv.buckets, db_hist, "vizketch == row DB");

    // GP engine group-by collapsed into the same buckets.
    let gp = GpEngine::new(engine.cluster().clone());
    let groups = gp.group_count(ds, "Distance").unwrap().result;
    let mut gp_hist = vec![0u64; 30];
    for (v, c) in groups {
        if let Some(x) = v.as_f64() {
            if (0.0..3000.0).contains(&x) {
                gp_hist[(x / 100.0) as usize] += c;
            }
        }
    }
    assert_eq!(hv.buckets, gp_hist, "vizketch == GP engine");
}

#[test]
fn sampled_histogram_within_bounds_of_exact() {
    let engine = test_engine(2, 50_000);
    let ds = engine.load("flights", 0).unwrap();
    let spec = BucketSpec::numeric(0.0, 2400.0, 24);
    let (exact, _) = engine
        .run(
            ds,
            HistogramSketch::streaming("CRSDepTime", spec.clone()),
            &QueryOptions::default(),
        )
        .unwrap();
    let (sampled, _) = engine
        .run(
            ds,
            HistogramSketch::sampled("CRSDepTime", spec, 0.2),
            &QueryOptions {
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
    let total_exact: u64 = exact.buckets.iter().sum();
    let total_sampled: u64 = sampled.buckets.iter().sum();
    for (e, s) in exact.buckets.iter().zip(&sampled.buckets) {
        let fe = *e as f64 / total_exact as f64;
        let fs = *s as f64 / total_sampled as f64;
        assert!((fe - fs).abs() < 0.02, "bucket fractions {fe} vs {fs}");
    }
}

#[test]
fn heavy_hitters_agree_with_gp_topk() {
    let engine = test_engine(2, 20_000);
    let ds = engine.load("flights", 0).unwrap();
    let (mg, _) = engine
        .run(
            ds,
            MisraGriesSketch::new("Carrier", 14),
            &QueryOptions::default(),
        )
        .unwrap();
    let gp = GpEngine::new(engine.cluster().clone());
    let top = gp.top_k(ds, "Carrier", 3).unwrap().result;
    // The top-3 exact carriers must all be tracked by Misra-Gries with
    // counts within the MG undercount bound (total/k).
    let bound = mg.total / 14;
    for (v, exact_count) in top {
        let mg_count = mg.count_of(&v);
        assert!(
            mg_count + bound >= exact_count,
            "{v}: MG {mg_count} vs exact {exact_count}"
        );
    }
}
