//! Fault-injection integration tests: crashes, eviction, recovery (§5.7-5.8).

use hillview_columnar::Predicate;
use hillview_integration::{flights_sheet, test_engine};
use hillview_viz::display::DisplaySpec;

#[test]
fn crash_during_session_recovers_identically() {
    let sheet = flights_sheet(3, 10_000);
    let filtered = sheet
        .filtered(Predicate::range("DepDelay", -10.0, 120.0))
        .unwrap();
    filtered.set_seed(7);
    let (before, _, _) = filtered.histogram_with_cdf("DepDelay", Some(25)).unwrap();

    // Kill two of three workers.
    sheet.engine().cluster().worker(0).kill();
    sheet.engine().cluster().worker(2).kill();

    filtered.set_seed(7);
    let (after, _, _) = filtered.histogram_with_cdf("DepDelay", Some(25)).unwrap();
    assert_eq!(before.heights_px, after.heights_px);
    assert!(
        sheet.engine().cluster().worker(0).is_alive(),
        "auto-restarted"
    );
}

#[test]
fn deep_lineage_replays_in_order() {
    let sheet = flights_sheet(2, 10_000);
    // load → filter → filter → map → filter: five-deep lineage.
    let a = sheet
        .filtered(Predicate::range("DepDelay", -60.0, 240.0))
        .unwrap();
    let b = a.filtered(Predicate::equals("Cancelled", 0i64)).unwrap();
    let c = b.with_column("Speed", "Speed").unwrap();
    let d = c.filtered(Predicate::range("Speed", 1.0, 1e6)).unwrap();
    let (count_before, _) = d.row_count().unwrap();
    assert!(count_before > 0);

    sheet.engine().cluster().evict_all();
    let (count_after, _) = d.row_count().unwrap();
    assert_eq!(count_before, count_after);
    // Every materialized ancestor was reconstructed on demand. `d` itself
    // stays a lazy filter: its predicate passes nearly every row, so the
    // cost-based planner keeps fusing it instead of materializing a
    // membership set.
    for w in 0..2 {
        assert!(sheet.engine().cluster().worker(w).has_dataset(c.dataset()));
        assert!(!sheet.engine().cluster().worker(w).has_dataset(d.dataset()));
    }
}

#[test]
fn repeated_crashes_eventually_converge() {
    let sheet = flights_sheet(2, 8_000);
    for round in 0..4 {
        sheet.engine().cluster().worker(round % 2).kill();
        let (rows, _) = sheet.row_count().unwrap();
        assert_eq!(rows, 16_000, "round {round}");
    }
}

#[test]
fn computation_cache_survives_unrelated_evictions() {
    let engine = test_engine(2, 8_000);
    let sheet =
        hillview_core::Spreadsheet::open(engine.clone(), "flights", 0, DisplaySpec::new(100, 50))
            .unwrap();
    let (r1, _) = sheet.range_of("Distance").unwrap();
    // Cache hit on the second call.
    let hits0: u64 = (0..2)
        .map(|i| engine.cluster().worker(i).cache_hits())
        .sum();
    let (r2, _) = sheet.range_of("Distance").unwrap();
    let hits1: u64 = (0..2)
        .map(|i| engine.cluster().worker(i).cache_hits())
        .sum();
    assert_eq!(r1, r2);
    assert!(hits1 > hits0);
    // After eviction the cache is cold but the answer is unchanged.
    engine.cluster().evict_all();
    let (r3, _) = sheet.range_of("Distance").unwrap();
    assert_eq!(r1, r3);
}

#[test]
fn disabled_auto_recovery_surfaces_worker_down() {
    let engine = test_engine(2, 5_000);
    let ds = engine.load("flights", 0).unwrap();
    // Engine with recovery off must report the failure.
    let mut raw = hillview_core::Engine::new(engine.cluster().clone());
    raw.auto_recover = false;
    let ds2 = raw.load("flights", 1).unwrap();
    let _ = ds;
    raw.cluster().worker(1).kill();
    let err = raw
        .run(
            ds2,
            hillview_sketch::count::CountSketch::rows(),
            &hillview_core::QueryOptions::default(),
        )
        .unwrap_err();
    assert_eq!(err, hillview_core::EngineError::WorkerDown(1));
}
