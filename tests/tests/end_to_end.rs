//! End-to-end spreadsheet sessions across every crate.

use hillview_columnar::{Predicate, StrMatchKind};
use hillview_integration::{flights_sheet, test_engine};
use hillview_viz::display::DisplaySpec;

#[test]
fn full_analyst_session() {
    let sheet = flights_sheet(3, 20_000);
    let (rows, _) = sheet.row_count().unwrap();
    assert_eq!(rows, 60_000);

    // Sort and page through the data.
    let (page1, _) = sheet.sort_view(&["Carrier", "DepDelay"], 10).unwrap();
    assert_eq!(page1.rows.len(), 10);

    // Chart a column, zoom into a region, chart again.
    let (chart, cdf, _) = sheet.histogram_with_cdf("DepDelay", Some(30)).unwrap();
    assert_eq!(chart.heights_px.len(), 30);
    assert!(cdf.heights_px.windows(2).all(|w| w[0] <= w[1]));
    let zoomed = sheet
        .filtered(Predicate::range("DepDelay", 0.0, 30.0))
        .unwrap();
    let (zchart, _, _) = zoomed.histogram_with_cdf("DepDelay", Some(30)).unwrap();
    assert!(zchart.max_count <= chart.max_count);

    // Heavy hitters, distinct count, heat map.
    let (hh, _) = sheet.heavy_hitters_streaming("Carrier", 14).unwrap();
    assert!(!hh.items.is_empty());
    let (distinct, _) = sheet.distinct_count("Origin").unwrap();
    assert!(
        (50.0..70.0).contains(&distinct),
        "60 airports, got {distinct}"
    );
    let (grid, _) = sheet.heatmap("Distance", "AirTime").unwrap();
    assert!(grid.max_count > 0);

    // Search.
    let (found, _) = sheet
        .find_text(
            "Origin",
            "SFO",
            StrMatchKind::Exact,
            false,
            &["FlightDate"],
            None,
        )
        .unwrap();
    assert!(found.first.is_some());
}

#[test]
fn filter_counts_match_ground_truth() {
    let sheet = flights_sheet(2, 10_000);
    // Independently compute the expected count from the generator.
    let t = hillview_data::generate_flights(&hillview_data::FlightsConfig::new(10_000, 0));
    let col = t.column_by_name("Carrier").unwrap();
    let expected_w0 = (0..t.num_rows())
        .filter(|&r| col.value(r).to_string() == "WN")
        .count();
    let t1 = hillview_data::generate_flights(&hillview_data::FlightsConfig::new(10_000, 1));
    let col1 = t1.column_by_name("Carrier").unwrap();
    let expected_w1 = (0..t1.num_rows())
        .filter(|&r| col1.value(r).to_string() == "WN")
        .count();

    let wn = sheet.filtered(Predicate::equals("Carrier", "WN")).unwrap();
    let (n, _) = wn.row_count().unwrap();
    assert_eq!(n as usize, expected_w0 + expected_w1);
}

#[test]
fn derived_column_statistics() {
    let sheet = flights_sheet(2, 10_000);
    let with_total = sheet.with_column("TotalDelay", "TotalDelay").unwrap();
    let (m, _) = with_total.moments("TotalDelay", 2).unwrap();
    assert!(m.present > 0);
    // TotalDelay = DepDelay + ArrDelay; means should add up approximately.
    let (dep, _) = sheet.moments("DepDelay", 2).unwrap();
    let (arr, _) = sheet.moments("ArrDelay", 2).unwrap();
    let sum_means = dep.mean().unwrap() + arr.mean().unwrap();
    assert!(
        (m.mean().unwrap() - sum_means).abs() < 1.5,
        "{} vs {}",
        m.mean().unwrap(),
        sum_means
    );
}

#[test]
fn scroll_bar_session() {
    let sheet = flights_sheet(2, 15_000);
    // Scroll to the middle of the distance-sorted view.
    let (page, stats) = sheet.scroll_to(&["Distance"], 50, 10).unwrap();
    assert!(!page.rows.is_empty());
    assert!(stats.trees >= 2);
    // The median-ish distance should be mid-range (routes span 100..2700).
    let first_distance: f64 = page.rows[0].0[0].parse().unwrap();
    assert!(
        (300.0..2300.0).contains(&first_distance),
        "scrolled to {first_distance}"
    );
}

#[test]
fn multiple_sheets_share_one_engine() {
    let engine = test_engine(2, 8_000);
    let flights =
        hillview_core::Spreadsheet::open(engine.clone(), "flights", 0, DisplaySpec::new(100, 50))
            .unwrap();
    let logs =
        hillview_core::Spreadsheet::open(engine.clone(), "logs", 0, DisplaySpec::new(100, 50))
            .unwrap();
    let (fr, _) = flights.row_count().unwrap();
    let (lr, _) = logs.row_count().unwrap();
    assert_eq!(fr, 16_000);
    assert_eq!(lr, 16_000);
    assert_eq!(engine.redo_log().len(), 2);
}

#[test]
fn results_scale_invariant_for_sampled_charts() {
    // The same distribution at different sizes renders the same chart
    // shape — the vizketch scalability claim (§4.4).
    let small = flights_sheet(2, 5_000);
    let large = flights_sheet(2, 50_000);
    let (cs, _, _) = small.histogram_with_cdf("CRSDepTime", Some(24)).unwrap();
    let (cl, _, _) = large.histogram_with_cdf("CRSDepTime", Some(24)).unwrap();
    // Compare normalized bar heights loosely.
    for (a, b) in cs.heights_px.iter().zip(&cl.heights_px) {
        assert!(
            (*a as i64 - *b as i64).abs() <= 12,
            "{:?} vs {:?}",
            cs.heights_px,
            cl.heights_px
        );
    }
}
