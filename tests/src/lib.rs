//! Integration-test host crate for Hillview-RS.
//!
//! The actual cross-crate tests live in `tests/tests/`; this library only
//! provides shared fixtures.

use hillview_columnar::udf::UdfRegistry;
use hillview_core::dataset::{FnSource, SourceRegistry};
use hillview_core::{Cluster, ClusterConfig, Engine, Spreadsheet};
use hillview_data::{generate_flights, generate_logs, FlightsConfig, LogsConfig};
use hillview_storage::partition_table;
use hillview_viz::display::DisplaySpec;
use std::sync::Arc;

/// Build an engine over `workers` workers with flight and log sources.
pub fn test_engine(workers: usize, rows_per_worker: usize) -> Arc<Engine> {
    let mut sources = SourceRegistry::new();
    sources.register(Arc::new(FnSource::new(
        "flights",
        move |w, _n, mp, snap| {
            Ok(partition_table(
                &generate_flights(&FlightsConfig::new(rows_per_worker, snap ^ w as u64)),
                mp,
            ))
        },
    )));
    sources.register(Arc::new(FnSource::new("logs", move |w, _n, mp, snap| {
        Ok(partition_table(
            &generate_logs(&LogsConfig::new(rows_per_worker, snap ^ (w as u64) << 4)),
            mp,
        ))
    })));
    let mut udfs = UdfRegistry::with_builtins();
    udfs.register_ratio("Speed", "Distance", "AirTime");
    udfs.register_sum("TotalDelay", "DepDelay", "ArrDelay");
    let cluster = Cluster::new(
        ClusterConfig {
            workers,
            threads_per_worker: 2,
            micropartition_rows: 5_000,
            batch_interval: std::time::Duration::from_millis(2),
            ..Default::default()
        },
        sources,
        udfs,
    );
    Arc::new(Engine::new(cluster))
}

/// Open a flights spreadsheet on a fresh test engine.
pub fn flights_sheet(workers: usize, rows_per_worker: usize) -> Spreadsheet {
    let engine = test_engine(workers, rows_per_worker);
    let sheet =
        Spreadsheet::open(engine, "flights", 0, DisplaySpec::new(120, 60)).expect("load flights");
    sheet.set_seed(31337);
    sheet
}
