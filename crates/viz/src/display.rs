//! Display geometry.
//!
//! Every vizketch is "parameterized by the target display resolution, and
//! produces calculations that are just precise enough to render at that
//! resolution" (paper App. B.1). [`DisplaySpec`] captures that resolution
//! and the perceptual constants the paper uses.

/// Maximum number of histogram bars regardless of screen width (paper §1:
/// "limits the number of bars to ≈100").
pub const MAX_HISTOGRAM_BARS: usize = 100;

/// Maximum buckets for string-valued axes (paper App. B.1: 50).
pub const MAX_STRING_BUCKETS: usize = 50;

/// Discernible colors in a heat-map density scale (paper §4.3: c ≈ 20).
pub const COLOR_SHADES: usize = 20;

/// Maximum subdivisions (colors) in a stacked histogram (paper App. B.1:
/// "By is limited to ≈20").
pub const MAX_STACK_COLORS: usize = 20;

/// Heat-map bin size in pixels (paper App. B.1: "each bin consumes b×b
/// pixels, where b = 3").
pub const HEATMAP_BIN_PX: usize = 3;

/// A target drawing surface in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisplaySpec {
    /// Horizontal resolution (the paper's H).
    pub width_px: usize,
    /// Vertical resolution (the paper's V).
    pub height_px: usize,
}

impl DisplaySpec {
    /// A display of the given pixel dimensions.
    pub fn new(width_px: usize, height_px: usize) -> Self {
        assert!(width_px > 0 && height_px > 0, "degenerate display");
        DisplaySpec {
            width_px,
            height_px,
        }
    }

    /// The paper's default chart surface (§4.2 example: "at most 50 buckets
    /// ... when the screen width is 200 pixels" ⇒ bars are ≥ 4 px wide).
    pub fn default_chart() -> Self {
        DisplaySpec::new(600, 200)
    }

    /// Number of histogram bars that fit: one per 4 horizontal pixels,
    /// capped at [`MAX_HISTOGRAM_BARS`] and at the caller's request.
    pub fn histogram_buckets(&self, requested: Option<usize>) -> usize {
        let fit = (self.width_px / 4).clamp(1, MAX_HISTOGRAM_BARS);
        match requested {
            Some(r) => r.clamp(1, fit),
            None => fit,
        }
    }

    /// String-axis bucket budget (≤ 50).
    pub fn string_buckets(&self) -> usize {
        self.histogram_buckets(None).min(MAX_STRING_BUCKETS)
    }

    /// Heat-map bins along X and Y: Bx = H/b, By = V/b (paper §4.3).
    pub fn heatmap_bins(&self) -> (usize, usize) {
        (
            (self.width_px / HEATMAP_BIN_PX).max(1),
            (self.height_px / HEATMAP_BIN_PX).max(1),
        )
    }

    /// Sub-display for one cell of a `rows × cols` trellis grid (paper App.
    /// B.1: "a large number of heat maps means that each heat map is small").
    pub fn trellis_cell(&self, rows: usize, cols: usize) -> DisplaySpec {
        DisplaySpec::new(
            (self.width_px / cols.max(1)).max(1),
            (self.height_px / rows.max(1)).max(1),
        )
    }
}

impl Default for DisplaySpec {
    fn default() -> Self {
        Self::default_chart()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_budget_scales_with_width() {
        let narrow = DisplaySpec::new(200, 100);
        assert_eq!(narrow.histogram_buckets(None), 50);
        let wide = DisplaySpec::new(4000, 100);
        assert_eq!(
            wide.histogram_buckets(None),
            MAX_HISTOGRAM_BARS,
            "capped at ≈100 bars"
        );
    }

    #[test]
    fn requested_buckets_clamped() {
        let d = DisplaySpec::new(200, 100);
        assert_eq!(d.histogram_buckets(Some(10)), 10);
        assert_eq!(d.histogram_buckets(Some(500)), 50, "cannot exceed fit");
        assert_eq!(d.histogram_buckets(Some(0)), 1);
    }

    #[test]
    fn heatmap_bins_use_3px_cells() {
        let d = DisplaySpec::new(600, 300);
        assert_eq!(d.heatmap_bins(), (200, 100));
    }

    #[test]
    fn string_buckets_capped_at_50() {
        let d = DisplaySpec::new(4000, 100);
        assert_eq!(d.string_buckets(), MAX_STRING_BUCKETS);
    }

    #[test]
    fn trellis_cells_shrink() {
        let d = DisplaySpec::new(600, 400);
        let cell = d.trellis_cell(2, 3);
        assert_eq!(cell, DisplaySpec::new(200, 200));
    }

    #[test]
    #[should_panic(expected = "degenerate display")]
    fn zero_size_rejected() {
        let _ = DisplaySpec::new(0, 100);
    }
}
