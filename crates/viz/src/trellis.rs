//! Trellis plots: arrays of heat maps grouped by a column (paper App. B.1).
//!
//! *"A heat map trellis plot produces k heat maps, each for a fixed range
//! of values wᵢ in column W. ... because the rendering area is limited to
//! H×V, a large number of heat maps means that each heat map is small."*
//! The trellis sketch computes all k heat maps in one pass; its summary is
//! a vector of heat-map summaries and merges group-wise.

use crate::display::{DisplaySpec, COLOR_SHADES};
use crate::heatmap::AxisInfo;
use crate::render::ColorGrid;
use crate::samples;
use hillview_net::{Result as WireResult, Wire, WireReader, WireWriter};
use hillview_sketch::buckets::BucketSpec;
use hillview_sketch::heatmap::HeatmapSummary;
use hillview_sketch::traits::{Sketch, SketchError, SketchResult, Summary};
use hillview_sketch::TableView;
use std::sync::Arc;

/// Trellis-of-heat-maps sketch: group column W, then X×Y per group.
#[derive(Debug, Clone)]
pub struct TrellisSketch {
    /// Grouping column W.
    pub col_w: Arc<str>,
    /// X column of each inner heat map.
    pub col_x: Arc<str>,
    /// Y column of each inner heat map.
    pub col_y: Arc<str>,
    /// Buckets for W (one heat map per bucket).
    pub buckets_w: BucketSpec,
    /// Shared X buckets.
    pub buckets_x: BucketSpec,
    /// Shared Y buckets.
    pub buckets_y: BucketSpec,
    /// Sampling rate (`>= 1.0` exact).
    pub rate: f64,
}

/// One heat map per W bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct TrellisSummary {
    /// Per-group heat maps, indexed by W bucket.
    pub groups: Vec<HeatmapSummary>,
    /// Rows whose W was missing or out of range.
    pub dropped: u64,
}

impl Summary for TrellisSummary {
    fn merge(&self, other: &Self) -> Self {
        if self.groups.is_empty() {
            return other.clone();
        }
        if other.groups.is_empty() {
            return self.clone();
        }
        debug_assert_eq!(self.groups.len(), other.groups.len());
        TrellisSummary {
            groups: self
                .groups
                .iter()
                .zip(&other.groups)
                .map(|(a, b)| a.merge(b))
                .collect(),
            dropped: self.dropped + other.dropped,
        }
    }
}

impl Wire for TrellisSummary {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.groups.len() as u64);
        for g in &self.groups {
            g.encode(w);
        }
        w.put_varint(self.dropped);
    }
    fn decode(r: &mut WireReader) -> WireResult<Self> {
        let n = r.get_len("trellis groups")?;
        let mut groups = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            groups.push(HeatmapSummary::decode(r)?);
        }
        Ok(TrellisSummary {
            groups,
            dropped: r.get_varint()?,
        })
    }
}

impl Sketch for TrellisSketch {
    type Summary = TrellisSummary;

    fn name(&self) -> &'static str {
        "trellis-heatmap"
    }

    fn summarize(&self, view: &TableView, seed: u64) -> SketchResult<TrellisSummary> {
        use hillview_sketch::heatmap::HeatmapSketch;
        // Reuse the heat-map kernel per group by restricting rows: simple
        // and correct, though it scans W once per group. Group counts are
        // small (k ≤ ~16 on any real display).
        let table = view.table();
        let cw = table.column_by_name(&self.col_w)?;
        let k = self.buckets_w.count();
        // Partition rows by W bucket.
        let mut groups_rows: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut dropped = 0u64;
        let bound = crate::trellis::bind_w(cw, &self.buckets_w)?;
        for row in view.iter_rows() {
            match bound(row) {
                Some(g) => groups_rows[g].push(row as u32),
                None => dropped += 1,
            }
        }
        let universe = table.num_rows();
        let inner = HeatmapSketch {
            col_x: self.col_x.clone(),
            col_y: self.col_y.clone(),
            buckets_x: self.buckets_x.clone(),
            buckets_y: self.buckets_y.clone(),
            rate: self.rate,
        };
        let mut groups = Vec::with_capacity(k);
        for (g, rows) in groups_rows.into_iter().enumerate() {
            let members = hillview_columnar::MembershipSet::from_rows(rows, universe);
            let sub = TableView::with_members(table.clone(), Arc::new(members));
            groups.push(inner.summarize(&sub, seed ^ (g as u64).wrapping_mul(0x9E37))?);
        }
        Ok(TrellisSummary { groups, dropped })
    }

    fn identity(&self) -> TrellisSummary {
        TrellisSummary {
            groups: (0..self.buckets_w.count())
                .map(|_| HeatmapSummary::zero(self.buckets_x.count(), self.buckets_y.count()))
                .collect(),
            dropped: 0,
        }
    }
}

/// Bind the W column to its bucket spec, returning a row→group closure.
fn bind_w<'a>(
    col: &'a hillview_columnar::Column,
    spec: &'a BucketSpec,
) -> SketchResult<Box<dyn Fn(usize) -> Option<usize> + 'a>> {
    match (spec, col.as_dict_col()) {
        (BucketSpec::Strings { .. }, Some(dict)) => {
            let code_bucket: Vec<Option<usize>> = dict
                .dictionary()
                .iter()
                .map(|s| spec.index_of_str(s))
                .collect();
            Ok(Box::new(move |row: usize| {
                if dict.nulls().is_null(row) {
                    None
                } else {
                    code_bucket[dict.code(row) as usize]
                }
            }))
        }
        (BucketSpec::Numeric { .. }, None) if col.kind().is_numeric() => {
            Ok(Box::new(move |row: usize| {
                col.as_f64(row).and_then(|v| spec.index_of_f64(v))
            }))
        }
        _ => Err(SketchError::BadConfig(format!(
            "trellis group column {} incompatible with its bucket spec",
            col.kind()
        ))),
    }
}

/// Trellis vizketch configuration.
#[derive(Debug, Clone)]
pub struct TrellisViz {
    /// Grouping column.
    pub col_w: Arc<str>,
    /// Inner heat-map X column.
    pub col_x: Arc<str>,
    /// Inner heat-map Y column.
    pub col_y: Arc<str>,
    /// Whole-surface display; cells divide it.
    pub display: DisplaySpec,
    /// Number of trellis cells (W buckets).
    pub groups: usize,
    /// Error probability.
    pub delta: f64,
}

impl TrellisViz {
    /// Trellis of `groups` heat maps of `col_x`×`col_y`, grouped by `col_w`.
    pub fn new(col_w: &str, col_x: &str, col_y: &str, display: DisplaySpec, groups: usize) -> Self {
        TrellisViz {
            col_w: Arc::from(col_w),
            col_x: Arc::from(col_x),
            col_y: Arc::from(col_y),
            display,
            groups: groups.clamp(1, 16),
            delta: samples::DEFAULT_DELTA,
        }
    }

    /// Grid layout: near-square `rows × cols ≥ groups`.
    pub fn layout(&self) -> (usize, usize) {
        let cols = (self.groups as f64).sqrt().ceil() as usize;
        let rows = self.groups.div_ceil(cols);
        (rows, cols)
    }

    /// Phase-2 sketch from phase-1 info for W, X, and Y.
    pub fn prepare(
        &self,
        w: &AxisInfo,
        x: &AxisInfo,
        y: &AxisInfo,
        population: u64,
    ) -> SketchResult<TrellisSketch> {
        let (rows, cols) = self.layout();
        let cell = self.display.trellis_cell(rows, cols);
        let (bx, by) = cell.heatmap_bins();
        let spec_of = |info: &AxisInfo, bins: usize, which: &str| -> SketchResult<BucketSpec> {
            match info {
                AxisInfo::Numeric(range) => {
                    let (min, max) = match (range.min, range.max) {
                        (Some(a), Some(b)) => (a, b),
                        _ => {
                            return Err(SketchError::BadConfig(format!(
                                "{which} axis has no numeric range"
                            )))
                        }
                    };
                    let hi = if max > min {
                        max + (max - min) * 1e-9
                    } else {
                        min + 1.0
                    };
                    Ok(BucketSpec::numeric(min, hi, bins))
                }
                AxisInfo::Strings(bk) => {
                    let b = bk.bucket_boundaries(bins);
                    if b.is_empty() {
                        return Err(SketchError::BadConfig(format!(
                            "{which} axis has no string values"
                        )));
                    }
                    Ok(BucketSpec::strings(b))
                }
            }
        };
        // Smaller cells ⇒ fewer bins ⇒ smaller sample (paper: "this
        // requires a smaller sample size than rendering a single heat map").
        let cells = (bx * by) as f64;
        let target = samples::heatmap(COLOR_SHADES, 1.0 / cells.sqrt(), self.delta);
        let rate = samples::rate_for(target, population);
        Ok(TrellisSketch {
            col_w: self.col_w.clone(),
            col_x: self.col_x.clone(),
            col_y: self.col_y.clone(),
            buckets_w: spec_of(w, self.groups, "W")?,
            buckets_x: spec_of(x, bx, "X")?,
            buckets_y: spec_of(y, by, "Y")?,
            rate,
        })
    }

    /// Render each group to a color grid.
    pub fn render(&self, summary: &TrellisSummary) -> Vec<ColorGrid> {
        summary
            .groups
            .iter()
            .map(|g| ColorGrid::from_counts(&g.counts, g.bx, g.by, COLOR_SHADES))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, DictColumn, F64Column};
    use hillview_columnar::{ColumnKind, MembershipSet, Table};
    use hillview_sketch::bottomk::BottomKSketch;
    use hillview_sketch::range::RangeSketch;
    use std::sync::Arc as StdArc;

    /// Three datacenters; dc0 rows cluster low-X, dc2 rows high-X.
    fn view() -> TableView {
        let n = 3000usize;
        let dcs = ["dc0", "dc1", "dc2"];
        let w: Vec<Option<&str>> = (0..n).map(|i| Some(dcs[i % 3])).collect();
        let x: Vec<Option<f64>> = (0..n).map(|i| Some((i % 3) as f64 * 30.0 + 5.0)).collect();
        let y: Vec<Option<f64>> = (0..n).map(|i| Some((i % 50) as f64)).collect();
        let t = Table::builder()
            .column(
                "DC",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings(w)),
            )
            .column(
                "X",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(x)),
            )
            .column(
                "Y",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(y)),
            )
            .build()
            .unwrap();
        TableView::full(StdArc::new(t))
    }

    fn prepared(v: &TableView) -> (TrellisViz, TrellisSketch) {
        let viz = TrellisViz::new("DC", "X", "Y", DisplaySpec::new(120, 120), 3);
        let bw = BottomKSketch::new("DC", 64).summarize(v, 0).unwrap();
        let rx = RangeSketch::new("X").summarize(v, 0).unwrap();
        let ry = RangeSketch::new("Y").summarize(v, 0).unwrap();
        let sketch = viz
            .prepare(
                &AxisInfo::Strings(bw),
                &AxisInfo::Numeric(rx.clone()),
                &AxisInfo::Numeric(ry),
                rx.present,
            )
            .unwrap();
        (viz, sketch)
    }

    #[test]
    fn groups_partition_the_data() {
        let v = view();
        let (_viz, sketch) = prepared(&v);
        let s = sketch.summarize(&v, 0).unwrap();
        assert_eq!(s.groups.len(), 3);
        let total: u64 = s.groups.iter().map(|g| g.rows_inspected).sum();
        assert_eq!(total + s.dropped, 3000);
        // Each dc got 1000 rows.
        for g in &s.groups {
            assert_eq!(g.rows_inspected, 1000);
        }
    }

    #[test]
    fn per_group_distributions_differ() {
        let v = view();
        let (viz, sketch) = prepared(&v);
        let s = sketch.summarize(&v, 0).unwrap();
        let grids = viz.render(&s);
        assert_eq!(grids.len(), 3);
        // dc0's mass is in low-X cells; dc2's in high-X cells.
        let mass_low: u64 = (0..grids[0].by).map(|y| grids[0].get(0, y) as u64).sum();
        assert!(mass_low > 0, "dc0 has low-X mass");
        let last_x = grids[2].bx - 1;
        let mass_high: u64 = (0..grids[2].by)
            .map(|y| grids[2].get(last_x, y) as u64)
            .sum();
        assert!(mass_high > 0, "dc2 has high-X mass");
    }

    #[test]
    fn merge_law_groupwise() {
        let v = view();
        let (_viz, sketch) = prepared(&v);
        let t = v.table().clone();
        let whole = sketch.summarize(&v, 0).unwrap();
        let a = sketch
            .summarize(
                &TableView::with_members(
                    t.clone(),
                    StdArc::new(MembershipSet::from_rows((0..1500).collect(), 3000)),
                ),
                0,
            )
            .unwrap();
        let b = sketch
            .summarize(
                &TableView::with_members(
                    t,
                    StdArc::new(MembershipSet::from_rows((1500..3000).collect(), 3000)),
                ),
                0,
            )
            .unwrap();
        assert_eq!(a.merge(&b), whole);
    }

    #[test]
    fn layout_is_near_square() {
        let viz = TrellisViz::new("W", "X", "Y", DisplaySpec::new(100, 100), 6);
        let (rows, cols) = viz.layout();
        assert!(rows * cols >= 6);
        assert!(cols <= 3 && rows <= 3);
    }

    #[test]
    fn wire_roundtrip() {
        let v = view();
        let (_viz, sketch) = prepared(&v);
        let s = sketch.summarize(&v, 0).unwrap();
        assert_eq!(TrellisSummary::from_bytes(s.to_bytes()).unwrap(), s);
    }
}
