//! The heat-map vizketch (paper §4.3, Fig. 13(d)).

use crate::display::{DisplaySpec, COLOR_SHADES};
use crate::render::ColorGrid;
use crate::samples;
use hillview_sketch::bottomk::BottomKSummary;
use hillview_sketch::buckets::BucketSpec;
use hillview_sketch::heatmap::{HeatmapSketch, HeatmapSummary};
use hillview_sketch::range::RangeSummary;
use hillview_sketch::traits::{SketchError, SketchResult};
use std::sync::Arc;

/// Heat-map vizketch configuration.
#[derive(Debug, Clone)]
pub struct HeatmapViz {
    /// X-axis column.
    pub col_x: Arc<str>,
    /// Y-axis column.
    pub col_y: Arc<str>,
    /// Target display; bins are `HEATMAP_BIN_PX`² pixels.
    pub display: DisplaySpec,
    /// Exact scan instead of sampling (required for log color scales,
    /// paper App. C.2).
    pub exact: bool,
    /// Error probability δ.
    pub delta: f64,
}

/// Phase-1 information for one heat-map axis.
#[derive(Debug, Clone)]
pub enum AxisInfo {
    /// Numeric axis: the column's range summary.
    Numeric(RangeSummary),
    /// String axis: bottom-k quantiles over distinct values.
    Strings(BottomKSummary),
}

impl HeatmapViz {
    /// Sampled heat map of `col_x` × `col_y`.
    pub fn new(col_x: &str, col_y: &str, display: DisplaySpec) -> Self {
        HeatmapViz {
            col_x: Arc::from(col_x),
            col_y: Arc::from(col_y),
            display,
            exact: false,
            delta: samples::DEFAULT_DELTA,
        }
    }

    /// Use the exact streaming kernel.
    pub fn exact(mut self) -> Self {
        self.exact = true;
        self
    }

    fn axis_spec(info: &AxisInfo, bins: usize, which: &str) -> SketchResult<BucketSpec> {
        match info {
            AxisInfo::Numeric(range) => {
                let (min, max) = match (range.min, range.max) {
                    (Some(a), Some(b)) => (a, b),
                    _ => {
                        return Err(SketchError::BadConfig(format!(
                            "{which} axis has no numeric range"
                        )))
                    }
                };
                let hi = if max > min {
                    max + (max - min) * 1e-9
                } else {
                    min + 1.0
                };
                Ok(BucketSpec::numeric(min, hi, bins))
            }
            AxisInfo::Strings(bk) => {
                let boundaries = bk.bucket_boundaries(bins.min(crate::display::MAX_STRING_BUCKETS));
                if boundaries.is_empty() {
                    return Err(SketchError::BadConfig(format!(
                        "{which} axis has no string values"
                    )));
                }
                Ok(BucketSpec::strings(boundaries))
            }
        }
    }

    /// Phase-2 sketch from per-axis phase-1 info and the row count.
    pub fn prepare(
        &self,
        x: &AxisInfo,
        y: &AxisInfo,
        population: u64,
    ) -> SketchResult<HeatmapSketch> {
        let (bx, by) = self.display.heatmap_bins();
        let sx = Self::axis_spec(x, bx, "X")?;
        let sy = Self::axis_spec(y, by, "Y")?;
        if self.exact {
            Ok(HeatmapSketch::streaming(&self.col_x, &self.col_y, sx, sy))
        } else {
            // Prior for the densest cell: uniform over populated cells.
            let cells = (sx.count() * sy.count()) as f64;
            let target = samples::heatmap(COLOR_SHADES, 1.0 / cells.sqrt(), self.delta);
            let rate = samples::rate_for(target, population);
            Ok(HeatmapSketch::sampled(
                &self.col_x,
                &self.col_y,
                sx,
                sy,
                rate,
            ))
        }
    }

    /// Render the merged summary to a color grid with ~20 shades.
    pub fn render(&self, summary: &HeatmapSummary) -> ColorGrid {
        ColorGrid::from_counts(&summary.counts, summary.bx, summary.by, COLOR_SHADES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, F64Column};
    use hillview_columnar::{ColumnKind, Table};
    use hillview_sketch::range::RangeSketch;
    use hillview_sketch::traits::Sketch;
    use hillview_sketch::TableView;
    use std::sync::Arc as StdArc;

    /// Diagonal ridge: X ≈ Y.
    fn diagonal_view(n: usize) -> TableView {
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(
                    (0..n).map(|i| Some((i % 100) as f64)),
                )),
            )
            .column(
                "Y",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(
                    (0..n).map(|i| Some((i % 100) as f64 + 0.25)),
                )),
            )
            .build()
            .unwrap();
        TableView::full(StdArc::new(t))
    }

    #[test]
    fn diagonal_data_renders_a_diagonal() {
        let v = diagonal_view(10_000);
        let viz = HeatmapViz::new("X", "Y", DisplaySpec::new(30, 30)).exact();
        let range_x = RangeSketch::new("X").summarize(&v, 0).unwrap();
        let range_y = RangeSketch::new("Y").summarize(&v, 0).unwrap();
        let sketch = viz
            .prepare(
                &AxisInfo::Numeric(range_x.clone()),
                &AxisInfo::Numeric(range_y),
                range_x.present,
            )
            .unwrap();
        let summary = sketch.summarize(&v, 0).unwrap();
        let grid = viz.render(&summary);
        assert_eq!((grid.bx, grid.by), (10, 10));
        // Diagonal cells are dense, off-diagonal are empty.
        for i in 0..10 {
            assert!(grid.get(i, i) > 0, "diagonal cell ({i},{i}) empty");
            if i > 1 {
                assert_eq!(grid.get(i, 0), 0, "off-diagonal must be empty");
            }
        }
    }

    #[test]
    fn sampled_rate_uses_population() {
        let v = diagonal_view(1000);
        let range = RangeSketch::new("X").summarize(&v, 0).unwrap();
        let viz = HeatmapViz::new("X", "Y", DisplaySpec::new(30, 30));
        let big = viz
            .prepare(
                &AxisInfo::Numeric(range.clone()),
                &AxisInfo::Numeric(range.clone()),
                10_000_000_000,
            )
            .unwrap();
        assert!(big.rate < 0.01, "rate {}", big.rate);
        let small = viz
            .prepare(
                &AxisInfo::Numeric(range.clone()),
                &AxisInfo::Numeric(range),
                100,
            )
            .unwrap();
        assert!(small.rate >= 1.0);
    }

    #[test]
    fn missing_axis_info_is_error() {
        let viz = HeatmapViz::new("X", "Y", DisplaySpec::new(30, 30));
        let empty = AxisInfo::Numeric(RangeSummary::default());
        let ok = AxisInfo::Numeric(RangeSummary {
            present: 1,
            missing: 0,
            min: Some(0.0),
            max: Some(1.0),
            min_str: None,
            max_str: None,
        });
        assert!(viz.prepare(&empty, &ok, 10).is_err());
        assert!(viz.prepare(&ok, &empty, 10).is_err());
    }
}
