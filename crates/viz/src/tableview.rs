//! Tabular-view rendering: pages, scroll bar, find.
//!
//! Paper App. B.4 maps spreadsheet actions to vizketches: the initial view
//! and scrolling use *next items*; moving the scroll bar runs *quantile*
//! then *next items*; find runs the *find* vizketch. This module renders
//! their summaries as a spreadsheet page.

use crate::samples;
use hillview_columnar::{RowKey, SortOrder};
use hillview_sketch::nextk::{NextKSketch, NextKSummary};
use hillview_sketch::quantile::QuantileSketch;
use std::fmt::Write as _;

/// A rendered spreadsheet page.
#[derive(Debug, Clone, PartialEq)]
pub struct TablePage {
    /// Column headers (sort columns first, then display columns).
    pub headers: Vec<String>,
    /// Rows as display strings, with a repetition count per row.
    pub rows: Vec<(Vec<String>, u64)>,
    /// Rows at-or-after this page's first row (drives the scroll thumb).
    pub matched: u64,
}

/// Tabular-view vizketch configuration.
#[derive(Debug, Clone)]
pub struct TableViewViz {
    /// Active sort order.
    pub order: SortOrder,
    /// Extra display columns.
    pub display_cols: Vec<String>,
    /// Rows per page (the paper's K, e.g. 20 visible rows).
    pub page_rows: usize,
    /// Scroll bar height in pixels.
    pub scrollbar_px: usize,
}

impl TableViewViz {
    /// A view sorted by `order` showing `page_rows` rows.
    pub fn new(order: SortOrder, page_rows: usize) -> Self {
        TableViewViz {
            order,
            display_cols: Vec::new(),
            page_rows: page_rows.max(1),
            scrollbar_px: 100,
        }
    }

    /// Add display columns.
    pub fn with_display(mut self, cols: &[&str]) -> Self {
        self.display_cols = cols.iter().map(|c| c.to_string()).collect();
        self
    }

    /// Sketch for the first page.
    pub fn first_page(&self) -> NextKSketch {
        self.page_after(None)
    }

    /// Sketch for the page after `start` (paging / scrolling one page).
    pub fn page_after(&self, start: Option<RowKey>) -> NextKSketch {
        let refs: Vec<&str> = self.display_cols.iter().map(|s| s.as_str()).collect();
        let mut sk = match start {
            None => NextKSketch::first_page(self.order.clone(), self.page_rows),
            Some(k) => NextKSketch::after(self.order.clone(), k, self.page_rows),
        };
        sk = sk.with_display(&refs);
        sk
    }

    /// Quantile sketch for a scroll-bar drag: the engine runs this first,
    /// then [`TableViewViz::page_after`] from the returned key (App. B.4:
    /// "Moving scrollbar: Quantile + next items").
    pub fn scrollbar_quantile(&self, population: u64) -> QuantileSketch {
        let target = samples::quantile(self.scrollbar_px, samples::DEFAULT_DELTA);
        let rate = samples::rate_for(target, population);
        QuantileSketch::new(self.order.clone(), rate, target as usize)
    }

    /// Scroll-bar pixel position → target quantile.
    pub fn pixel_to_quantile(&self, pixel: usize) -> f64 {
        pixel.min(self.scrollbar_px) as f64 / self.scrollbar_px as f64
    }

    /// Render a merged next-K summary as a page.
    pub fn render(&self, summary: &NextKSummary) -> TablePage {
        let mut headers: Vec<String> = self.order.names().map(|n| n.to_string()).collect();
        headers.extend(self.display_cols.iter().cloned());
        let rows = summary
            .rows
            .iter()
            .map(|(_, row, count)| (row.values.iter().map(|v| v.to_string()).collect(), *count))
            .collect();
        TablePage {
            headers,
            rows,
            matched: summary.matched,
        }
    }
}

impl TablePage {
    /// Fixed-width text rendering, like the spreadsheet's grid.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for (cells, _) in &self.rows {
            for (i, c) in cells.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let mut out = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(out, "{h:<w$} | ");
        }
        out.push_str("count\n");
        let total_w: usize = widths.iter().sum::<usize>() + widths.len() * 3 + 5;
        out.push_str(&"-".repeat(total_w));
        out.push('\n');
        for (cells, count) in &self.rows {
            for (c, w) in cells.iter().zip(&widths) {
                let _ = write!(out, "{c:<w$} | ");
            }
            let _ = writeln!(out, "{count}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, DictColumn, I64Column};
    use hillview_columnar::{ColumnKind, Table};
    use hillview_sketch::traits::Sketch;
    use hillview_sketch::TableView;
    use std::sync::Arc;

    fn view() -> TableView {
        let carriers = ["UA", "AA", "AA", "DL", "UA", "AA"];
        let delays = [10i64, 5, 5, 7, 2, 30];
        let t = Table::builder()
            .column(
                "Carrier",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings(carriers.iter().map(|&c| Some(c)))),
            )
            .column(
                "Delay",
                ColumnKind::Int,
                Column::Int(I64Column::from_options(delays.iter().map(|&d| Some(d)))),
            )
            .build()
            .unwrap();
        TableView::full(Arc::new(t))
    }

    #[test]
    fn first_page_renders_sorted_grid() {
        let viz = TableViewViz::new(SortOrder::ascending(&["Carrier", "Delay"]), 3);
        let s = viz.first_page().summarize(&view(), 0).unwrap();
        let page = viz.render(&s);
        assert_eq!(page.headers, vec!["Carrier", "Delay"]);
        assert_eq!(page.rows.len(), 3);
        assert_eq!(page.rows[0].0, vec!["AA", "5"]);
        assert_eq!(page.rows[0].1, 2, "duplicate (AA,5) aggregated");
        let text = page.to_text();
        assert!(text.contains("Carrier"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn paging_walks_the_dataset() {
        let viz = TableViewViz::new(SortOrder::ascending(&["Carrier", "Delay"]), 2);
        let p1 = viz.first_page().summarize(&view(), 0).unwrap();
        let last = p1.rows.last().unwrap().0.clone();
        let p2 = viz.page_after(Some(last)).summarize(&view(), 0).unwrap();
        let page2 = viz.render(&p2);
        assert_eq!(page2.rows[0].0, vec!["DL", "7"]);
    }

    #[test]
    fn scrollbar_quantile_then_page() {
        let viz = TableViewViz::new(SortOrder::ascending(&["Delay"]), 2);
        let v = view();
        let q = viz.scrollbar_quantile(6).summarize(&v, 0).unwrap();
        // Middle of the scroll bar → median-ish key.
        let key = q.quantile(viz.pixel_to_quantile(50)).unwrap();
        let page = viz.page_after(Some(key.clone())).summarize(&v, 0).unwrap();
        assert!(!page.rows.is_empty());
        assert!(page.rows[0].0 > key, "page starts after the quantile key");
    }

    #[test]
    fn display_columns_render() {
        let viz = TableViewViz::new(SortOrder::ascending(&["Delay"]), 2).with_display(&["Carrier"]);
        let s = viz.first_page().summarize(&view(), 0).unwrap();
        let page = viz.render(&s);
        assert_eq!(page.headers, vec!["Delay", "Carrier"]);
        assert_eq!(page.rows[0].0, vec!["2", "UA"]);
    }

    #[test]
    fn pixel_to_quantile_maps_linearly() {
        let viz = TableViewViz::new(SortOrder::ascending(&["Delay"]), 2);
        assert_eq!(viz.pixel_to_quantile(0), 0.0);
        assert_eq!(viz.pixel_to_quantile(50), 0.5);
        assert_eq!(viz.pixel_to_quantile(100), 1.0);
        assert_eq!(viz.pixel_to_quantile(999), 1.0, "clamped");
    }
}
