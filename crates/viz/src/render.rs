//! Rendering data structures.
//!
//! The paper's client renders summaries as SVG in a browser; here renderings
//! are explicit data structures — bar heights in integer pixels, density
//! grids in color-shade indexes — that tests can assert on, plus an ASCII
//! backend for the examples. The structures are deliberately lossy in
//! exactly the way a screen is: that quantization is what vizketches exploit.

use std::fmt::Write as _;

/// A bar chart rendered to integer pixel heights.
#[derive(Debug, Clone, PartialEq)]
pub struct BarChart {
    /// Height of each bar in pixels (0..=height_px).
    pub heights_px: Vec<u32>,
    /// Vertical resolution the heights are scaled to.
    pub height_px: usize,
    /// The count represented by the tallest bar (the scale anchor).
    pub max_count: u64,
    /// Bar labels (bucket bounds or strings).
    pub labels: Vec<String>,
}

impl BarChart {
    /// Render counts to pixel heights: the largest count maps to the full
    /// height ("to maximize use of screen, we should scale the bars so that
    /// the largest one has V pixels", §4.3); others round to nearest pixel.
    pub fn from_counts(counts: &[u64], height_px: usize, labels: Vec<String>) -> Self {
        let max_count = counts.iter().copied().max().unwrap_or(0);
        let heights_px = counts
            .iter()
            .map(|&c| scale_to_pixels(c, max_count, height_px))
            .collect();
        BarChart {
            heights_px,
            height_px,
            max_count,
            labels,
        }
    }

    /// ASCII rendering, one row of characters per `rows` pixel band.
    pub fn to_ascii(&self, rows: usize) -> String {
        let rows = rows.max(1);
        let mut out = String::new();
        for r in (0..rows).rev() {
            let threshold = ((r as f64 + 0.5) / rows as f64 * self.height_px as f64) as u32;
            for &h in &self.heights_px {
                out.push(if h > threshold { '█' } else { ' ' });
            }
            out.push('\n');
        }
        let _ = writeln!(out, "{}", "▔".repeat(self.heights_px.len()));
        out
    }
}

/// Scale `count` into `0..=height_px` pixels relative to `max_count`,
/// rounding to the nearest pixel (the ±½ px quantization of Fig. 3).
pub fn scale_to_pixels(count: u64, max_count: u64, height_px: usize) -> u32 {
    if max_count == 0 {
        return 0;
    }
    ((count as f64 / max_count as f64) * height_px as f64).round() as u32
}

/// A heat map rendered to color-shade indexes.
#[derive(Debug, Clone, PartialEq)]
pub struct ColorGrid {
    /// X bins.
    pub bx: usize,
    /// Y bins.
    pub by: usize,
    /// Shade index per cell (0 = empty, `shades` = densest), row-major by X.
    pub cells: Vec<u8>,
    /// Number of discernible shades.
    pub shades: usize,
    /// The count mapped to the densest shade.
    pub max_count: u64,
}

impl ColorGrid {
    /// Map counts to shades linearly ("sampling can be used only if the map
    /// from count to color is linear", §4.3): 0 stays 0, the maximum maps to
    /// `shades`, everything else rounds to the nearest shade, minimum 1 so
    /// that presence is always visible.
    pub fn from_counts(counts: &[u64], bx: usize, by: usize, shades: usize) -> Self {
        debug_assert_eq!(counts.len(), bx * by);
        let max_count = counts.iter().copied().max().unwrap_or(0);
        let cells = counts
            .iter()
            .map(|&c| shade_of(c, max_count, shades))
            .collect();
        ColorGrid {
            bx,
            by,
            cells,
            shades,
            max_count,
        }
    }

    /// Shade at (x, y).
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.cells[x * self.by + y]
    }

    /// ASCII rendering with a density ramp, y growing upward.
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut out = String::new();
        for y in (0..self.by).rev() {
            for x in 0..self.bx {
                let s = self.get(x, y) as usize;
                let idx = s * (RAMP.len() - 1) / self.shades.max(1);
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

/// Linear count→shade quantization.
pub fn shade_of(count: u64, max_count: u64, shades: usize) -> u8 {
    if count == 0 || max_count == 0 {
        return 0;
    }
    let s = (count as f64 / max_count as f64 * shades as f64).round() as u8;
    s.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallest_bar_fills_the_height() {
        let c = BarChart::from_counts(&[10, 20, 5], 100, vec![]);
        assert_eq!(c.heights_px, vec![50, 100, 25]);
        assert_eq!(c.max_count, 20);
    }

    #[test]
    fn empty_chart_is_flat() {
        let c = BarChart::from_counts(&[0, 0], 100, vec![]);
        assert_eq!(c.heights_px, vec![0, 0]);
        assert_eq!(c.max_count, 0);
    }

    #[test]
    fn pixel_rounding_is_nearest() {
        // 1/3 of 100 px = 33.3 → 33; 2/3 → 66.67 → 67.
        assert_eq!(scale_to_pixels(1, 3, 100), 33);
        assert_eq!(scale_to_pixels(2, 3, 100), 67);
    }

    #[test]
    fn ascii_bar_chart_shape() {
        let c = BarChart::from_counts(&[1, 2], 2, vec![]);
        let art = c.to_ascii(2);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines[0], " █", "only the tall bar reaches the top row");
        assert_eq!(lines[1], "██");
    }

    #[test]
    fn shades_quantize_linearly() {
        assert_eq!(shade_of(0, 100, 20), 0);
        assert_eq!(shade_of(100, 100, 20), 20);
        assert_eq!(shade_of(50, 100, 20), 10);
        assert_eq!(shade_of(1, 1000, 20), 1, "presence is visible");
    }

    #[test]
    fn grid_layout_and_ascii() {
        let g = ColorGrid::from_counts(&[0, 10, 5, 0], 2, 2, 10);
        assert_eq!(g.get(0, 0), 0);
        assert_eq!(g.get(0, 1), 10);
        assert_eq!(g.get(1, 0), 5);
        let art = g.to_ascii();
        assert_eq!(art.lines().count(), 2);
        assert!(art.starts_with('@'), "densest cell renders darkest:\n{art}");
    }
}
