//! # hillview-viz
//!
//! Vizketches: visualization-driven mergeable summaries (the paper's core
//! idea, §4). A vizketch is a sketch whose parameters — bucket counts,
//! sampling rates, retained rows — are derived from the *display
//! resolution*, so it computes "only what you can display":
//!
//! > "A vizketch ... adjusts its accuracy and resolution to match the
//! > display resolution and compute only what can be visually discerned."
//!
//! This crate layers those parameter choices and the rendering logic on top
//! of the raw summarization kernels in `hillview-sketch`:
//!
//! * [`display`] — screen geometry ([`DisplaySpec`]): pixel dimensions, bar
//!   widths, color-shade counts.
//! * [`samples`] — the sample-size formulas of Appendix C (histogram
//!   `O(V²·log 1/δ)`, CDF, heat map, quantiles, heavy hitters).
//! * One module per visualization — [`histogram`], [`cdf`], [`stacked`],
//!   [`heatmap`], [`trellis`], [`heavyviz`], [`tableview`] — each pairing a
//!   `prepare` step (phase-1 range/count → parameterized sketch) with a
//!   `render` step (summary → pixel-level rendering).
//! * [`render`] — rendering data structures (bar charts in pixels, color
//!   grids in shades) plus ASCII output for the examples.
//! * [`accuracy`] — verification that sampled renderings stay within the
//!   paper's guarantees (±½ pixel per bar, ±1 color shade per cell,
//!   Fig. 3/13).

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod accuracy;
pub mod cdf;
pub mod display;
pub mod heatmap;
pub mod heavyviz;
pub mod histogram;
pub mod render;
pub mod samples;
pub mod stacked;
pub mod tableview;
pub mod trellis;

pub use display::DisplaySpec;
pub use render::{BarChart, ColorGrid};
