//! Sample-size formulas (paper Appendix C).
//!
//! Each formula returns the number of rows a vizketch must sample for its
//! rendering error to stay below perception thresholds with probability
//! 1 − δ. Crucially, every formula depends only on screen geometry — never
//! on the dataset size — which is what makes vizketches "scalable by
//! construction" (§1): on more data they sample *more aggressively*.
//!
//! The theorems give asymptotic bounds; following the paper's practice
//! ("In practice, we have found that using CV² samples for constant C works
//! well", App. C.2) the functions below use calibrated constants and are
//! validated empirically by the accuracy tests in [`crate::accuracy`].

/// Default error probability δ.
pub const DEFAULT_DELTA: f64 = 0.01;

/// Calibration constant for the CV² histogram rule.
const HISTOGRAM_C: f64 = 5.0;

/// Samples for a histogram with `v_px` vertical pixels (Theorem 3 with the
/// pragmatic CV² rule): the tallest bar is off by at most ~½ pixel w.h.p.
pub fn histogram(v_px: usize, delta: f64) -> u64 {
    let v = v_px as f64;
    (HISTOGRAM_C * v * v * (1.0 / delta).ln()).ceil() as u64
}

/// Samples for a CDF over `v_px` vertical pixels: `O(V² log 1/δ)`
/// (App. B.1). The CDF needs accuracy ±0.1/V per horizontal pixel.
pub fn cdf(v_px: usize, delta: f64) -> u64 {
    let v = v_px as f64;
    (25.0 * v * v * (1.0 / delta).ln()).ceil() as u64
}

/// Samples for a heat map with `c` color shades where the densest cell
/// holds fraction `p_max` of the data: `O(c²/p_max²)` (App. C.2). `p_max`
/// is unknown before the scan, so callers pass an estimate (1 / number of
/// populated cells is a reasonable prior); the result is clamped to a
/// budget because the theoretical bound explodes for tiny `p_max`.
pub fn heatmap(shades: usize, p_max_estimate: f64, delta: f64) -> u64 {
    let c = shades as f64;
    let p = p_max_estimate.clamp(1e-6, 1.0);
    let n = (c * c / (p * p) * (1.0 / delta).ln()).ceil() as u64;
    n.min(heatmap_budget())
}

/// Upper bound on heat-map sampling: past this, streaming the data is
/// cheaper than sampling it (sampling is an optimization, not a cap on
/// correctness — the engine falls back to exact scans).
pub fn heatmap_budget() -> u64 {
    8_000_000
}

/// Samples for a scroll-bar quantile with `v_px` pixels: Theorem 2 with
/// ε = 1/2V gives `O(V²)` for constant success probability; the paper uses
/// exactly that ("In practice, we choose ε = 1/(2V) ... which requires
/// sample complexity O(V²)", App. C.1). δ sharpens the constant mildly.
pub fn quantile(v_px: usize, delta: f64) -> u64 {
    let v = v_px as f64;
    ((4.0 * v * v) * (1.0 + (1.0 / delta).ln() / 10.0)).ceil() as u64
}

/// Samples for sampled heavy hitters: `K² log(K/δ)` (Theorem 4).
pub fn heavy_hitters(k: usize, delta: f64) -> u64 {
    let k = k.max(1) as f64;
    (k * k * (k / delta).ln()).ceil() as u64
}

/// Convert a target sample size into a per-row Bernoulli rate for a dataset
/// of `population` rows. Rates ≥ 1 mean "scan everything" — sampling only
/// ever *reduces* work (paper §4.4 "Scalability").
pub fn rate_for(target: u64, population: u64) -> f64 {
    if population == 0 {
        return 1.0;
    }
    (target as f64 / population as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_independent_of_data_size() {
        // The whole point: no formula takes a dataset size.
        let n1 = histogram(200, DEFAULT_DELTA);
        assert!(n1 > 0);
        // More pixels ⇒ more samples.
        assert!(histogram(400, DEFAULT_DELTA) > n1);
        // Lower δ ⇒ more samples.
        assert!(histogram(200, 0.001) > histogram(200, 0.01));
    }

    #[test]
    fn histogram_magnitude_is_practical() {
        // ~200 px tall chart: sample count in the single-digit millions at
        // most — far below the billions of rows it summarizes.
        let n = histogram(200, DEFAULT_DELTA);
        assert!((100_000..10_000_000).contains(&n), "n = {n}");
    }

    #[test]
    fn cdf_needs_more_than_histogram_per_pixel() {
        assert!(cdf(200, DEFAULT_DELTA) > histogram(200, DEFAULT_DELTA) / 10);
    }

    #[test]
    fn heatmap_clamped_to_budget() {
        let n = heatmap(20, 1e-9, DEFAULT_DELTA);
        assert_eq!(n, heatmap_budget());
        let n2 = heatmap(20, 0.1, DEFAULT_DELTA);
        assert!(n2 < heatmap_budget());
    }

    #[test]
    fn quantile_formula() {
        let n = quantile(100, DEFAULT_DELTA);
        assert!(n >= 40_000, "at least 4V²: {n}");
        assert!(n < 80_000, "within a small constant of 4V²: {n}");
        assert!(quantile(100, 0.001) > n, "lower δ, more samples");
    }

    #[test]
    fn heavy_hitters_formula() {
        assert_eq!(
            heavy_hitters(10, 0.01),
            (100.0 * (1000.0f64).ln()).ceil() as u64
        );
        assert!(heavy_hitters(0, 0.01) > 0, "k=0 clamps to 1");
    }

    #[test]
    fn rate_conversion() {
        assert_eq!(rate_for(1000, 0), 1.0);
        assert_eq!(rate_for(1000, 500), 1.0, "never upsample");
        assert!((rate_for(1000, 100_000) - 0.01).abs() < 1e-12);
    }
}
