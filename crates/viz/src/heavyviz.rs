//! Heavy-hitters visualization (paper §4.3, App. B.2).
//!
//! Subsumes pie charts (§3.4): the rendering is a ranked table of the most
//! frequent values with counts and percentages, plus a bar chart. Two
//! back-end algorithms are available — Misra-Gries (exact guarantee, full
//! scan) and sampling (cheaper; "better ... when K ≥ 1/100", App. B.2).

use crate::display::DisplaySpec;
use crate::render::BarChart;
use crate::samples;
use hillview_columnar::Value;
use hillview_sketch::heavy::{
    MisraGriesSketch, MisraGriesSummary, SampledHeavyHittersSketch, SampledHeavyHittersSummary,
};
use std::sync::Arc;

/// Which heavy-hitter algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeavyHittersMode {
    /// Misra-Gries streaming counters.
    Streaming,
    /// Uniform sampling (paper Theorem 4).
    Sampling,
}

/// Heavy-hitters vizketch configuration.
#[derive(Debug, Clone)]
pub struct HeavyHittersViz {
    /// Column to analyze.
    pub column: Arc<str>,
    /// Maximum number of heavy hitters (the paper's K).
    pub k: usize,
    /// Algorithm choice.
    pub mode: HeavyHittersMode,
    /// Error probability δ (sampling mode).
    pub delta: f64,
}

/// A ranked heavy-hitters table.
#[derive(Debug, Clone, PartialEq)]
pub struct HeavyHittersRendering {
    /// (value, estimated count, share of total), descending by count.
    pub items: Vec<(Value, u64, f64)>,
    /// Total rows the shares are relative to.
    pub total: u64,
}

impl HeavyHittersViz {
    /// Streaming (Misra-Gries) heavy hitters.
    pub fn streaming(column: &str, k: usize) -> Self {
        HeavyHittersViz {
            column: Arc::from(column),
            k: k.max(1),
            mode: HeavyHittersMode::Streaming,
            delta: samples::DEFAULT_DELTA,
        }
    }

    /// Sampling heavy hitters.
    pub fn sampling(column: &str, k: usize) -> Self {
        HeavyHittersViz {
            mode: HeavyHittersMode::Sampling,
            ..Self::streaming(column, k)
        }
    }

    /// The Misra-Gries sketch (streaming mode).
    pub fn prepare_streaming(&self) -> MisraGriesSketch {
        MisraGriesSketch::new(&self.column, self.k)
    }

    /// The sampling sketch, with rate derived from K, δ and the population
    /// (paper: n = K² log(K/δ)).
    pub fn prepare_sampling(&self, population: u64) -> SampledHeavyHittersSketch {
        let target = samples::heavy_hitters(self.k, self.delta);
        let rate = samples::rate_for(target, population);
        SampledHeavyHittersSketch::new(&self.column, self.k, rate)
    }

    /// Render a Misra-Gries summary: items above frequency 1/K.
    pub fn render_streaming(&self, summary: &MisraGriesSummary) -> HeavyHittersRendering {
        let items = summary
            .heavy_hitters(1.0 / self.k as f64)
            .into_iter()
            .map(|(v, c)| {
                let share = if summary.total > 0 {
                    c as f64 / summary.total as f64
                } else {
                    0.0
                };
                (v, c, share)
            })
            .collect();
        HeavyHittersRendering {
            items,
            total: summary.total,
        }
    }

    /// Render a sampling summary: items above 3n/4K of the sample, with
    /// counts extrapolated to the population.
    pub fn render_sampling(
        &self,
        summary: &SampledHeavyHittersSummary,
        population: u64,
    ) -> HeavyHittersRendering {
        let scale = if summary.sampled > 0 {
            population as f64 / summary.sampled as f64
        } else {
            0.0
        };
        let items = summary
            .heavy_hitters(self.k)
            .into_iter()
            .map(|(v, c)| {
                let est = (c as f64 * scale).round() as u64;
                let share = if population > 0 {
                    est as f64 / population as f64
                } else {
                    0.0
                };
                (v, est, share)
            })
            .collect();
        HeavyHittersRendering {
            items,
            total: population,
        }
    }
}

impl HeavyHittersRendering {
    /// Bar chart of the ranked counts (pie-chart substitute).
    pub fn to_bar_chart(&self, display: DisplaySpec) -> BarChart {
        let counts: Vec<u64> = self.items.iter().map(|(_, c, _)| *c).collect();
        let labels = self.items.iter().map(|(v, _, _)| v.to_string()).collect();
        BarChart::from_counts(&counts, display.height_px, labels)
    }

    /// Text table for the spreadsheet UI.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (v, c, share) in &self.items {
            out.push_str(&format!("{v:<24} {c:>12} {:>6.2}%\n", share * 100.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, DictColumn};
    use hillview_columnar::{ColumnKind, Table};
    use hillview_sketch::traits::Sketch;
    use hillview_sketch::TableView;
    use std::sync::Arc as StdArc;

    fn view() -> TableView {
        // 10k rows: "UA" 50%, "AA" 30%, 2000 distinct rare tails.
        let vals: Vec<String> = (0..10_000)
            .map(|i| match i % 10 {
                0..=4 => "UA".to_string(),
                5..=7 => "AA".to_string(),
                _ => format!("rare{}", i),
            })
            .collect();
        let t = Table::builder()
            .column(
                "Carrier",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings(
                    vals.iter().map(|s| Some(s.as_str())),
                )),
            )
            .build()
            .unwrap();
        TableView::full(StdArc::new(t))
    }

    #[test]
    fn streaming_mode_end_to_end() {
        let v = view();
        let viz = HeavyHittersViz::streaming("Carrier", 5);
        let s = viz.prepare_streaming().summarize(&v, 0).unwrap();
        let r = viz.render_streaming(&s);
        assert_eq!(r.items[0].0, Value::str("UA"));
        assert_eq!(r.items[1].0, Value::str("AA"));
        assert!(r.items[0].2 > 0.4 && r.items[0].2 < 0.6, "{}", r.items[0].2);
        assert!(r.items.len() <= 5);
    }

    #[test]
    fn sampling_mode_end_to_end() {
        let v = view();
        let viz = HeavyHittersViz::sampling("Carrier", 5);
        let sketch = viz.prepare_sampling(10_000);
        let s = sketch.summarize(&v, 9).unwrap();
        let r = viz.render_sampling(&s, 10_000);
        assert_eq!(r.items[0].0, Value::str("UA"));
        // Extrapolated count within 20% of truth (5000).
        assert!(
            (r.items[0].1 as f64 - 5000.0).abs() < 1000.0,
            "{}",
            r.items[0].1
        );
        // Rare values excluded.
        assert!(r
            .items
            .iter()
            .all(|(v, _, _)| !v.to_string().starts_with("rare")));
    }

    #[test]
    fn renderings_export() {
        let v = view();
        let viz = HeavyHittersViz::streaming("Carrier", 4);
        let s = viz.prepare_streaming().summarize(&v, 0).unwrap();
        let r = viz.render_streaming(&s);
        let chart = r.to_bar_chart(DisplaySpec::new(100, 50));
        assert_eq!(chart.heights_px[0], 50, "top item fills the chart");
        let text = r.to_text();
        assert!(text.contains("UA"));
        assert!(text.contains('%'));
    }

    #[test]
    fn sampling_rate_derivation() {
        let viz = HeavyHittersViz::sampling("Carrier", 10);
        let sk = viz.prepare_sampling(1_000_000_000);
        // n = K²log(K/δ) ≈ 691; rate ≈ 6.9e-7.
        assert!(sk.rate < 1e-5, "rate {}", sk.rate);
        let sk_small = viz.prepare_sampling(100);
        assert!(sk_small.rate >= 1.0);
    }
}
