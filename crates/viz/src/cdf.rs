//! The CDF vizketch (paper App. B.1, Fig. 13(a)).
//!
//! A CDF plot has one bucket per *horizontal pixel*; the rendering plots,
//! for each pixel column `h`, the fraction of data ≤ the value represented
//! by `h`, quantized to the vertical resolution. Sampling to ±0.1/V per
//! pixel keeps the drawn curve within 0.6/V of truth (App. B.1), i.e. at
//! most one pixel off.

use crate::display::DisplaySpec;
use crate::samples;
use hillview_sketch::buckets::BucketSpec;
use hillview_sketch::histogram::{HistogramSketch, HistogramSummary};
use hillview_sketch::range::RangeSummary;
use hillview_sketch::traits::{SketchError, SketchResult};
use std::sync::Arc;

/// CDF vizketch configuration.
#[derive(Debug, Clone)]
pub struct CdfViz {
    /// Column to plot.
    pub column: Arc<str>,
    /// Target display: one bucket per horizontal pixel.
    pub display: DisplaySpec,
    /// Exact scan instead of sampling.
    pub exact: bool,
    /// Error probability δ.
    pub delta: f64,
}

/// A rendered CDF: for each horizontal pixel, the curve height in pixels.
#[derive(Debug, Clone, PartialEq)]
pub struct CdfRendering {
    /// Curve height (0..=height_px) per horizontal pixel, non-decreasing.
    pub heights_px: Vec<u32>,
    /// Vertical resolution.
    pub height_px: usize,
    /// Rows included in the estimate (sampled count).
    pub rows: u64,
}

impl CdfViz {
    /// Sampled CDF of `column` on `display`.
    pub fn new(column: &str, display: DisplaySpec) -> Self {
        CdfViz {
            column: Arc::from(column),
            display,
            exact: false,
            delta: samples::DEFAULT_DELTA,
        }
    }

    /// Use the exact streaming kernel.
    pub fn exact(mut self) -> Self {
        self.exact = true;
        self
    }

    /// Phase-2 sketch from the phase-1 range: a histogram with one bucket
    /// per horizontal pixel.
    pub fn prepare(&self, range: &RangeSummary) -> SketchResult<HistogramSketch> {
        let (min, max) = match (range.min, range.max) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(SketchError::BadConfig(format!(
                    "column {} has no numeric range",
                    self.column
                )))
            }
        };
        let hi = if max > min {
            max + (max - min) * 1e-9
        } else {
            min + 1.0
        };
        let spec = BucketSpec::numeric(min, hi, self.display.width_px);
        if self.exact {
            Ok(HistogramSketch::streaming(&self.column, spec))
        } else {
            let target = samples::cdf(self.display.height_px, self.delta);
            let rate = samples::rate_for(target, range.present);
            Ok(HistogramSketch::sampled(&self.column, spec, rate))
        }
    }

    /// Render the merged per-pixel histogram as a cumulative curve.
    pub fn render(&self, summary: &HistogramSummary) -> CdfRendering {
        let total: u64 = summary.total_in_buckets() + summary.out_of_range;
        let v = self.display.height_px as f64;
        let mut heights = Vec::with_capacity(summary.buckets.len());
        let mut acc = 0u64;
        for &b in &summary.buckets {
            acc += b;
            let frac = if total == 0 {
                0.0
            } else {
                acc as f64 / total as f64
            };
            heights.push((frac * v).round() as u32);
        }
        CdfRendering {
            heights_px: heights,
            height_px: self.display.height_px,
            rows: summary.rows_inspected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, F64Column};
    use hillview_columnar::{ColumnKind, Table};
    use hillview_sketch::range::RangeSketch;
    use hillview_sketch::traits::Sketch;
    use hillview_sketch::TableView;
    use std::sync::Arc as StdArc;

    fn uniform_view(n: usize) -> TableView {
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(
                    (0..n).map(|i| Some(i as f64 / n as f64)),
                )),
            )
            .build()
            .unwrap();
        TableView::full(StdArc::new(t))
    }

    #[test]
    fn uniform_data_renders_a_straight_line() {
        let v = uniform_view(50_000);
        let viz = CdfViz::new("X", DisplaySpec::new(100, 100)).exact();
        let range = RangeSketch::new("X").summarize(&v, 0).unwrap();
        let sketch = viz.prepare(&range).unwrap();
        let summary = sketch.summarize(&v, 0).unwrap();
        let cdf = viz.render(&summary);
        assert_eq!(cdf.heights_px.len(), 100);
        // Monotone non-decreasing, ends at full height.
        assert!(cdf.heights_px.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*cdf.heights_px.last().unwrap(), 100);
        // Straight line: pixel h ≈ h+1 high.
        for (h, &y) in cdf.heights_px.iter().enumerate() {
            assert!(
                (y as i64 - (h as i64 + 1)).abs() <= 1,
                "pixel {h} height {y}"
            );
        }
    }

    #[test]
    fn sampled_cdf_within_one_pixel_of_exact() {
        let v = uniform_view(600_000);
        let display = DisplaySpec::new(80, 50);
        let range = RangeSketch::new("X").summarize(&v, 0).unwrap();

        let exact_viz = CdfViz::new("X", display).exact();
        let exact = exact_viz.render(&exact_viz.prepare(&range).unwrap().summarize(&v, 0).unwrap());

        let viz = CdfViz::new("X", display);
        let sketch = viz.prepare(&range).unwrap();
        assert!(sketch.rate < 1.0, "should sample on 600k rows");
        let cdf = viz.render(&sketch.summarize(&v, 3).unwrap());

        let max_err = cdf
            .heights_px
            .iter()
            .zip(&exact.heights_px)
            .map(|(a, b)| (*a as i64 - *b as i64).unsigned_abs())
            .max()
            .unwrap();
        assert!(max_err <= 1, "max pixel error {max_err} (paper: ≤ 1)");
    }

    #[test]
    fn skewed_distribution_bends_the_curve() {
        // 90% of mass in the lowest decile.
        let vals: Vec<Option<f64>> = (0..10_000)
            .map(|i| Some(if i % 10 < 9 { 0.05 } else { 0.95 }))
            .collect();
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(vals)),
            )
            .build()
            .unwrap();
        let v = TableView::full(StdArc::new(t));
        let viz = CdfViz::new("X", DisplaySpec::new(100, 100)).exact();
        let range = RangeSketch::new("X").summarize(&v, 0).unwrap();
        let cdf = viz.render(&viz.prepare(&range).unwrap().summarize(&v, 0).unwrap());
        // After the first 10% of pixels the curve is already at ~90 px.
        assert!(cdf.heights_px[15] >= 85, "{}", cdf.heights_px[15]);
    }

    #[test]
    fn empty_range_is_error() {
        let viz = CdfViz::new("X", DisplaySpec::default_chart());
        assert!(viz.prepare(&RangeSummary::default()).is_err());
    }
}
