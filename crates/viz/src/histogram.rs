//! The histogram vizketch (paper §4.3, App. B.1, Fig. 13(b)).
//!
//! `prepare` turns phase-1 results (column range or string quantiles, row
//! count) into a parameterized [`HistogramSketch`]; `render` turns the
//! merged summary into a [`BarChart`] whose bars are scaled so the tallest
//! occupies the full height and every bar is within ±½ pixel w.h.p.

use crate::display::DisplaySpec;
use crate::render::BarChart;
use crate::samples;
use hillview_sketch::bottomk::BottomKSummary;
use hillview_sketch::buckets::BucketSpec;
use hillview_sketch::histogram::{HistogramSketch, HistogramSummary};
use hillview_sketch::range::RangeSummary;
use hillview_sketch::traits::{SketchError, SketchResult};
use std::sync::Arc;

/// Histogram vizketch configuration.
#[derive(Debug, Clone)]
pub struct HistogramViz {
    /// Column to chart.
    pub column: Arc<str>,
    /// Target display.
    pub display: DisplaySpec,
    /// User-requested bucket count (clamped to what the display fits).
    pub requested_buckets: Option<usize>,
    /// Use the exact streaming kernel instead of sampling (paper §4.3
    /// "Histogram (streaming)": "if users want to get the results precise
    /// to the last digit").
    pub exact: bool,
    /// Error probability δ for the sampled variant.
    pub delta: f64,
}

impl HistogramViz {
    /// Sampled histogram of `column` on `display`.
    pub fn new(column: &str, display: DisplaySpec) -> Self {
        HistogramViz {
            column: Arc::from(column),
            display,
            requested_buckets: None,
            exact: false,
            delta: samples::DEFAULT_DELTA,
        }
    }

    /// Switch to the exact streaming kernel.
    pub fn exact(mut self) -> Self {
        self.exact = true;
        self
    }

    /// Request a specific number of buckets (zooming changes this).
    pub fn with_buckets(mut self, b: usize) -> Self {
        self.requested_buckets = Some(b);
        self
    }

    /// Build a numeric bucket spec covering `[min, max]` (phase-1 range).
    /// The upper edge is nudged above `max` so the maximum lands in the last
    /// bucket ([`BucketSpec`] ranges are half-open).
    pub fn numeric_spec(&self, range: &RangeSummary) -> SketchResult<BucketSpec> {
        let (min, max) = match (range.min, range.max) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(SketchError::BadConfig(format!(
                    "column {} has no numeric range (empty or non-numeric)",
                    self.column
                )))
            }
        };
        let hi = bump_above(min, max);
        Ok(BucketSpec::numeric(
            min,
            hi,
            self.display.histogram_buckets(self.requested_buckets),
        ))
    }

    /// Phase-2 sketch for a numeric column, given the phase-1 range.
    pub fn prepare_numeric(&self, range: &RangeSummary) -> SketchResult<HistogramSketch> {
        let spec = self.numeric_spec(range)?;
        Ok(self.finish_prepare(spec, range.present))
    }

    /// Phase-2 sketch for a string column, given phase-1 bottom-k quantiles
    /// (paper App. B.1 "Equi-width buckets for string data").
    pub fn prepare_strings(&self, bottomk: &BottomKSummary) -> SketchResult<HistogramSketch> {
        let budget = self
            .display
            .string_buckets()
            .min(self.requested_buckets.unwrap_or(usize::MAX));
        let boundaries = bottomk.bucket_boundaries(budget);
        if boundaries.is_empty() {
            return Err(SketchError::BadConfig(format!(
                "column {} has no string values",
                self.column
            )));
        }
        Ok(self.finish_prepare(BucketSpec::strings(boundaries), bottomk.rows))
    }

    fn finish_prepare(&self, spec: BucketSpec, population: u64) -> HistogramSketch {
        if self.exact {
            HistogramSketch::streaming(&self.column, spec)
        } else {
            let target = samples::histogram(self.display.height_px, self.delta);
            let rate = samples::rate_for(target, population);
            HistogramSketch::sampled(&self.column, spec, rate)
        }
    }

    /// Render the merged summary as a bar chart.
    pub fn render(&self, sketch: &HistogramSketch, summary: &HistogramSummary) -> BarChart {
        let labels = (0..sketch.buckets.count())
            .map(|i| sketch.buckets.label(i))
            .collect();
        BarChart::from_counts(&summary.buckets, self.display.height_px, labels)
    }
}

/// The smallest double strictly above `max` that still gives a non-empty
/// `[min, hi)` interval; widens degenerate ranges to one unit.
fn bump_above(min: f64, max: f64) -> f64 {
    if max > min {
        let width = max - min;
        max + width * 1e-9 + f64::EPSILON * max.abs().max(1.0)
    } else {
        min + 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, F64Column};
    use hillview_columnar::{ColumnKind, Table};
    use hillview_sketch::bottomk::BottomKSketch;
    use hillview_sketch::range::RangeSketch;
    use hillview_sketch::traits::Sketch;
    use hillview_sketch::TableView;

    fn uniform_view(n: usize) -> TableView {
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(
                    (0..n).map(|i| Some((i % 1000) as f64)),
                )),
            )
            .build()
            .unwrap();
        TableView::full(std::sync::Arc::new(t))
    }

    #[test]
    fn two_phase_numeric_flow() {
        let v = uniform_view(100_000);
        let viz = HistogramViz::new("X", DisplaySpec::new(400, 200)).with_buckets(10);
        // Phase 1: range.
        let range = RangeSketch::new("X").summarize(&v, 0).unwrap();
        // Phase 2: histogram.
        let sketch = viz.prepare_numeric(&range).unwrap();
        let summary = sketch.summarize(&v, 1).unwrap();
        let chart = viz.render(&sketch, &summary);
        assert_eq!(chart.heights_px.len(), 10);
        // Uniform data: all bars within a few pixels of the maximum.
        let max = *chart.heights_px.iter().max().unwrap();
        assert_eq!(max as usize, 200, "tallest bar fills the display");
        for &h in &chart.heights_px {
            assert!(max - h < 20, "uniform bars ragged: {:?}", chart.heights_px);
        }
    }

    #[test]
    fn max_value_lands_in_last_bucket() {
        let v = uniform_view(1000);
        let viz = HistogramViz::new("X", DisplaySpec::default_chart())
            .with_buckets(7)
            .exact();
        let range = RangeSketch::new("X").summarize(&v, 0).unwrap();
        let sketch = viz.prepare_numeric(&range).unwrap();
        let summary = sketch.summarize(&v, 0).unwrap();
        assert_eq!(summary.out_of_range, 0, "range covers min..=max");
        assert_eq!(summary.total_in_buckets(), 1000);
    }

    #[test]
    fn sampled_rate_reflects_population() {
        let viz = HistogramViz::new("X", DisplaySpec::new(400, 100));
        let small = RangeSummary {
            present: 1000,
            missing: 0,
            min: Some(0.0),
            max: Some(1.0),
            min_str: None,
            max_str: None,
        };
        let huge = RangeSummary {
            present: 1_000_000_000,
            ..small.clone()
        };
        let s1 = viz.prepare_numeric(&small).unwrap();
        let s2 = viz.prepare_numeric(&huge).unwrap();
        assert!((s1.rate - 1.0).abs() < 1e-12, "small data: scan everything");
        assert!(s2.rate < 0.01, "big data: aggressive sampling");
    }

    #[test]
    fn exact_flag_disables_sampling() {
        let viz = HistogramViz::new("X", DisplaySpec::default_chart()).exact();
        let range = RangeSummary {
            present: 1_000_000_000,
            missing: 0,
            min: Some(0.0),
            max: Some(1.0),
            min_str: None,
            max_str: None,
        };
        assert!(viz.prepare_numeric(&range).unwrap().rate >= 1.0);
    }

    #[test]
    fn string_histogram_flow() {
        use hillview_columnar::column::DictColumn;
        let vals: Vec<String> = (0..500).map(|i| format!("k{:03}", i % 60)).collect();
        let t = Table::builder()
            .column(
                "S",
                ColumnKind::String,
                Column::Str(DictColumn::from_strings(
                    vals.iter().map(|s| Some(s.as_str())),
                )),
            )
            .build()
            .unwrap();
        let v = TableView::full(std::sync::Arc::new(t));
        let viz = HistogramViz::new("S", DisplaySpec::new(200, 100)).exact();
        let bk = BottomKSketch::new("S", 512).summarize(&v, 0).unwrap();
        let sketch = viz.prepare_strings(&bk).unwrap();
        assert!(sketch.buckets.count() <= 50);
        let summary = sketch.summarize(&v, 0).unwrap();
        assert_eq!(summary.total_in_buckets(), 500);
    }

    #[test]
    fn empty_range_is_an_error() {
        let viz = HistogramViz::new("X", DisplaySpec::default_chart());
        let empty = RangeSummary::default();
        assert!(viz.prepare_numeric(&empty).is_err());
    }

    #[test]
    fn degenerate_range_widens() {
        assert_eq!(bump_above(5.0, 5.0), 6.0);
        assert!(bump_above(0.0, 10.0) > 10.0);
        let spec = BucketSpec::numeric(5.0, bump_above(5.0, 5.0), 3);
        assert_eq!(spec.index_of_f64(5.0), Some(0));
    }
}
