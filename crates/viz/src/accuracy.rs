//! Rendering-accuracy verification (paper Fig. 3 / Fig. 13).
//!
//! The paper's central guarantee: *"Charts in Hillview have an error of at
//! most 1/2 pixel or one color shade with high probability."* These helpers
//! compare a sampled rendering against the exact rendering of the same data
//! and report the worst-case pixel/shade deviation; the test suites and the
//! `figures -- accuracy` harness use them to validate the guarantee
//! empirically.

use crate::cdf::CdfRendering;
use crate::render::{BarChart, ColorGrid};

/// Largest per-bar pixel difference between two bar charts of equal width.
pub fn max_bar_pixel_error(a: &BarChart, b: &BarChart) -> u32 {
    assert_eq!(a.heights_px.len(), b.heights_px.len(), "bar count mismatch");
    a.heights_px
        .iter()
        .zip(&b.heights_px)
        .map(|(x, y)| x.abs_diff(*y))
        .max()
        .unwrap_or(0)
}

/// Largest per-pixel difference between two CDF curves.
pub fn max_cdf_pixel_error(a: &CdfRendering, b: &CdfRendering) -> u32 {
    assert_eq!(a.heights_px.len(), b.heights_px.len(), "width mismatch");
    a.heights_px
        .iter()
        .zip(&b.heights_px)
        .map(|(x, y)| x.abs_diff(*y))
        .max()
        .unwrap_or(0)
}

/// Largest per-cell shade difference between two color grids.
pub fn max_shade_error(a: &ColorGrid, b: &ColorGrid) -> u8 {
    assert_eq!((a.bx, a.by), (b.bx, b.by), "grid shape mismatch");
    a.cells
        .iter()
        .zip(&b.cells)
        .map(|(x, y)| x.abs_diff(*y))
        .max()
        .unwrap_or(0)
}

/// Fraction of bars whose error exceeds `tolerance_px` — the empirical δ.
pub fn bar_error_rate(a: &BarChart, b: &BarChart, tolerance_px: u32) -> f64 {
    if a.heights_px.is_empty() {
        return 0.0;
    }
    let bad = a
        .heights_px
        .iter()
        .zip(&b.heights_px)
        .filter(|(x, y)| x.abs_diff(**y) > tolerance_px)
        .count();
    bad as f64 / a.heights_px.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::DisplaySpec;
    use crate::histogram::HistogramViz;
    use hillview_columnar::column::{Column, F64Column};
    use hillview_columnar::{ColumnKind, Table};
    use hillview_sketch::range::RangeSketch;
    use hillview_sketch::traits::Sketch;
    use hillview_sketch::TableView;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn skewed_view(n: usize) -> TableView {
        let mut rng = SmallRng::seed_from_u64(99);
        let vals: Vec<Option<f64>> = (0..n)
            .map(|_| {
                let v: f64 = rng.gen::<f64>();
                Some(v * v * 100.0) // quadratic skew
            })
            .collect();
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(vals)),
            )
            .build()
            .unwrap();
        TableView::full(Arc::new(t))
    }

    #[test]
    fn error_metrics_basics() {
        let a = BarChart {
            heights_px: vec![10, 20, 30],
            height_px: 100,
            max_count: 30,
            labels: vec![],
        };
        let b = BarChart {
            heights_px: vec![11, 18, 30],
            height_px: 100,
            max_count: 30,
            labels: vec![],
        };
        assert_eq!(max_bar_pixel_error(&a, &b), 2);
        assert_eq!(bar_error_rate(&a, &b, 1), 1.0 / 3.0);
        assert_eq!(bar_error_rate(&a, &a, 0), 0.0);
    }

    /// The paper's guarantee, tested end to end: a sampled histogram's
    /// rendering is within ~1 pixel of the exact rendering (½-px estimation
    /// + ½-px quantization), for the vast majority of bars.
    #[test]
    fn sampled_histogram_respects_pixel_guarantee() {
        let v = skewed_view(400_000);
        let display = DisplaySpec::new(200, 100);
        let range = RangeSketch::new("X").summarize(&v, 0).unwrap();

        let exact_viz = HistogramViz::new("X", display).with_buckets(40).exact();
        let exact_sketch = exact_viz.prepare_numeric(&range).unwrap();
        let exact = exact_viz.render(&exact_sketch, &exact_sketch.summarize(&v, 0).unwrap());

        let viz = HistogramViz::new("X", display).with_buckets(40);
        let sketch = viz.prepare_numeric(&range).unwrap();
        assert!(sketch.rate < 1.0, "must actually sample");
        // Repeat over several seeds: the guarantee is probabilistic.
        let mut worst = 0u32;
        for seed in 0..5 {
            let sampled = viz.render(&sketch, &sketch.summarize(&v, seed).unwrap());
            worst = worst.max(max_bar_pixel_error(&exact, &sampled));
        }
        assert!(worst <= 2, "worst-case bar error {worst}px (paper: ~1px)");
    }

    #[test]
    #[should_panic(expected = "bar count mismatch")]
    fn mismatched_charts_rejected() {
        let a = BarChart {
            heights_px: vec![1],
            height_px: 10,
            max_count: 1,
            labels: vec![],
        };
        let b = BarChart {
            heights_px: vec![1, 2],
            height_px: 10,
            max_count: 2,
            labels: vec![],
        };
        let _ = max_bar_pixel_error(&a, &b);
    }
}
