//! Stacked and normalized stacked histograms (paper §4.3, Fig. 13(c)).

use crate::display::{DisplaySpec, MAX_STACK_COLORS};
use crate::heatmap::AxisInfo;
use crate::render::scale_to_pixels;
use crate::samples;
use hillview_sketch::buckets::BucketSpec;
use hillview_sketch::stacked::{StackedHistogramSketch, StackedSummary};
use hillview_sketch::traits::{SketchError, SketchResult};
use std::sync::Arc;

/// Stacked-histogram vizketch configuration.
#[derive(Debug, Clone)]
pub struct StackedViz {
    /// Bar (X) column.
    pub col_x: Arc<str>,
    /// Subdivision (Y) column — at most ~20 colors.
    pub col_y: Arc<str>,
    /// Target display.
    pub display: DisplaySpec,
    /// Normalize every bar to full height (“Ditto but bars normalized”,
    /// Fig. 2). Normalization amplifies small bars, so the kernel must run
    /// exactly (paper App. B.1).
    pub normalized: bool,
    /// Requested X bucket count.
    pub requested_buckets: Option<usize>,
    /// Error probability δ.
    pub delta: f64,
}

/// A rendered stacked histogram: bars of stacked colored segments.
#[derive(Debug, Clone, PartialEq)]
pub struct StackedRendering {
    /// Total bar heights in pixels.
    pub bar_px: Vec<u32>,
    /// Per bar, per color: segment heights in pixels (sum ≤ bar height).
    pub segments_px: Vec<Vec<u32>>,
    /// Vertical resolution.
    pub height_px: usize,
    /// Count represented by the tallest bar.
    pub max_count: u64,
}

impl StackedViz {
    /// Sampled stacked histogram.
    pub fn new(col_x: &str, col_y: &str, display: DisplaySpec) -> Self {
        StackedViz {
            col_x: Arc::from(col_x),
            col_y: Arc::from(col_y),
            display,
            normalized: false,
            requested_buckets: None,
            delta: samples::DEFAULT_DELTA,
        }
    }

    /// Normalize bars to 100% (forces the exact kernel).
    pub fn normalized(mut self) -> Self {
        self.normalized = true;
        self
    }

    /// Request a specific number of X buckets.
    pub fn with_buckets(mut self, b: usize) -> Self {
        self.requested_buckets = Some(b);
        self
    }

    /// Phase-2 sketch from per-axis phase-1 info.
    pub fn prepare(
        &self,
        x: &AxisInfo,
        y: &AxisInfo,
        population: u64,
    ) -> SketchResult<StackedHistogramSketch> {
        let bx = self.display.histogram_buckets(self.requested_buckets);
        let sx = axis_spec(x, bx, "X")?;
        let sy = axis_spec(y, MAX_STACK_COLORS, "Y")?;
        if self.normalized {
            // Normalized bars need exact counts (App. B.1).
            Ok(StackedHistogramSketch::streaming(
                &self.col_x,
                &self.col_y,
                sx,
                sy,
            ))
        } else {
            let target = samples::histogram(self.display.height_px, self.delta);
            let rate = samples::rate_for(target, population);
            Ok(StackedHistogramSketch::sampled(
                &self.col_x,
                &self.col_y,
                sx,
                sy,
                rate,
            ))
        }
    }

    /// Render the merged summary.
    pub fn render(&self, summary: &StackedSummary) -> StackedRendering {
        let v = self.display.height_px;
        let max_count = summary.x_counts.iter().copied().max().unwrap_or(0);
        let mut bar_px = Vec::with_capacity(summary.bx);
        let mut segments_px = Vec::with_capacity(summary.bx);
        for x in 0..summary.bx {
            let bar_total = summary.x_counts[x];
            let bar_height = if self.normalized {
                if bar_total > 0 {
                    v as u32
                } else {
                    0
                }
            } else {
                scale_to_pixels(bar_total, max_count, v)
            };
            bar_px.push(bar_height);
            // Subdivisions share the bar's pixels proportionally to their
            // counts (relative to the bar total, so missing-Y rows leave an
            // uncolored remainder).
            let mut segs = Vec::with_capacity(summary.by);
            for y in 0..summary.by {
                let c = summary.get(x, y);
                let px = if bar_total == 0 {
                    0
                } else {
                    ((c as f64 / bar_total as f64) * bar_height as f64).round() as u32
                };
                segs.push(px);
            }
            segments_px.push(segs);
        }
        StackedRendering {
            bar_px,
            segments_px,
            height_px: v,
            max_count,
        }
    }
}

fn axis_spec(info: &AxisInfo, bins: usize, which: &str) -> SketchResult<BucketSpec> {
    match info {
        AxisInfo::Numeric(range) => {
            let (min, max) = match (range.min, range.max) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(SketchError::BadConfig(format!(
                        "{which} axis has no numeric range"
                    )))
                }
            };
            let hi = if max > min {
                max + (max - min) * 1e-9
            } else {
                min + 1.0
            };
            Ok(BucketSpec::numeric(min, hi, bins))
        }
        AxisInfo::Strings(bk) => {
            let boundaries = bk.bucket_boundaries(bins);
            if boundaries.is_empty() {
                return Err(SketchError::BadConfig(format!(
                    "{which} axis has no string values"
                )));
            }
            Ok(BucketSpec::strings(boundaries))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, DictColumn, I64Column};
    use hillview_columnar::{ColumnKind, Table};
    use hillview_sketch::bottomk::BottomKSketch;
    use hillview_sketch::range::RangeSketch;
    use hillview_sketch::traits::Sketch;
    use hillview_sketch::TableView;
    use std::sync::Arc as StdArc;

    /// Hours 0..10; type alternates a/b with ratio depending on hour.
    fn view() -> TableView {
        let n = 1000usize;
        let hours: Vec<Option<i64>> = (0..n).map(|i| Some((i % 10) as i64)).collect();
        let kinds: Vec<Option<&str>> = (0..n)
            .map(|i| Some(if (i % 10) < 5 { "alpha" } else { "beta" }))
            .collect();
        let t = Table::builder()
            .column(
                "Hour",
                ColumnKind::Int,
                Column::Int(I64Column::from_options(hours)),
            )
            .column(
                "Kind",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings(kinds)),
            )
            .build()
            .unwrap();
        TableView::full(StdArc::new(t))
    }

    fn prepare_and_run(viz: &StackedViz, v: &TableView) -> StackedSummary {
        let rx = RangeSketch::new("Hour").summarize(v, 0).unwrap();
        let by = BottomKSketch::new("Kind", 64).summarize(v, 0).unwrap();
        let sketch = viz
            .prepare(
                &AxisInfo::Numeric(rx.clone()),
                &AxisInfo::Strings(by),
                rx.present,
            )
            .unwrap();
        sketch.summarize(v, 0).unwrap()
    }

    #[test]
    fn stacked_bars_and_segments() {
        let v = view();
        let viz = StackedViz::new("Hour", "Kind", DisplaySpec::new(40, 100)).with_buckets(10);
        let summary = prepare_and_run(&viz, &v);
        let r = viz.render(&summary);
        assert_eq!(r.bar_px.len(), 10);
        // Uniform hours: all bars full height.
        assert!(r.bar_px.iter().all(|&b| b == 100), "{:?}", r.bar_px);
        // Hours < 5 are all alpha; hours >= 5 all beta.
        assert_eq!(r.segments_px[0][0], 100, "alpha segment fills bar 0");
        assert_eq!(r.segments_px[0][1], 0);
        assert_eq!(r.segments_px[9][0], 0);
        assert_eq!(r.segments_px[9][1], 100);
    }

    #[test]
    fn normalized_fills_every_bar() {
        // Make hour counts wildly uneven.
        let n = 1000usize;
        let hours: Vec<Option<i64>> = (0..n)
            .map(|i| Some(if i % 100 == 0 { 9 } else { 0 }))
            .collect();
        let kinds: Vec<Option<&str>> = (0..n).map(|_| Some("alpha")).collect();
        let t = Table::builder()
            .column(
                "Hour",
                ColumnKind::Int,
                Column::Int(I64Column::from_options(hours)),
            )
            .column(
                "Kind",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings(kinds)),
            )
            .build()
            .unwrap();
        let v = TableView::full(StdArc::new(t));
        let viz = StackedViz::new("Hour", "Kind", DisplaySpec::new(40, 100))
            .with_buckets(10)
            .normalized();
        let summary = prepare_and_run(&viz, &v);
        let r = viz.render(&summary);
        // Both populated bars reach full height despite 99:1 count skew.
        assert_eq!(r.bar_px[0], 100);
        assert_eq!(r.bar_px[9], 100);
        // Empty bars stay empty.
        assert_eq!(r.bar_px[5], 0);
    }

    #[test]
    fn normalized_forces_exact_kernel() {
        let v = view();
        let rx = RangeSketch::new("Hour").summarize(&v, 0).unwrap();
        let by = BottomKSketch::new("Kind", 64).summarize(&v, 0).unwrap();
        let viz = StackedViz::new("Hour", "Kind", DisplaySpec::new(40, 100)).normalized();
        let sketch = viz
            .prepare(
                &AxisInfo::Numeric(rx),
                &AxisInfo::Strings(by),
                1_000_000_000,
            )
            .unwrap();
        assert!(sketch.rate >= 1.0, "normalized must not sample");
    }

    #[test]
    fn segment_pixels_bounded_by_bar() {
        let v = view();
        let viz = StackedViz::new("Hour", "Kind", DisplaySpec::new(40, 64)).with_buckets(5);
        let r = viz.render(&prepare_and_run(&viz, &v));
        for (bar, segs) in r.bar_px.iter().zip(&r.segments_px) {
            let sum: u32 = segs.iter().sum();
            assert!(sum <= bar + 1, "segments {sum} overflow bar {bar}");
        }
    }
}
