// Fixture: a feature-gated item with no `not(...)` path anywhere in the
// crate must fire.
#[cfg(feature = "simd")]
pub fn vectorized() -> u64 {
    42
}
