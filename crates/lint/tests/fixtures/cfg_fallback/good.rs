// Fixture: every positive feature gate has a `not(...)` twin in the same
// crate; a `cfg!` runtime check also counts (both branches compile).
#[cfg(feature = "simd")]
pub fn vectorized() -> u64 {
    42
}

#[cfg(not(feature = "simd"))]
pub fn vectorized() -> u64 {
    42
}

pub fn runtime_gated() -> bool {
    cfg!(feature = "ooc")
}
