// Fixture: a justified marker exempts the site; test code is exempt too.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) {
    // lint: allow(relaxed, monotonic diagnostics counter with no paired load)
    c.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_use_relaxed() {
        let c = AtomicU64::new(0);
        c.store(7, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 7);
    }
}
