// Fixture (virtual path crates/sketch/src/…): a Sketch impl absent from
// all three equivalence suites must fire three times.
pub struct UncoveredSketch;

impl Sketch for UncoveredSketch {
    type Summary = ();
}
