// Fixture: the impl's type is named in fused_equivalence,
// scan_equivalence, and merge_laws (supplied alongside in the test
// workspace), so no finding.
pub struct CoveredSketch;

impl Sketch for CoveredSketch {
    type Summary = ();
}
