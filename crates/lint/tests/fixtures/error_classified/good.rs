// Fixture: every variant named, no wildcard arm.
pub enum EngineError {
    Alpha,
    Beta(String),
}

impl EngineError {
    pub fn is_retryable(&self) -> bool {
        match self {
            EngineError::Alpha => true,
            EngineError::Beta(_) => false,
        }
    }
}
