// Fixture (virtual path crates/core/src/error.rs): an unclassified
// variant and a wildcard arm must each fire.
pub enum EngineError {
    Alpha,
    Beta(String),
}

impl EngineError {
    pub fn is_retryable(&self) -> bool {
        match self {
            EngineError::Alpha => true,
            _ => false,
        }
    }
}
