// Fixture: marked sites and test code are exempt.
pub fn marked(x: Option<u32>) -> u32 {
    // lint: allow(panic, fixture demonstrating a justified site)
    x.expect("fixture")
}

pub fn trailing(x: Option<u32>) -> u32 {
    x.unwrap() // lint: allow(panic, trailing marker form)
}

pub fn structured(x: Option<u32>) -> Result<u32, String> {
    x.ok_or_else(|| "missing".to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn unit_tests_may_unwrap() {
        assert_eq!(Some(1u32).unwrap(), 1);
    }
}
