// Fixture (virtual path crates/core/src/…): panicking calls in non-test
// engine code must fire, one finding per site.
pub fn first(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn second(x: Option<u32>) -> u32 {
    x.expect("present")
}

pub fn third() -> u32 {
    unreachable!("fixture")
}
