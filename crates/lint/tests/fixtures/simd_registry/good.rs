// Fixture: scalar body defined in-file, entry referenced by a suite that
// calls set_force_scalar (supplied alongside in the test workspace).
fn covered_scalar(x: &[u32]) -> u64 {
    x.iter().map(|&v| u64::from(v)).sum()
}

tier_dispatch! {
    covered_scalar => avx2;
    pub fn covered_entry(x: &[u32]) -> u64;
}
