// Fixture (virtual path crates/columnar/src/simd.rs): a tier_dispatch!
// entry whose scalar body is undefined and which no forced-scalar suite
// references must fire twice.
tier_dispatch! {
    missing_scalar => avx2;
    pub fn orphan_entry(x: &[u32]) -> u64;
}
