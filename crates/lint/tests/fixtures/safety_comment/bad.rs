// Fixture: an `unsafe` block with no justification comment must fire.
pub fn read(p: *const u8) -> u8 {
    unsafe { *p }
}
