/// Reads one byte.
///
/// # Safety
///
/// `p` must be valid for reads — the doc section alone satisfies the rule
/// for an `unsafe fn`.
pub unsafe fn read_raw(p: *const u8) -> u8 {
    // SAFETY: validity of `p` is the documented caller contract.
    unsafe { *p }
}

pub fn read(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads; attributes between
    // the comment and the item are allowed.
    #[allow(clippy::let_and_return)]
    let v = unsafe { *p };
    v
}
