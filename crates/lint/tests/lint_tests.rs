//! Fixture tests (each rule fires on its bad corpus, stays silent on its
//! good corpus) plus the live-tree self-check that holds the real
//! workspace to every invariant.

use hillview_lint::{Finding, Workspace};

/// Build a virtual workspace and run every rule.
fn check(sources: &[(&str, &str)]) -> Vec<Finding> {
    Workspace::from_sources(
        sources
            .iter()
            .map(|(p, t)| (p.to_string(), t.to_string()))
            .collect(),
    )
    .check()
}

/// Findings restricted to one rule id.
fn of_rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

fn assert_clean(findings: &[Finding]) {
    assert!(
        findings.is_empty(),
        "expected clean, got:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn safety_comment_fires_and_clears() {
    let bad = check(&[(
        "crates/columnar/src/fix.rs",
        include_str!("fixtures/safety_comment/bad.rs"),
    )]);
    assert_eq!(of_rule(&bad, "safety-comment").len(), 1, "{bad:?}");
    let good = check(&[(
        "crates/columnar/src/fix.rs",
        include_str!("fixtures/safety_comment/good.rs"),
    )]);
    assert_clean(&good);
}

#[test]
fn panic_site_fires_and_clears() {
    let bad = check(&[(
        "crates/core/src/fix.rs",
        include_str!("fixtures/panic_site/bad.rs"),
    )]);
    assert_eq!(of_rule(&bad, "panic-site").len(), 3, "{bad:?}");
    let good = check(&[(
        "crates/net/src/fix.rs",
        include_str!("fixtures/panic_site/good.rs"),
    )]);
    assert_clean(&good);
    // The rule only patrols core and net: the same panicky source is fine
    // in, say, the viz crate.
    let elsewhere = check(&[(
        "crates/viz/src/fix.rs",
        include_str!("fixtures/panic_site/bad.rs"),
    )]);
    assert_clean(&elsewhere);
}

#[test]
fn simd_registry_fires_and_clears() {
    let bad = check(&[(
        "crates/columnar/src/simd.rs",
        include_str!("fixtures/simd_registry/bad.rs"),
    )]);
    let hits = of_rule(&bad, "simd-registry");
    assert_eq!(hits.len(), 2, "{bad:?}");
    assert!(hits[0].msg.contains("missing_scalar") || hits[1].msg.contains("missing_scalar"));
    let good = check(&[
        (
            "crates/columnar/src/simd.rs",
            include_str!("fixtures/simd_registry/good.rs"),
        ),
        (
            "crates/columnar/tests/forced.rs",
            "#[test]\nfn equivalence() { set_force_scalar(true); covered_entry(&[]); }\n",
        ),
    ]);
    assert_clean(&good);
}

#[test]
fn sketch_registry_fires_and_clears() {
    let bad = check(&[(
        "crates/sketch/src/fix.rs",
        include_str!("fixtures/sketch_registry/bad.rs"),
    )]);
    assert_eq!(of_rule(&bad, "sketch-registry").len(), 3, "{bad:?}");
    let good = check(&[
        (
            "crates/sketch/src/fix.rs",
            include_str!("fixtures/sketch_registry/good.rs"),
        ),
        (
            "crates/sketch/tests/fused_equivalence.rs",
            "fn law() { CoveredSketch; }\n",
        ),
        (
            "crates/sketch/tests/scan_equivalence.rs",
            "fn law() { CoveredSketch; }\n",
        ),
        (
            "crates/sketch/tests/merge_laws.rs",
            "fn law() { CoveredSketch; }\n",
        ),
    ]);
    assert_clean(&good);
}

#[test]
fn cfg_fallback_fires_and_clears() {
    let bad = check(&[(
        "crates/columnar/src/fix.rs",
        include_str!("fixtures/cfg_fallback/bad.rs"),
    )]);
    let hits = of_rule(&bad, "cfg-fallback");
    assert_eq!(hits.len(), 1, "{bad:?}");
    assert!(hits[0].msg.contains("\"simd\""));
    let good = check(&[(
        "crates/columnar/src/fix.rs",
        include_str!("fixtures/cfg_fallback/good.rs"),
    )]);
    assert_clean(&good);
    // The fallback may live in a sibling file of the same crate.
    let split = check(&[
        (
            "crates/columnar/src/fix.rs",
            include_str!("fixtures/cfg_fallback/bad.rs"),
        ),
        (
            "crates/columnar/src/other.rs",
            "#[cfg(not(feature = \"simd\"))]\npub fn vectorized() -> u64 { 42 }\n",
        ),
    ]);
    assert_clean(&split);
    // …but not in a different crate.
    let cross = check(&[
        (
            "crates/columnar/src/fix.rs",
            include_str!("fixtures/cfg_fallback/bad.rs"),
        ),
        (
            "crates/core/src/other.rs",
            "#[cfg(not(feature = \"simd\"))]\npub fn vectorized() -> u64 { 42 }\n",
        ),
    ]);
    assert_eq!(of_rule(&cross, "cfg-fallback").len(), 1, "{cross:?}");
}

#[test]
fn relaxed_ordering_fires_and_clears() {
    let bad = check(&[(
        "crates/core/src/fix.rs",
        include_str!("fixtures/relaxed_ordering/bad.rs"),
    )]);
    assert_eq!(of_rule(&bad, "relaxed-ordering").len(), 1, "{bad:?}");
    let good = check(&[(
        "crates/core/src/fix.rs",
        include_str!("fixtures/relaxed_ordering/good.rs"),
    )]);
    assert_clean(&good);
    // The counters allowlist file needs no markers.
    let allowlisted = check(&[(
        "crates/net/src/metrics.rs",
        include_str!("fixtures/relaxed_ordering/bad.rs"),
    )]);
    assert_clean(&allowlisted);
}

#[test]
fn error_classified_fires_and_clears() {
    let bad = check(&[(
        "crates/core/src/error.rs",
        include_str!("fixtures/error_classified/bad.rs"),
    )]);
    let hits = of_rule(&bad, "error-classified");
    assert_eq!(hits.len(), 2, "{bad:?}");
    assert!(hits.iter().any(|f| f.msg.contains("Beta")));
    assert!(hits.iter().any(|f| f.msg.contains("wildcard")));
    let good = check(&[(
        "crates/core/src/error.rs",
        include_str!("fixtures/error_classified/good.rs"),
    )]);
    assert_clean(&good);
}

/// The real workspace passes every rule. This is the same check CI runs
/// via `cargo run -p hillview-lint -- check`, pinned here so plain
/// `cargo test` catches regressions too.
#[test]
fn live_workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/lint");
    let ws = Workspace::load(root).expect("walk workspace sources");
    assert!(
        ws.files.len() > 100,
        "workspace walk looks truncated: {} files",
        ws.files.len()
    );
    let findings = ws.check();
    assert!(
        findings.is_empty(),
        "live tree has lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
