//! The seven invariant rules. Each is a pure function of the lexed
//! [`Workspace`] returning [`Finding`]s; see the crate docs for the rule
//! table and the marker grammar.

use crate::lexer::{TokKind, Token};
use crate::{Finding, SourceFile, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// Files whose `Ordering::Relaxed` uses are all monotonic diagnostic
/// counters with no load/store pairing — the explicit allowlist of the
/// `relaxed-ordering` rule. Every `Relaxed` anywhere else needs a
/// `// lint: allow(relaxed, reason)` marker at the site.
pub const RELAXED_COUNTER_FILES: &[&str] = &["crates/net/src/metrics.rs"];

/// Crates whose non-test code must not contain panicking calls without a
/// `// lint: allow(panic, reason)` marker (PR 6 contract: panics never
/// kill the query tree, so core/net code paths return structured errors).
pub const PANIC_FREE_PREFIXES: &[&str] = &["crates/core/src/", "crates/net/src/"];

/// The forced-scalar equivalence suites a `tier_dispatch!` entry must
/// appear in by name: any file under a `tests/` directory that calls
/// `set_force_scalar`.
fn is_forced_scalar_suite(f: &SourceFile) -> bool {
    f.path.contains("/tests/") && f.text.contains("set_force_scalar")
}

fn finding(rule: &'static str, f: &SourceFile, off: usize, msg: String) -> Finding {
    Finding {
        rule,
        path: f.path.clone(),
        line: f.line_of(off),
        msg,
    }
}

// ---------------------------------------------------------------------------
// Rule: safety-comment
// ---------------------------------------------------------------------------

/// Every `unsafe` token introducing a block, fn, or impl must be
/// immediately preceded by a comment block containing `SAFETY` (attribute
/// lines may sit between the comment and the item). Doc `# Safety`
/// sections directly above an `unsafe fn` count.
pub fn rule_safety_comment(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        for t in &f.toks {
            if t.kind != TokKind::Ident || t.text(&f.text) != "unsafe" {
                continue;
            }
            if !preceded_by_safety_comment(f, t) {
                out.push(finding(
                    "safety-comment",
                    f,
                    t.lo,
                    "`unsafe` without an immediately preceding `// SAFETY:` comment".to_string(),
                ));
            }
        }
    }
    out
}

fn preceded_by_safety_comment(f: &SourceFile, t: &Token) -> bool {
    let mut line = f.line_of(t.lo);
    // Walk upward: skip single-line attributes, then require a contiguous
    // comment block; any line of it must mention SAFETY.
    loop {
        if line <= 1 {
            return false;
        }
        line -= 1;
        let text = f.line_text(line).trim();
        if text.starts_with("#[") || text.starts_with("#![") {
            continue;
        }
        if !(text.starts_with("//") || text.starts_with("*") || text.starts_with("/*")) {
            return false;
        }
        // Contiguous comment block above the item.
        let mut l = line;
        loop {
            let ct = f.line_text(l).trim();
            if !(ct.starts_with("//") || ct.starts_with('*') || ct.starts_with("/*")) {
                return false;
            }
            if ct.to_uppercase().contains("SAFETY") {
                return true;
            }
            if l == 1 {
                return false;
            }
            l -= 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: panic-site
// ---------------------------------------------------------------------------

/// No `.unwrap()` / `.expect(` / `panic!` / `unreachable!` / `todo!` /
/// `unimplemented!` in non-test code under [`PANIC_FREE_PREFIXES`],
/// except sites carrying a `// lint: allow(panic, reason)` marker.
pub fn rule_panic_site(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        if !PANIC_FREE_PREFIXES.iter().any(|p| f.path.starts_with(p)) {
            continue;
        }
        let idx = f.code_idx();
        for (k, &i) in idx.iter().enumerate() {
            let t = &f.toks[i];
            if t.kind != TokKind::Ident || f.in_test(t.lo) {
                continue;
            }
            let name = t.text(&f.text);
            let prev = k
                .checked_sub(1)
                .map(|p| f.toks[idx[p]].text(&f.text))
                .unwrap_or("");
            let next = idx
                .get(k + 1)
                .map(|&n| f.toks[n].text(&f.text))
                .unwrap_or("");
            let hit = match name {
                "unwrap" | "expect" => prev == "." && next == "(",
                "panic" | "unreachable" | "todo" | "unimplemented" => next == "!",
                _ => false,
            };
            if !hit {
                continue;
            }
            if f.has_allow_marker(f.line_of(t.lo), "panic") {
                continue;
            }
            let spelled = if next == "!" {
                format!("{name}!")
            } else {
                format!(".{name}()")
            };
            out.push(finding(
                "panic-site",
                f,
                t.lo,
                format!(
                    "`{spelled}` in non-test {} code; return a structured error or add \
                     `// lint: allow(panic, reason)`",
                    &f.path[..f.path.find("/src/").unwrap_or(0)]
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: simd-registry
// ---------------------------------------------------------------------------

/// Every `tier_dispatch!` invocation in `crates/columnar/src/simd.rs`
/// must (a) name a scalar body `fn` defined in the same file and (b) have
/// its entry function referenced by name in at least one forced-scalar
/// equivalence suite (a `tests/` file calling `set_force_scalar`), so a
/// new SIMD primitive cannot ship without a byte-equality test pinning
/// its scalar fallback.
pub fn rule_simd_registry(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(f) = ws.file("crates/columnar/src/simd.rs") else {
        return out;
    };
    let idx = f.code_idx();
    let texts: Vec<&str> = idx.iter().map(|&i| f.toks[i].text(&f.text)).collect();
    for k in 0..texts.len() {
        if !(texts[k] == "tier_dispatch" && texts.get(k + 1) == Some(&"!")) {
            continue;
        }
        // Invocation shape: `tier_dispatch! { body => avx2, avx512; ... fn entry ... }`
        let Some(body_k) = (k + 2..texts.len()).find(|&j| f.toks[idx[j]].kind == TokKind::Ident)
        else {
            continue;
        };
        let body = texts[body_k];
        let entry_k = (body_k..texts.len())
            .find(|&j| texts[j] == "fn")
            .and_then(|j| {
                (j + 1..texts.len()).find(|&m| f.toks[idx[m]].kind == TokKind::Ident && m == j + 1)
            });
        let Some(entry_k) = entry_k else { continue };
        let entry = texts[entry_k];
        let site = f.toks[idx[k]].lo;
        let body_defined = (0..texts.len())
            .any(|j| texts[j] == "fn" && texts.get(j + 1) == Some(&body) && j + 1 != body_k);
        if !body_defined {
            out.push(finding(
                "simd-registry",
                f,
                site,
                format!("tier_dispatch! entry `{entry}`: scalar body `{body}` is not defined"),
            ));
        }
        let covered = ws.files.iter().any(|tf| {
            is_forced_scalar_suite(tf)
                && tf
                    .toks
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && t.text(&tf.text) == entry)
        });
        if !covered {
            out.push(finding(
                "simd-registry",
                f,
                site,
                format!(
                    "tier_dispatch! entry `{entry}` appears in no forced-scalar equivalence \
                     test (a tests/ file calling set_force_scalar)"
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: sketch-registry
// ---------------------------------------------------------------------------

/// Every `impl Sketch for T` in `crates/sketch/src` must appear in all
/// three kernel equivalence suites, so a new kernel cannot ship
/// half-tested: `fused_equivalence` (fused ≡ two-pass ≡ rowwise),
/// `scan_equivalence` (chunked ≡ rowwise across encodings), and
/// `merge_laws` (merge associativity/commutativity/split laws).
pub fn rule_sketch_registry(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    let suites = [
        "crates/sketch/tests/fused_equivalence.rs",
        "crates/sketch/tests/scan_equivalence.rs",
        "crates/sketch/tests/merge_laws.rs",
    ];
    for f in &ws.files {
        if !f.path.starts_with("crates/sketch/src/") {
            continue;
        }
        let idx = f.code_idx();
        let texts: Vec<&str> = idx.iter().map(|&i| f.toks[i].text(&f.text)).collect();
        for k in 0..texts.len() {
            if !(texts[k] == "impl"
                && texts.get(k + 1) == Some(&"Sketch")
                && texts.get(k + 2) == Some(&"for"))
            {
                continue;
            }
            let Some(&ty) = texts.get(k + 3) else {
                continue;
            };
            let site = f.toks[idx[k]].lo;
            for suite in suites {
                let present = ws.file(suite).is_some_and(|sf| {
                    sf.toks
                        .iter()
                        .any(|t| t.kind == TokKind::Ident && t.text(&sf.text) == ty)
                });
                if !present {
                    let name = suite.rsplit('/').next().unwrap_or(suite);
                    out.push(finding(
                        "sketch-registry",
                        f,
                        site,
                        format!("`{ty}` implements Sketch but is missing from {name}"),
                    ));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: cfg-fallback
// ---------------------------------------------------------------------------

/// Every feature named by a positive `#[cfg(...)]`/`#[cfg_attr(...)]` in
/// a crate's non-test sources must have a `not(...)` fallback mention (or
/// a `cfg!` runtime test, which compiles both branches) somewhere in the
/// same crate — or carry a `// lint: allow(cfg, reason)` marker. This
/// pins the "every `simd`/`ooc` item has a non-feature path" invariant at
/// crate granularity, the level at which the fallback is meaningful.
pub fn rule_cfg_fallback(ws: &Workspace) -> Vec<Finding> {
    // (crate, feature) -> first positive unmarked site / any negative.
    let mut pos: BTreeMap<(String, String), (String, usize, u32)> = BTreeMap::new();
    let mut neg: BTreeSet<(String, String)> = BTreeSet::new();
    for f in &ws.files {
        let Some(krate) = f
            .path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
        else {
            continue;
        };
        if !f.path.contains("/src/") {
            continue;
        }
        let krate = krate.to_string();
        for site in cfg_feature_sites(f) {
            let key = (krate.clone(), site.feature.clone());
            if site.negative || site.runtime {
                neg.insert(key.clone());
            }
            if !site.negative {
                let line = f.line_of(site.off);
                if f.in_test(site.off) || f.has_allow_marker(line, "cfg") {
                    continue;
                }
                pos.entry(key).or_insert((f.path.clone(), site.off, line));
            }
        }
    }
    let mut out = Vec::new();
    for ((krate, feature), (path, _off, line)) in pos {
        if neg.contains(&(krate.clone(), feature.clone())) {
            continue;
        }
        out.push(Finding {
            rule: "cfg-fallback",
            path,
            line,
            msg: format!(
                "feature \"{feature}\" is used positively in crate `{krate}` but no \
                 `not(...)` fallback path exists anywhere in the crate"
            ),
        });
    }
    out
}

struct CfgSite {
    feature: String,
    /// Inside a `not(...)` scope.
    negative: bool,
    /// A `cfg!(...)` macro use: both branches compile.
    runtime: bool,
    off: usize,
}

/// Extract every `feature = "..."` mention inside `cfg`/`cfg_attr`
/// attributes and `cfg!` macro calls, with its `not(...)` polarity.
fn cfg_feature_sites(f: &SourceFile) -> Vec<CfgSite> {
    let idx = f.code_idx();
    let texts: Vec<&str> = idx.iter().map(|&i| f.toks[i].text(&f.text)).collect();
    let mut sites = Vec::new();
    let mut k = 0usize;
    while k < texts.len() {
        let runtime = texts[k] == "cfg" && texts.get(k + 1) == Some(&"!");
        let attr = texts[k] == "#"
            && texts.get(k + 1) == Some(&"[")
            && matches!(texts.get(k + 2), Some(&"cfg") | Some(&"cfg_attr"));
        // Inner attribute form `#![cfg_attr(...)]`.
        let inner_attr = texts[k] == "#"
            && texts.get(k + 1) == Some(&"!")
            && texts.get(k + 2) == Some(&"[")
            && matches!(texts.get(k + 3), Some(&"cfg") | Some(&"cfg_attr"));
        if !(runtime || attr || inner_attr) {
            k += 1;
            continue;
        }
        // Find the opening paren of the cfg list.
        let mut j = k + if runtime {
            2
        } else if attr {
            3
        } else {
            4
        };
        if texts.get(j) != Some(&"(") {
            k += 1;
            continue;
        }
        // Walk the parenthesized list tracking a `not(...)` scope stack.
        let mut not_stack: Vec<bool> = Vec::new();
        let mut prev_ident_not = false;
        while let Some(&t) = texts.get(j) {
            match t {
                "(" => {
                    let parent = not_stack.last().copied().unwrap_or(false);
                    not_stack.push(parent || prev_ident_not);
                    prev_ident_not = false;
                }
                ")" => {
                    not_stack.pop();
                    if not_stack.is_empty() {
                        break;
                    }
                }
                "not" => prev_ident_not = true,
                "feature" => {
                    prev_ident_not = false;
                    if texts.get(j + 1) == Some(&"=")
                        && f.toks.get(idx[j + 2]).map(|t| t.kind) == Some(TokKind::Str)
                    {
                        let lit = texts[j + 2].trim_matches('"').to_string();
                        sites.push(CfgSite {
                            feature: lit,
                            negative: not_stack.last().copied().unwrap_or(false),
                            runtime,
                            off: f.toks[idx[j]].lo,
                        });
                    }
                }
                _ => prev_ident_not = false,
            }
            j += 1;
        }
        k = j + 1;
    }
    sites
}

// ---------------------------------------------------------------------------
// Rule: relaxed-ordering
// ---------------------------------------------------------------------------

/// `Ordering::Relaxed` is confined to the counters allowlist
/// ([`RELAXED_COUNTER_FILES`]); every other non-test site must carry a
/// `// lint: allow(relaxed, reason)` marker justifying why no
/// acquire/release pairing is needed.
pub fn rule_relaxed_ordering(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        if RELAXED_COUNTER_FILES.contains(&f.path.as_str()) {
            continue;
        }
        let idx = f.code_idx();
        for (k, &i) in idx.iter().enumerate() {
            let t = &f.toks[i];
            if t.kind != TokKind::Ident || t.text(&f.text) != "Relaxed" || f.in_test(t.lo) {
                continue;
            }
            let prev = k
                .checked_sub(1)
                .map(|p| f.toks[idx[p]].text(&f.text))
                .unwrap_or("");
            if prev != ":" {
                continue; // not a path segment (e.g. an enum variant decl)
            }
            if f.has_allow_marker(f.line_of(t.lo), "relaxed") {
                continue;
            }
            out.push(finding(
                "relaxed-ordering",
                f,
                t.lo,
                "Ordering::Relaxed outside the counters allowlist; justify with \
                 `// lint: allow(relaxed, reason)` or use an acquire/release pairing"
                    .to_string(),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule: error-classified
// ---------------------------------------------------------------------------

/// Every variant of `EngineError` must be named in `is_retryable()`, and
/// the classification match must have no wildcard arm — adding a variant
/// without deciding its retry semantics is a lint failure (and, with the
/// wildcard gone, a compile failure too).
pub fn rule_error_classified(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(f) = ws.file("crates/core/src/error.rs") else {
        return out;
    };
    let idx = f.code_idx();
    let texts: Vec<&str> = idx.iter().map(|&i| f.toks[i].text(&f.text)).collect();
    let Some(enum_k) =
        (0..texts.len()).find(|&k| texts[k] == "enum" && texts.get(k + 1) == Some(&"EngineError"))
    else {
        return out;
    };
    // Collect variant names: idents at brace depth 1 directly after `{`
    // or `,` (attributes skipped).
    let mut variants: Vec<(String, usize)> = Vec::new();
    let mut k = enum_k + 2;
    let mut depth = 0isize;
    let mut expect_variant = false;
    while k < texts.len() {
        match texts[k] {
            "{" => {
                depth += 1;
                if depth == 1 {
                    expect_variant = true;
                }
            }
            "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if depth == 1 => expect_variant = true,
            "#" if depth == 1 && texts.get(k + 1) == Some(&"[") => {
                // Skip the attribute tokens.
                let mut d = 0isize;
                k += 1;
                while k < texts.len() {
                    match texts[k] {
                        "[" => d += 1,
                        "]" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            t if depth == 1 && expect_variant && f.toks[idx[k]].kind == TokKind::Ident => {
                variants.push((t.to_string(), f.toks[idx[k]].lo));
                expect_variant = false;
            }
            _ => {}
        }
        k += 1;
    }
    // Locate the is_retryable body.
    let Some(fn_k) =
        (0..texts.len()).find(|&k| texts[k] == "fn" && texts.get(k + 1) == Some(&"is_retryable"))
    else {
        out.push(Finding {
            rule: "error-classified",
            path: f.path.clone(),
            line: 1,
            msg: "EngineError has no is_retryable() classifier".to_string(),
        });
        return out;
    };
    let Some(body_open) = (fn_k..texts.len()).find(|&k| texts[k] == "{") else {
        return out;
    };
    let mut body_close = texts.len();
    let mut d = 0isize;
    for (k, &t) in texts.iter().enumerate().skip(body_open) {
        match t {
            "{" => d += 1,
            "}" => {
                d -= 1;
                if d == 0 {
                    body_close = k;
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &texts[body_open..body_close];
    for (v, off) in &variants {
        if !body.contains(&v.as_str()) {
            out.push(finding(
                "error-classified",
                f,
                *off,
                format!("EngineError::{v} is not classified in is_retryable()"),
            ));
        }
    }
    for k in body_open..body_close {
        if texts[k] == "_" && texts.get(k + 1) == Some(&"=") && texts.get(k + 2) == Some(&">") {
            out.push(finding(
                "error-classified",
                f,
                f.toks[idx[k]].lo,
                "is_retryable() has a wildcard arm; every variant must be classified \
                 explicitly so new variants fail to compile until classified"
                    .to_string(),
            ));
        }
    }
    out
}
