//! # hillview-lint
//!
//! The workspace invariant checker. Hillview's correctness story rests on
//! invariants rustc cannot see — sketches must merge bit-identically
//! across thread counts and codegen tiers, every SIMD fast path needs a
//! byte-equal scalar fallback, and the mmap/`ValueBuf`/`Pod` layer is
//! only sound under aliasing rules stated in comments. This crate pins
//! those invariants mechanically: a dependency-free binary with a small
//! Rust lexer that walks every `.rs` file in the workspace (including
//! `vendor/`) and fails CI on violations.
//!
//! ## Rules
//!
//! | id | invariant |
//! |----|-----------|
//! | `safety-comment` | every `unsafe` block/fn/impl is immediately preceded by a comment containing `SAFETY` |
//! | `panic-site` | no `.unwrap()` / `.expect(` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` in non-test code of `crates/core` and `crates/net` without a `// lint: allow(panic, reason)` marker |
//! | `simd-registry` | every `tier_dispatch!` entry in `columnar/src/simd.rs` has its scalar body defined and appears by name in a forced-scalar equivalence test |
//! | `sketch-registry` | every `impl Sketch for T` appears in the `fused_equivalence`, `scan_equivalence`, and `merge_laws` suites |
//! | `cfg-fallback` | every feature referenced by a positive `#[cfg]` in a crate's non-test sources has a `not(...)` fallback path somewhere in that crate (or a `// lint: allow(cfg, reason)` marker) |
//! | `relaxed-ordering` | `Ordering::Relaxed` only in the counters allowlist ([`rules::RELAXED_COUNTER_FILES`]) or under a `// lint: allow(relaxed, reason)` marker |
//! | `error-classified` | every `EngineError` variant is named in `is_retryable()` and the match has no wildcard arm |
//!
//! ## Markers
//!
//! A justified exception is a trailing or preceding-line comment of the
//! form `// lint: allow(<rule>, <reason>)` where `<rule>` is `panic`,
//! `relaxed`, or `cfg` and `<reason>` is non-empty. The reason is the
//! point: the marker records *why* the site is sound, next to the site.
//!
//! ## Adding a rule
//!
//! Write a `fn rule_<name>(ws: &Workspace) -> Vec<Finding>` in
//! [`rules`], register it in [`Workspace::check`], and add a bad/good
//! fixture pair under `tests/fixtures/<name>/` plus a case in
//! `tests/lint_tests.rs`. The live-tree self-check test will hold the
//! workspace to it from then on.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use lexer::{lex, TokKind, Token};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (stable, kebab-case).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number of the offending site.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// One lexed source file plus the derived facts rules share: line table,
/// test-code spans, and per-line comment text.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Full file text.
    pub text: String,
    /// Lossless token stream (comments included).
    pub toks: Vec<Token>,
    /// Byte offsets of each line start (index 0 = line 1).
    line_starts: Vec<usize>,
    /// Byte spans of test-gated items: `#[test]` functions and
    /// `#[cfg(test)]`/`#[cfg(any(test, ...))]` items.
    test_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lex `text` and compute the derived tables.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> SourceFile {
        let path = path.into();
        let text = text.into();
        let toks = lex(&text);
        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let test_spans = find_test_spans(&text, &toks);
        SourceFile {
            path,
            text,
            toks,
            line_starts,
            test_spans,
        }
    }

    /// 1-based line number of byte offset `off`.
    pub fn line_of(&self, off: usize) -> u32 {
        match self.line_starts.binary_search(&off) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    }

    /// The text of 1-based line `line` (without the newline), or `""`.
    pub fn line_text(&self, line: u32) -> &str {
        if line == 0 {
            return "";
        }
        let i = (line - 1) as usize;
        let Some(&start) = self.line_starts.get(i) else {
            return "";
        };
        let end = self
            .line_starts
            .get(i + 1)
            .map(|&e| e.saturating_sub(1))
            .unwrap_or(self.text.len());
        &self.text[start..end.max(start)]
    }

    /// True when the whole file is test/bench/example code by location.
    pub fn is_test_file(&self) -> bool {
        self.path.contains("/tests/")
            || self.path.contains("/benches/")
            || self.path.starts_with("tests/")
            || self.path.starts_with("examples/")
            || self.path.contains("/examples/")
    }

    /// True when byte offset `off` falls inside test-gated code (or the
    /// whole file is test code).
    pub fn in_test(&self, off: usize) -> bool {
        self.is_test_file()
            || self
                .test_spans
                .iter()
                .any(|&(lo, hi)| lo <= off && off < hi)
    }

    /// True when line `line` or the line above carries a
    /// `// lint: allow(<kind>, <reason>)` marker with a non-empty reason.
    pub fn has_allow_marker(&self, line: u32, kind: &str) -> bool {
        if comment_has_marker(self.line_text(line), kind) {
            return true;
        }
        // A marker on the line above only applies if that line is purely a
        // comment — a trailing marker on another code line covers that line,
        // not its neighbours.
        let above = line.saturating_sub(1);
        above != 0
            && self.line_text(above).trim_start().starts_with("//")
            && comment_has_marker(self.line_text(above), kind)
    }

    /// Indices (into `toks`) of non-comment tokens.
    pub fn code_idx(&self) -> Vec<usize> {
        self.toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect()
    }
}

/// True when `line` contains `lint: allow(<kind>, <non-space...>)` inside
/// a `//` comment.
fn comment_has_marker(line: &str, kind: &str) -> bool {
    let Some(c) = line.find("//") else {
        return false;
    };
    let comment = &line[c..];
    let needle = format!("lint: allow({kind},");
    let Some(p) = comment.find(&needle) else {
        return false;
    };
    let rest = &comment[p + needle.len()..];
    let Some(close) = rest.find(')') else {
        return false;
    };
    rest[..close].trim() != ""
}

/// Find byte spans of test-gated items: an attribute whose tokens include
/// the identifier `test` (`#[test]`, `#[cfg(test)]`, `#[cfg(any(test,
/// ...))]`) marks the following item, through its closing brace or
/// terminating semicolon, as test code.
fn find_test_spans(src: &str, toks: &[Token]) -> Vec<(usize, usize)> {
    let code: Vec<&Token> = toks.iter().filter(|t| !t.is_comment()).collect();
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        if !(t.kind == TokKind::Punct && t.text(src) == "#") {
            i += 1;
            continue;
        }
        // Item attribute `#[...]` (skip inner `#![...]`).
        let Some(open) = code.get(i + 1) else { break };
        if !(open.kind == TokKind::Punct && open.text(src) == "[") {
            i += 1;
            continue;
        }
        let attr_start = t.lo;
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut is_test_attr = false;
        while j < code.len() {
            let u = code[j];
            match (u.kind, u.text(src)) {
                (TokKind::Punct, "[") => depth += 1,
                (TokKind::Punct, "]") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                (TokKind::Ident, "test") => is_test_attr = true,
                _ => {}
            }
            j += 1;
        }
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then span the item body.
        let mut k = j + 1;
        while k + 1 < code.len()
            && code[k].kind == TokKind::Punct
            && code[k].text(src) == "#"
            && code[k + 1].text(src) == "["
        {
            let mut d = 0usize;
            k += 1;
            while k < code.len() {
                match (code[k].kind, code[k].text(src)) {
                    (TokKind::Punct, "[") => d += 1,
                    (TokKind::Punct, "]") => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        // Scan the item header to its body: first `{` at delimiter depth 0
        // opens the body (matched to its close); a `;` first ends the item.
        let mut d = 0isize;
        let mut end = src.len();
        while k < code.len() {
            let u = code[k];
            match (u.kind, u.text(src)) {
                (TokKind::Punct, "(") | (TokKind::Punct, "[") => d += 1,
                (TokKind::Punct, ")") | (TokKind::Punct, "]") => d -= 1,
                (TokKind::Punct, ";") if d == 0 => {
                    end = u.hi;
                    break;
                }
                (TokKind::Punct, "{") if d == 0 => {
                    // Body: match braces to the close.
                    let mut bd = 0isize;
                    while k < code.len() {
                        match (code[k].kind, code[k].text(src)) {
                            (TokKind::Punct, "{") => bd += 1,
                            (TokKind::Punct, "}") => {
                                bd -= 1;
                                if bd == 0 {
                                    end = code[k].hi;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        spans.push((attr_start, end));
        i = j + 1;
    }
    spans
}

/// The lexed workspace: every `.rs` file rules operate on.
pub struct Workspace {
    /// All files, paths workspace-relative.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Build a workspace from in-memory `(path, text)` pairs (fixtures).
    pub fn from_sources(sources: Vec<(String, String)>) -> Workspace {
        Workspace {
            files: sources
                .into_iter()
                .map(|(p, t)| SourceFile::new(p, t))
                .collect(),
        }
    }

    /// Walk `root` and lex every `.rs` file under `crates/`, `vendor/`,
    /// `tests/`, and `examples/`, skipping build output and the lint
    /// fixture corpus (which contains known-bad snippets on purpose).
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        for top in ["crates", "vendor", "tests", "examples"] {
            let dir = root.join(top);
            if dir.is_dir() {
                walk(&dir, root, &mut files)?;
            }
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Workspace { files })
    }

    /// File by exact workspace-relative path.
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }

    /// Run every rule; findings sorted by path then line.
    pub fn check(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        out.extend(rules::rule_safety_comment(self));
        out.extend(rules::rule_panic_site(self));
        out.extend(rules::rule_simd_registry(self));
        out.extend(rules::rule_sketch_registry(self));
        out.extend(rules::rule_cfg_fallback(self));
        out.extend(rules::rule_relaxed_ordering(self));
        out.extend(rules::rule_error_classified(self));
        out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        out
    }
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = rel_path(&path, root);
            let text = fs::read_to_string(&path)?;
            out.push(SourceFile::new(rel, text));
        }
    }
    Ok(())
}

fn rel_path(path: &Path, root: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_spans_cover_cfg_test_modules_and_test_fns() {
        let src = "\
fn live() { x.unwrap(); }

#[test]
fn unit() { y.unwrap(); }

#[cfg(test)]
mod tests {
    fn helper() { z.unwrap(); }
}

fn also_live() {}
";
        let f = SourceFile::new("crates/core/src/x.rs", src);
        let live = src.find("x.unwrap").unwrap();
        let unit = src.find("y.unwrap").unwrap();
        let in_mod = src.find("z.unwrap").unwrap();
        let tail = src.find("also_live").unwrap();
        assert!(!f.in_test(live));
        assert!(f.in_test(unit));
        assert!(f.in_test(in_mod));
        assert!(!f.in_test(tail));
    }

    #[test]
    fn markers_require_reasons() {
        let f = SourceFile::new(
            "x.rs",
            "a(); // lint: allow(panic, lock poisoning is unrecoverable)\nb(); // lint: allow(panic,)\n",
        );
        assert!(f.has_allow_marker(1, "panic"));
        assert!(!f.has_allow_marker(2, "panic"), "empty reason rejected");
    }

    #[test]
    fn marker_on_preceding_line_counts() {
        let f = SourceFile::new(
            "x.rs",
            "// lint: allow(relaxed, diagnostic counter)\nc.load(Ordering::Relaxed);\n",
        );
        assert!(f.has_allow_marker(2, "relaxed"));
        assert!(!f.has_allow_marker(2, "panic"));
    }
}
