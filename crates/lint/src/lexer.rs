//! A minimal Rust lexer: just enough token structure to tell code from
//! comments and strings, which is what every lint rule needs to avoid
//! false positives on words like `unsafe` inside a doc example or
//! `.unwrap()` inside a string literal.
//!
//! The lexer is deliberately lossless and forgiving: it never rejects
//! input, it only classifies byte ranges. Unterminated constructs extend
//! to end of file. It handles the constructs that actually occur in this
//! tree (and the fixture corpus): line and nested block comments, string
//! literals with escapes, raw strings with any hash depth, byte strings,
//! char literals vs. lifetimes, raw identifiers, and numeric literals.

/// Classification of one lexed byte range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `_` and raw `r#ident`).
    Ident,
    /// A single punctuation byte.
    Punct,
    /// Numeric literal (integer or float, any base).
    Num,
    /// String, raw string, byte string, or C string literal.
    Str,
    /// Character or byte-character literal.
    Char,
    /// A lifetime such as `'a` (or the label form `'outer:`).
    Lifetime,
    /// `// ...` comment, including `///` and `//!` doc comments.
    LineComment,
    /// `/* ... */` comment (nesting respected), including `/** */`.
    BlockComment,
}

/// One token: a classified byte range of the source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// What the range is.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub lo: usize,
    /// Byte offset one past the last byte.
    pub hi: usize,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.lo..self.hi]
    }

    /// True for comment tokens (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Scan a quoted string starting at the opening `"` (offset `i`); returns
/// the offset one past the closing quote.
fn scan_string(b: &[u8], mut i: usize) -> usize {
    debug_assert_eq!(b[i], b'"');
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i = (i + 2).min(b.len()),
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Scan a raw string whose hashes start at `i` (just past the `r`);
/// returns the offset one past the final hash (or quote).
fn scan_raw_string(b: &[u8], mut i: usize) -> usize {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != b'"' {
        return i; // not actually a raw string; caller re-lexes as ident
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < b.len() && b[j] == b'#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Lex `src` into a lossless token stream (whitespace omitted).
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let lo = i;
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::LineComment,
                lo,
                hi: i,
            });
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            toks.push(Token {
                kind: TokKind::BlockComment,
                lo,
                hi: i,
            });
            continue;
        }
        if c == b'"' {
            i = scan_string(b, i);
            toks.push(Token {
                kind: TokKind::Str,
                lo,
                hi: i,
            });
            continue;
        }
        if c == b'\'' {
            // Lifetime if an identifier follows and is NOT closed by a
            // quote (`'a` vs `'a'`); otherwise a char literal.
            let mut j = i + 1;
            if j < b.len() && is_ident_start(b[j]) && b[j] != b'\\' {
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                if j >= b.len() || b[j] != b'\'' {
                    toks.push(Token {
                        kind: TokKind::Lifetime,
                        lo,
                        hi: j,
                    });
                    i = j;
                    continue;
                }
            }
            // Char literal: consume escapes until the closing quote.
            i += 1;
            while i < b.len() {
                match b[i] {
                    b'\\' => i = (i + 2).min(b.len()),
                    b'\'' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            toks.push(Token {
                kind: TokKind::Char,
                lo,
                hi: i,
            });
            continue;
        }
        if is_ident_start(c) {
            // String-literal prefixes: r"", r#""#, b"", br"", b''.
            if c == b'r' && i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') {
                let end = scan_raw_string(b, i + 1);
                if end > i + 1 && b.get(end.wrapping_sub(1)).is_some() {
                    // Only a raw string if a quote was actually found.
                    if src[i..end].contains('"') {
                        toks.push(Token {
                            kind: TokKind::Str,
                            lo,
                            hi: end,
                        });
                        i = end;
                        continue;
                    }
                }
            }
            if c == b'b' && i + 1 < b.len() {
                match b[i + 1] {
                    b'"' => {
                        i = scan_string(b, i + 1);
                        toks.push(Token {
                            kind: TokKind::Str,
                            lo,
                            hi: i,
                        });
                        continue;
                    }
                    b'\'' => {
                        i += 2;
                        while i < b.len() {
                            match b[i] {
                                b'\\' => i = (i + 2).min(b.len()),
                                b'\'' => {
                                    i += 1;
                                    break;
                                }
                                _ => i += 1,
                            }
                        }
                        toks.push(Token {
                            kind: TokKind::Char,
                            lo,
                            hi: i,
                        });
                        continue;
                    }
                    b'r' if i + 2 < b.len() && (b[i + 2] == b'"' || b[i + 2] == b'#') => {
                        let end = scan_raw_string(b, i + 2);
                        if src[i..end].contains('"') {
                            toks.push(Token {
                                kind: TokKind::Str,
                                lo,
                                hi: end,
                            });
                            i = end;
                            continue;
                        }
                    }
                    _ => {}
                }
            }
            // Raw identifier `r#ident`.
            if c == b'r'
                && i + 1 < b.len()
                && b[i + 1] == b'#'
                && b.get(i + 2).copied().is_some_and(is_ident_start)
            {
                i += 2;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokKind::Ident,
                    lo,
                    hi: i,
                });
                continue;
            }
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Ident,
                lo,
                hi: i,
            });
            continue;
        }
        if c.is_ascii_digit() {
            // Good enough for classification: digits, alphanumerics,
            // underscores, and a decimal point. Exponent signs lex as
            // separate punct tokens, which no rule cares about.
            i += 1;
            while i < b.len() && (is_ident_continue(b[i]) || b[i] == b'.') {
                // `0..10` must not swallow the range operator.
                if b[i] == b'.' && i + 1 < b.len() && b[i + 1] == b'.' {
                    break;
                }
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Num,
                lo,
                hi: i,
            });
            continue;
        }
        i += 1;
        toks.push(Token {
            kind: TokKind::Punct,
            lo,
            hi: i,
        });
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn comments_strings_and_code_are_distinguished() {
        let src = r#"
// unsafe in a comment
let s = "unsafe { }"; /* unsafe /* nested */ still comment */
unsafe { x.unwrap() }
"#;
        let ks = kinds(src);
        let unsafe_code: Vec<_> = ks
            .iter()
            .filter(|(k, t)| *k == TokKind::Ident && t == "unsafe")
            .collect();
        assert_eq!(unsafe_code.len(), 1, "only the real keyword counts");
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::LineComment && t.contains("unsafe in a comment")));
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::BlockComment && t.contains("nested")));
    }

    #[test]
    fn lifetimes_and_chars() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn raw_and_byte_strings() {
        let ks = kinds(r###"let a = r#"has "quotes" and .unwrap()"#; let b = b"bytes";"###);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
        assert!(
            !ks.iter()
                .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"),
            "unwrap inside a raw string is not code"
        );
    }

    #[test]
    fn numbers_do_not_eat_range_operators() {
        let ks = kinds("for i in 0..10 { let f = 1.5e3; }");
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Num && t == "0"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Num && t == "10"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Num && t == "1.5e3"));
    }
}
