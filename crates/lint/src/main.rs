//! `hillview-lint` — the workspace invariant checker CLI.
//!
//! Usage: `cargo run -p hillview-lint -- check [--root <path>]`
//!
//! Exits 0 when the tree satisfies every invariant, 1 with one line per
//! finding otherwise (2 for usage/IO errors). See the library docs for
//! the rule table and the `// lint: allow(...)` marker grammar.

use hillview_lint::Workspace;
use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut command = None;
    let mut root = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "check" => command = Some("check"),
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`; usage: hillview-lint check [--root <path>]");
                return ExitCode::from(2);
            }
        }
    }
    if command.is_none() {
        eprintln!("usage: hillview-lint check [--root <path>]");
        return ExitCode::from(2);
    }
    let root = root.or_else(|| std::env::current_dir().ok().and_then(find_workspace_root));
    let Some(root) = root else {
        eprintln!("no workspace root found (no ancestor Cargo.toml with [workspace]); use --root");
        return ExitCode::from(2);
    };
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("failed to read workspace under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if ws.files.is_empty() {
        // A clean bill of health over zero files is a misconfiguration
        // (wrong --root, wrong CI working directory), not a pass.
        eprintln!(
            "no .rs sources found under {}; wrong --root?",
            root.display()
        );
        return ExitCode::from(2);
    }
    let findings = ws.check();
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!(
            "hillview-lint: {} files clean across 7 rules",
            ws.files.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("hillview-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
