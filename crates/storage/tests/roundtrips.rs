//! Property tests: every storage format must round-trip arbitrary tables.

use hillview_columnar::column::{Column, DictColumn, F64Column, I64Column};
use hillview_columnar::{ColumnKind, Table};
use hillview_storage::csv::{read_csv, write_csv, CsvOptions};
use hillview_storage::hvc;
use hillview_storage::partition::{partition_table, slice_table};
use proptest::prelude::*;
use std::io::Cursor;

/// Arbitrary mixed-type tables with nulls.
fn table_strategy() -> impl Strategy<Value = Table> {
    let row = (
        proptest::option::weighted(0.85, any::<i64>()),
        proptest::option::weighted(0.85, -1e12f64..1e12),
        proptest::option::weighted(0.85, "[a-zA-Z0-9 ,\"']{0,12}"),
    );
    proptest::collection::vec(row, 1..80).prop_map(|rows| {
        Table::builder()
            .column(
                "I",
                ColumnKind::Int,
                Column::Int(I64Column::from_options(rows.iter().map(|r| r.0))),
            )
            .column(
                "F",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(rows.iter().map(|r| r.1))),
            )
            .column(
                "S",
                ColumnKind::String,
                Column::Str(DictColumn::from_strings(
                    rows.iter().map(|r| r.2.as_deref()),
                )),
            )
            .build()
            .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hvc_roundtrip_everything(t in table_strategy()) {
        let decoded = hvc::decode(hvc::encode(&t)).unwrap();
        prop_assert_eq!(decoded.num_rows(), t.num_rows());
        prop_assert_eq!(decoded.num_columns(), t.num_columns());
        for r in 0..t.num_rows() {
            prop_assert_eq!(decoded.full_row(r), t.full_row(r));
        }
    }

    /// HVC preserves the in-memory encoding: whatever `IntStorage` variant
    /// a column carries (every variant, forced), the decoded column carries
    /// the identical storage — packed words ship without inflating.
    #[test]
    fn hvc_roundtrip_preserves_every_encoding(
        data in proptest::collection::vec(-3000i64..3000, 1..200),
    ) {
        use hillview_columnar::{I64Storage, NullMask};
        let mut ascending = data.clone();
        ascending.sort_unstable();
        let storages = [
            I64Storage::plain_of(data.clone()),
            I64Storage::bit_packed_of(&data).unwrap(),
            I64Storage::run_length_of(&data).unwrap(),
            I64Storage::delta_of(&ascending).unwrap(),
        ];
        for s in storages {
            let kind = s.kind();
            let t = Table::builder()
                .column(
                    "V",
                    ColumnKind::Int,
                    Column::Int(I64Column::with_storage(s, NullMask::none())),
                )
                .build()
                .unwrap();
            let decoded = hvc::decode(hvc::encode(&t)).unwrap();
            let c = decoded.column_by_name("V").unwrap().as_i64_col().unwrap();
            prop_assert_eq!(c.storage().kind(), kind);
            prop_assert_eq!(
                c.storage(),
                t.column_by_name("V").unwrap().as_i64_col().unwrap().storage()
            );
        }
    }

    /// CSV round-trips values it can represent. Empty strings decode as
    /// missing (CSV cannot distinguish them), so inputs avoid them.
    #[test]
    fn csv_roundtrip(t in table_strategy()) {
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(Cursor::new(buf), &CsvOptions::default()).unwrap();
        prop_assert_eq!(back.num_rows(), t.num_rows());
        for r in 0..t.num_rows() {
            // Int/missing round-trip exactly.
            prop_assert_eq!(back.get(r, "I").unwrap(), t.get(r, "I").unwrap());
            // Strings round-trip except empty → missing.
            let orig = t.get(r, "S").unwrap();
            let got = back.get(r, "S").unwrap();
            match orig.as_str() {
                Some("") => prop_assert!(got.is_missing()),
                _ => prop_assert_eq!(got, orig),
            }
        }
    }

    #[test]
    fn partitioning_is_lossless(t in table_strategy(), rpp in 1usize..40) {
        let parts = partition_table(&t, rpp);
        let total: usize = parts.iter().map(|p| p.num_rows()).sum();
        prop_assert_eq!(total, t.num_rows());
        let mut global = 0usize;
        for p in &parts {
            for r in 0..p.num_rows() {
                prop_assert_eq!(p.full_row(r), t.full_row(global));
                global += 1;
            }
        }
    }

    #[test]
    fn slices_compose(t in table_strategy(), cut in 0usize..80) {
        let n = t.num_rows();
        let cut = cut.min(n);
        let a = slice_table(&t, 0, cut);
        let b = slice_table(&t, cut, n);
        prop_assert_eq!(a.num_rows() + b.num_rows(), n);
        if cut < n {
            prop_assert_eq!(b.full_row(0), t.full_row(cut));
        }
    }
}
