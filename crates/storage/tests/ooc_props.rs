//! Residency-tier equivalence: a table read back *mapped* (lazily
//! resident, block-granular faults through a [`BlockCache`]) must be
//! bit-identical to the same file decoded onto the heap — across every
//! column encoding, every membership representation, both simd modes, and
//! under a block cache small enough that chunks evict mid-scan.
//!
//! This is the storage-level contract the engine's out-of-core path
//! stands on: residency is an I/O concern only, never a semantics one.

use hillview_columnar::column::{Column, DictColumn, F64Column, I64Column};
use hillview_columnar::predicate::filter_members;
use hillview_columnar::{
    simd, BlockCache, ColumnKind, I64Storage, MembershipSet, NullMask, Predicate, SegmentMode,
    Table,
};
use hillview_storage::{hvc, read_file_mapped};
use proptest::prelude::*;
use std::path::PathBuf;

/// Write `t` to a fresh v3 file in a temp path unique to this test run.
fn write_temp(t: &Table, tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "hv-ooc-props-{tag}-{}-{:x}.hvc",
        std::process::id(),
        t as *const Table as usize
    ));
    hvc::write_file(t, &path).unwrap();
    path
}

fn rows_of(m: &MembershipSet) -> Vec<usize> {
    m.iter().collect()
}

/// Assert `mapped` and `heap` agree on every row and under `predicate`
/// evaluated through each membership representation.
fn assert_tiers_identical(heap: &Table, mapped: &Table, predicate: &Predicate, seed: u64) {
    assert_eq!(mapped.num_rows(), heap.num_rows());
    assert_eq!(mapped.num_columns(), heap.num_columns());
    for r in 0..heap.num_rows() {
        assert_eq!(mapped.full_row(r), heap.full_row(r), "row {r} diverged");
    }
    let n = heap.num_rows();
    let full = MembershipSet::full(n);
    let half = MembershipSet::from_rows((0..n as u32).step_by(2).collect(), n);
    let sampled = MembershipSet::from_rows(full.sample(0.3, seed), n);
    for (name, parent) in [("full", &full), ("half", &half), ("sampled", &sampled)] {
        let h = filter_members(heap, predicate, parent).unwrap();
        let m = filter_members(mapped, predicate, parent).unwrap();
        assert_eq!(h.universe(), m.universe());
        assert_eq!(
            rows_of(&h),
            rows_of(&m),
            "membership rep {name:?} diverged between tiers"
        );
    }
}

/// Arbitrary mixed-type tables with nulls (mirrors the roundtrip suite).
fn table_strategy() -> impl Strategy<Value = Table> {
    let row = (
        proptest::option::weighted(0.85, -3000i64..3000),
        proptest::option::weighted(0.85, -1e9f64..1e9),
        proptest::option::weighted(0.85, "[a-z]{0,6}"),
    );
    proptest::collection::vec(row, 1..300).prop_map(|rows| {
        Table::builder()
            .column(
                "I",
                ColumnKind::Int,
                Column::Int(I64Column::from_options(rows.iter().map(|r| r.0))),
            )
            .column(
                "F",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(rows.iter().map(|r| r.1))),
            )
            .column(
                "S",
                ColumnKind::String,
                Column::Str(DictColumn::from_strings(
                    rows.iter().map(|r| r.2.as_deref()),
                )),
            )
            .build()
            .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Mixed tables: mapped == heap row-for-row and filter-for-filter,
    /// under a cache small enough (one chunk) to churn mid-comparison.
    #[test]
    fn mapped_equals_heap_for_mixed_tables(t in table_strategy(), seed in any::<u64>()) {
        let path = write_temp(&t, "mixed");
        let heap = hvc::read_file(&path).unwrap();
        let cache = BlockCache::new(64 << 10);
        let mapped = read_file_mapped(&path, &cache, SegmentMode::Auto).unwrap();
        let pred = Predicate::range("I", -1500.0, 1500.0)
            .and(Predicate::range("F", -5e8, 5e8));
        assert_tiers_identical(&heap, &mapped, &pred, seed);
        let _ = std::fs::remove_file(&path);
    }

    /// Every `I64Storage` encoding survives the mapped tier: plain,
    /// bit-packed, run-length, delta — each forced explicitly, each
    /// compared under both simd modes (the mapped windows feed the same
    /// kernels the heap buffers do).
    #[test]
    fn mapped_equals_heap_for_every_encoding_and_simd_mode(
        data in proptest::collection::vec(-3000i64..3000, 1..400),
        seed in any::<u64>(),
    ) {
        let mut ascending = data.clone();
        ascending.sort_unstable();
        let storages = [
            I64Storage::plain_of(data.clone()),
            I64Storage::bit_packed_of(&data).unwrap(),
            I64Storage::run_length_of(&data).unwrap(),
            I64Storage::delta_of(&ascending).unwrap(),
        ];
        for s in storages {
            let t = Table::builder()
                .column(
                    "V",
                    ColumnKind::Int,
                    Column::Int(I64Column::with_storage(s, NullMask::none())),
                )
                .build()
                .unwrap();
            let path = write_temp(&t, "enc");
            let heap = hvc::read_file(&path).unwrap();
            let cache = BlockCache::new(64 << 10);
            let mapped = read_file_mapped(&path, &cache, SegmentMode::Auto).unwrap();
            let pred = Predicate::range("V", -1000.0, 1000.0);
            for scalar in [false, true] {
                simd::set_force_scalar(scalar);
                assert_tiers_identical(&heap, &mapped, &pred, seed);
            }
            simd::set_force_scalar(false);
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// The storage-level mirror of the engine's
/// `seeded_cache_churn_evicts_without_corrupting_results`: five part
/// files scanned by a splitmix-seeded predicate grid through one shared
/// 2 KiB cache. Every answer must match the heap ground truth while
/// chunks continuously fault (and, under `ooc`, evict).
#[test]
fn tiny_cache_churn_grid_never_corrupts_results() {
    const ROWS: usize = 50_000;
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut s = 0xD1CE_u64;
    // A dense shuffled payload plus a sorted delta column, split into five
    // part files sharing one 2 KiB cache — each part is its own segment,
    // so faulting one part's chunks must push out another's.
    let t = Table::builder()
        .column(
            "A",
            ColumnKind::Int,
            Column::Int(I64Column::from_options(
                (0..ROWS).map(|_| Some((splitmix(&mut s) % 100_000) as i64)),
            )),
        )
        .column(
            "K",
            ColumnKind::Int,
            Column::Int(I64Column::from_options((0..ROWS).map(|i| Some(i as i64)))),
        )
        .build()
        .unwrap();
    let parts = hillview_storage::partition_table(&t, ROWS / 5);
    let cache = BlockCache::new(2048);
    let tiers: Vec<(Table, Table, PathBuf)> = parts
        .iter()
        .map(|p| {
            let path = write_temp(p, "churn");
            let heap = hvc::read_file(&path).unwrap();
            let mapped = read_file_mapped(&path, &cache, SegmentMode::Auto).unwrap();
            (heap, mapped, path)
        })
        .collect();

    let mut seed = 0xC0FFEE_u64;
    for q in 0..16 {
        let lo = (splitmix(&mut seed) % 90_000) as f64;
        let key = (splitmix(&mut seed) % 40_000) as f64;
        let pred = Predicate::range("A", lo, lo + 10_000.0).and(Predicate::range(
            "K",
            key,
            key + 10_000.0,
        ));
        for (part, (heap, mapped, _)) in tiers.iter().enumerate() {
            let full = MembershipSet::full(heap.num_rows());
            let h = filter_members(heap, &pred, &full).unwrap();
            let m = filter_members(mapped, &pred, &full).unwrap();
            assert_eq!(
                rows_of(&h),
                rows_of(&m),
                "query {q} part {part} corrupted by churn"
            );
        }
    }

    let stats = cache.stats();
    if cfg!(target_endian = "little") {
        assert!(stats.faults > 0, "mapped scans never faulted");
        assert!(stats.hits > 0, "repeated scans never hit residency");
        // Only the mmap tier can drop pages; the pread tier pins chunks.
        #[cfg(feature = "ooc")]
        {
            assert!(
                stats.evictions > 0,
                "2 KiB budget over five mapped parts must evict (resident {})",
                stats.resident_bytes
            );
        }
    }
    for (_, _, path) in &tiers {
        let _ = std::fs::remove_file(path);
    }
}
