//! # hillview-storage
//!
//! The storage layer of Hillview-RS.
//!
//! Paper §2/§5.4: Hillview is *storage-independent* — it "reads data
//! repositories without pre-processing, repartitioning, or other
//! optimizations", requiring only that data is horizontally partitioned and
//! immutable while browsed. This crate provides that layer:
//!
//! * [`csv`] — a from-scratch CSV reader/writer (quoting, headers, type
//!   inference) — the paper's most common input format.
//! * [`jsonl`] — a JSON-lines reader (one object per row) with a small
//!   self-contained JSON parser.
//! * [`hvc`] — our columnar binary format ("HillView Columnar"), the
//!   substitute for ORC/Parquet: per-column typed blocks with dictionary
//!   pages, varint-encoded, fast sequential column reads.
//! * [`partition`] — horizontal partitioning into micropartitions
//!   (paper §5.3: "the data partition within a server is divided into
//!   micropartitions ... each assigned to a leaf").
//! * [`throttle`] — a throttled reader that models cold-SSD bandwidth for
//!   the Figure 6 experiments.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csv;
pub mod error;
pub mod hvc;
pub mod jsonl;
pub mod partition;
pub mod throttle;

pub use error::{Error, Result};
pub use partition::partition_table;
