//! # hillview-storage
//!
//! The storage layer of Hillview-RS.
//!
//! Paper §2/§5.4: Hillview is *storage-independent* — it "reads data
//! repositories without pre-processing, repartitioning, or other
//! optimizations", requiring only that data is horizontally partitioned and
//! immutable while browsed. This crate provides that layer:
//!
//! * [`csv`] — a from-scratch CSV reader/writer (quoting, headers, type
//!   inference) — the paper's most common input format.
//! * [`jsonl`] — a JSON-lines reader (one object per row) with a small
//!   self-contained JSON parser.
//! * [`hvc`] — our columnar binary format ("HillView Columnar"), the
//!   substitute for ORC/Parquet: per-column typed blocks with dictionary
//!   pages, varint-encoded, fast sequential column reads.
//! * [`partition`] — horizontal partitioning into micropartitions
//!   (paper §5.3: "the data partition within a server is divided into
//!   micropartitions ... each assigned to a leaf").
//! * [`spill`] — streaming ingest that seals micropartitions to disk as
//!   they fill, keeping ingest memory O(micropartition).
//! * [`throttle`] — a throttled reader that models cold-SSD bandwidth for
//!   the Figure 6 experiments.
//!
//! ## Storage tiers
//!
//! An `hvc` v3 file can be opened three ways, trading memory for I/O:
//!
//! 1. **Heap** ([`hvc::read_file`]) — the whole payload is decoded into
//!    owned columns. Fastest scans, O(dataset) memory; also the only
//!    correct path on big-endian hosts and for v2 files.
//! 2. **Lazy pread** ([`hvc::read_file_mapped`] without the `ooc`
//!    feature) — columns are windows over an anonymous buffer filled
//!    64 KiB chunks at a time by `pread` as scans touch them. Untouched
//!    columns and zone-skipped blocks cost no I/O; resident chunks are
//!    pinned (eviction needs `ooc`).
//! 3. **Zero-copy mmap** ([`hvc::read_file_mapped`] with `ooc`) — columns
//!    borrow the page cache directly; a byte-budgeted
//!    [`hillview_columnar::BlockCache`] evicts cold chunks with
//!    `MADV_DONTNEED`, so a worker scans datasets far larger than its
//!    budget.
//!
//! All three tiers produce bit-identical query results; the property
//! tests in `tests/ooc_props.rs` pin that equivalence across encodings.
//! [`hvc::probe_file`] reads none of the payload under any tier: the v3
//! header carries the schema, row count, and per-block zone maps.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod csv;
pub mod error;
pub mod hvc;
pub mod jsonl;
pub mod partition;
pub mod spill;
pub mod throttle;

pub use error::{Error, Result};
pub use hvc::{probe_file, read_file_mapped, FileInfo};
pub use partition::{concat_tables, partition_table};
pub use spill::{SpillManifest, SpilledPart, SpillingWriter};
