//! Throttled reading: a model of cold-storage bandwidth.
//!
//! Figure 6 of the paper measures Hillview "when data is not in memory, so
//! it needs to be loaded from SSD". On this testbed the files live in the
//! page cache, so a bandwidth throttle injects the missing latency: reads
//! stall to keep the effective throughput at a configured bytes/second,
//! modeling the paper's SATA-SSD sequential-read speeds.

use std::io::Read;
use std::time::{Duration, Instant};

/// A reader that limits throughput to `bytes_per_sec`.
pub struct ThrottledReader<R> {
    inner: R,
    bytes_per_sec: u64,
    started: Option<Instant>,
    bytes_read: u64,
}

impl<R: Read> ThrottledReader<R> {
    /// Wrap `inner`, limiting it to `bytes_per_sec` (0 = unlimited).
    pub fn new(inner: R, bytes_per_sec: u64) -> Self {
        ThrottledReader {
            inner,
            bytes_per_sec,
            started: None,
            bytes_read: 0,
        }
    }

    /// Bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }
}

impl<R: Read> Read for ThrottledReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes_read += n as u64;
        if self.bytes_per_sec > 0 {
            let started = *self.started.get_or_insert_with(Instant::now);
            let target =
                Duration::from_secs_f64(self.bytes_read as f64 / self.bytes_per_sec as f64);
            let elapsed = started.elapsed();
            if target > elapsed {
                std::thread::sleep(target - elapsed);
            }
        }
        Ok(n)
    }
}

/// A typical SATA-SSD sequential read bandwidth (≈500 MB/s), matching the
/// class of SSDs in the paper's testbed.
pub const SSD_BYTES_PER_SEC: u64 = 500_000_000;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn unthrottled_reads_pass_through() {
        let data = vec![7u8; 4096];
        let mut r = ThrottledReader::new(Cursor::new(data.clone()), 0);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(r.bytes_read(), 4096);
    }

    #[test]
    fn throttling_delays_reads() {
        // 100 KB at 1 MB/s should take ≈100 ms.
        let data = vec![0u8; 100_000];
        let mut r = ThrottledReader::new(Cursor::new(data), 1_000_000);
        let start = Instant::now();
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(90), "{elapsed:?}");
        assert_eq!(out.len(), 100_000);
    }

    #[test]
    fn fast_budget_does_not_stall_noticeably() {
        let data = vec![0u8; 10_000];
        let mut r = ThrottledReader::new(Cursor::new(data), u64::MAX);
        let start = Instant::now();
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert!(start.elapsed() < Duration::from_millis(50));
    }
}
