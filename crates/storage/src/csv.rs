//! CSV reading and writing, from scratch.
//!
//! Handles RFC-4180 quoting (embedded commas, quotes, newlines), optional
//! headers, and per-column type inference (Int → Double → String fallback;
//! empty fields become missing values). The reader is buffered and builds
//! columns directly — no per-row allocation of records.

use crate::error::{Error, Result};
use hillview_columnar::column::{Column, DictColumn, F64Column, I64Column};
use hillview_columnar::{ColumnKind, NullMask, Table};
use std::io::{BufRead, Write};

/// Options for [`read_csv`].
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// First row is a header with column names.
    pub has_header: bool,
    /// Field delimiter.
    pub delimiter: u8,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            has_header: true,
            delimiter: b',',
        }
    }
}

/// Parse one CSV record starting at `first_line`; returns its fields.
/// Handles quoted fields spanning multiple lines by pulling more lines.
pub(crate) fn parse_record(
    first_line: String,
    lines: &mut impl Iterator<Item = std::io::Result<String>>,
    delimiter: u8,
    line_no: usize,
) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut buf: Vec<char> = first_line.chars().collect();
    let mut i = 0usize;
    let mut in_quotes = false;
    loop {
        if i >= buf.len() {
            if in_quotes {
                // Quoted newline: continue with the next physical line.
                match lines.next() {
                    Some(Ok(next)) => {
                        field.push('\n');
                        buf = next.chars().collect();
                        i = 0;
                        continue;
                    }
                    Some(Err(e)) => return Err(e.into()),
                    None => {
                        return Err(Error::Parse {
                            format: "csv",
                            at: line_no,
                            message: "unterminated quoted field".into(),
                        })
                    }
                }
            }
            fields.push(field);
            return Ok(fields);
        }
        let c = buf[i];
        i += 1;
        match c {
            '"' if !in_quotes && field.is_empty() => in_quotes = true,
            '"' if in_quotes => {
                if buf.get(i) == Some(&'"') {
                    i += 1;
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            c if c == delimiter as char && !in_quotes => {
                fields.push(std::mem::take(&mut field));
            }
            c => field.push(c),
        }
    }
}

/// What a column's values could all be parsed as so far.
#[derive(Clone, Copy, PartialEq)]
enum Inferred {
    Int,
    Double,
    Text,
}

/// Read a CSV stream into a [`Table`], inferring column types.
pub fn read_csv(reader: impl BufRead, options: &CsvOptions) -> Result<Table> {
    let mut lines = reader.lines();
    let mut line_no = 0usize;

    // Collect raw string fields column-wise.
    let mut names: Vec<String> = Vec::new();
    let mut cells: Vec<Vec<Option<String>>> = Vec::new();

    if options.has_header {
        match lines.next() {
            None => return Ok(Table::empty()),
            Some(line) => {
                line_no += 1;
                let header = parse_record(line?, &mut lines, options.delimiter, line_no)?;
                names = header;
                cells = names.iter().map(|_| Vec::new()).collect();
            }
        }
    }

    while let Some(line) = lines.next() {
        line_no += 1;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let record = parse_record(line, &mut lines, options.delimiter, line_no)?;
        if names.is_empty() {
            names = (0..record.len()).map(|i| format!("Column{i}")).collect();
            cells = names.iter().map(|_| Vec::new()).collect();
        }
        if record.len() != names.len() {
            return Err(Error::Parse {
                format: "csv",
                at: line_no,
                message: format!("expected {} fields, found {}", names.len(), record.len()),
            });
        }
        for (col, value) in cells.iter_mut().zip(record) {
            col.push(if value.is_empty() { None } else { Some(value) });
        }
    }

    // Infer each column's type from its non-missing values.
    let mut builder = Table::builder();
    for (name, col) in names.iter().zip(&cells) {
        let mut kind = Inferred::Int;
        for v in col.iter().flatten() {
            let v = v.trim();
            match kind {
                Inferred::Int if v.parse::<i64>().is_err() => {
                    kind = if v.parse::<f64>().is_ok() {
                        Inferred::Double
                    } else {
                        Inferred::Text
                    };
                }
                Inferred::Double if v.parse::<f64>().is_err() => kind = Inferred::Text,
                _ => {}
            }
            if kind == Inferred::Text {
                break;
            }
        }
        let column = match kind {
            Inferred::Int => Column::Int(I64Column::from_options(
                col.iter()
                    .map(|v| v.as_deref().and_then(|s| s.trim().parse().ok())),
            )),
            Inferred::Double => Column::Double(F64Column::from_options(
                col.iter()
                    .map(|v| v.as_deref().and_then(|s| s.trim().parse().ok())),
            )),
            Inferred::Text => {
                Column::Str(DictColumn::from_strings(col.iter().map(|v| v.as_deref())))
            }
        };
        builder = builder.column(name, column.kind(), column);
    }
    Ok(builder.build()?)
}

/// Write a table as CSV with a header row.
pub fn write_csv(table: &Table, mut out: impl Write) -> Result<()> {
    let names: Vec<&str> = table
        .schema()
        .descs()
        .iter()
        .map(|d| d.name.as_ref())
        .collect();
    writeln!(
        out,
        "{}",
        names.iter().map(|n| quote(n)).collect::<Vec<_>>().join(",")
    )?;
    for row in 0..table.num_rows() {
        let mut first = true;
        for c in 0..table.num_columns() {
            if !first {
                write!(out, ",")?;
            }
            first = false;
            let v = table.column(c).value(row);
            if !v.is_missing() {
                write!(out, "{}", quote(&v.to_string()))?;
            }
        }
        writeln!(out)?;
    }
    Ok(())
}

fn quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Build a [`Column`] of the declared kind from raw string cells (used by
/// callers that know the schema, bypassing inference).
pub fn column_from_strings(kind: ColumnKind, cells: &[Option<String>]) -> Column {
    match kind {
        ColumnKind::Int => Column::Int(I64Column::from_options(
            cells
                .iter()
                .map(|v| v.as_deref().and_then(|s| s.trim().parse().ok())),
        )),
        ColumnKind::Date => Column::Date(I64Column::from_options(
            cells
                .iter()
                .map(|v| v.as_deref().and_then(|s| s.trim().parse().ok())),
        )),
        ColumnKind::Double => Column::Double(F64Column::from_options(
            cells
                .iter()
                .map(|v| v.as_deref().and_then(|s| s.trim().parse().ok())),
        )),
        ColumnKind::String => {
            Column::Str(DictColumn::from_strings(cells.iter().map(|v| v.as_deref())))
        }
        ColumnKind::Category => {
            Column::Cat(DictColumn::from_strings(cells.iter().map(|v| v.as_deref())))
        }
    }
}

/// Keep `NullMask` import used for doc purposes in signatures elsewhere.
#[allow(unused)]
fn _mask_anchor(_m: NullMask) {}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::Value;
    use std::io::Cursor;

    fn read(s: &str) -> Table {
        read_csv(Cursor::new(s), &CsvOptions::default()).unwrap()
    }

    #[test]
    fn basic_read_with_inference() {
        let t = read("name,age,score\nalice,30,9.5\nbob,25,8.25\n");
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.schema().kind_of("name").unwrap(), ColumnKind::String);
        assert_eq!(t.schema().kind_of("age").unwrap(), ColumnKind::Int);
        assert_eq!(t.schema().kind_of("score").unwrap(), ColumnKind::Double);
        assert_eq!(t.get(1, "age").unwrap(), Value::Int(25));
        assert_eq!(t.get(0, "score").unwrap(), Value::Double(9.5));
    }

    #[test]
    fn empty_fields_become_missing() {
        let t = read("a,b\n1,\n,2\n");
        assert_eq!(t.get(0, "b").unwrap(), Value::Missing);
        assert_eq!(t.get(1, "a").unwrap(), Value::Missing);
        assert_eq!(t.get(1, "b").unwrap(), Value::Int(2));
    }

    #[test]
    fn quoted_fields() {
        let t = read("text\n\"hello, world\"\n\"she said \"\"hi\"\"\"\n");
        assert_eq!(t.get(0, "text").unwrap(), Value::str("hello, world"));
        assert_eq!(t.get(1, "text").unwrap(), Value::str("she said \"hi\""));
    }

    #[test]
    fn quoted_newline() {
        let t = read("text\n\"line one\nline two\"\n");
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.get(0, "text").unwrap(), Value::str("line one\nline two"));
    }

    #[test]
    fn mixed_numeric_column_demotes_to_double_then_text() {
        let t = read("x\n1\n2.5\n");
        assert_eq!(t.schema().kind_of("x").unwrap(), ColumnKind::Double);
        let t = read("x\n1\nabc\n");
        assert_eq!(t.schema().kind_of("x").unwrap(), ColumnKind::String);
    }

    #[test]
    fn field_count_mismatch_is_error() {
        let r = read_csv(Cursor::new("a,b\n1\n"), &CsvOptions::default());
        assert!(matches!(r, Err(Error::Parse { .. })));
    }

    #[test]
    fn headerless_mode_names_columns() {
        let t = read_csv(
            Cursor::new("1,x\n2,y\n"),
            &CsvOptions {
                has_header: false,
                delimiter: b',',
            },
        )
        .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert!(t.schema().index_of("Column0").is_ok());
    }

    #[test]
    fn round_trip_write_read() {
        let t = read("name,v\n\"a,b\",1\nplain,\n");
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let t2 = read_csv(Cursor::new(buf), &CsvOptions::default()).unwrap();
        assert_eq!(t2.num_rows(), t.num_rows());
        assert_eq!(t2.get(0, "name").unwrap(), Value::str("a,b"));
        assert_eq!(t2.get(1, "v").unwrap(), Value::Missing);
    }

    #[test]
    fn alternative_delimiter() {
        let t = read_csv(
            Cursor::new("a|b\n1|2\n"),
            &CsvOptions {
                has_header: true,
                delimiter: b'|',
            },
        )
        .unwrap();
        assert_eq!(t.get(0, "b").unwrap(), Value::Int(2));
    }

    #[test]
    fn empty_input() {
        let t = read("");
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn explicit_schema_builder() {
        let col = column_from_strings(
            ColumnKind::Date,
            &[Some("1000".into()), None, Some("2000".into())],
        );
        assert_eq!(col.kind(), ColumnKind::Date);
        assert_eq!(col.value(0), Value::Date(1000));
        assert!(col.is_null(1));
    }
}
