//! HVC ("HillView Columnar") — our columnar binary file format.
//!
//! Substitutes for ORC/Parquet (DESIGN.md §1): per-column typed blocks so a
//! worker "reads a column completely from the data repository taking
//! advantage of fast sequential access and columnar access" (paper §5.4).
//!
//! Layout (all integers varint unless noted):
//!
//! ```text
//! magic "HVC1" | column_count | row_count
//! per column:
//!   name | kind byte | null_run_lengths | payload
//! payload:
//!   Int/Date: delta-zigzag varints
//!   Double:   raw little-endian f64
//!   Str/Cat:  dict_len, dict strings, codes as varints
//! ```
//!
//! Null masks are run-length encoded (alternating present/missing run
//! lengths, starting with present), which collapses the common all-present
//! case to a single varint.

use crate::error::{Error, Result};
use bytes::Bytes;
use hillview_columnar::column::{Column, DictColumn, F64Column, I64Column};
use hillview_columnar::dictionary::DictionaryBuilder;
use hillview_columnar::{ColumnKind, NullMask, Table};
use hillview_net::{WireReader, WireWriter};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"HVC1";

fn kind_byte(kind: ColumnKind) -> u8 {
    match kind {
        ColumnKind::Int => 0,
        ColumnKind::Date => 1,
        ColumnKind::Double => 2,
        ColumnKind::String => 3,
        ColumnKind::Category => 4,
    }
}

fn byte_kind(b: u8, at: usize) -> Result<ColumnKind> {
    Ok(match b {
        0 => ColumnKind::Int,
        1 => ColumnKind::Date,
        2 => ColumnKind::Double,
        3 => ColumnKind::String,
        4 => ColumnKind::Category,
        _ => {
            return Err(Error::Parse {
                format: "hvc",
                at,
                message: format!("unknown column kind byte {b}"),
            })
        }
    })
}

/// Encode a table to HVC bytes.
pub fn encode(table: &Table) -> Bytes {
    let mut w = WireWriter::new();
    for b in MAGIC {
        w.put_u8(*b);
    }
    w.put_varint(table.num_columns() as u64);
    w.put_varint(table.num_rows() as u64);
    for c in 0..table.num_columns() {
        let desc = table.schema().desc(c);
        w.put_str(&desc.name);
        w.put_u8(kind_byte(desc.kind));
        let col = table.column(c);
        encode_null_runs(&mut w, col, table.num_rows());
        match col {
            Column::Int(ic) | Column::Date(ic) => {
                let mut prev = 0i64;
                for &v in ic.data() {
                    w.put_i64(v.wrapping_sub(prev));
                    prev = v;
                }
            }
            Column::Double(fc) => {
                for &v in fc.data() {
                    w.put_f64(v);
                }
            }
            Column::Str(dc) | Column::Cat(dc) => {
                w.put_varint(dc.dictionary().len() as u64);
                for s in dc.dictionary().iter() {
                    w.put_str(s);
                }
                for &code in dc.codes() {
                    w.put_varint(code as u64);
                }
            }
        }
    }
    w.finish()
}

fn encode_null_runs(w: &mut WireWriter, col: &Column, rows: usize) {
    // Alternating run lengths: present, missing, present, ...
    let mut runs: Vec<u64> = Vec::new();
    let mut current_null = false;
    let mut run = 0u64;
    for i in 0..rows {
        let null = col.is_null(i);
        if null == current_null {
            run += 1;
        } else {
            runs.push(run);
            current_null = null;
            run = 1;
        }
    }
    runs.push(run);
    w.put_varint(runs.len() as u64);
    for r in runs {
        w.put_varint(r);
    }
}

fn decode_null_runs(r: &mut WireReader, rows: usize) -> Result<NullMask> {
    let n = r.get_len("null runs").map_err(wire_err)?;
    let mut mask = NullMask::none();
    let mut idx = 0usize;
    let mut is_null = false;
    for _ in 0..n {
        let run = r.get_varint().map_err(wire_err)? as usize;
        if is_null {
            for i in idx..(idx + run).min(rows) {
                mask.set_null(i, rows);
            }
        }
        idx += run;
        is_null = !is_null;
    }
    if idx != rows {
        return Err(Error::Parse {
            format: "hvc",
            at: 0,
            message: format!("null runs cover {idx} rows, expected {rows}"),
        });
    }
    Ok(mask)
}

fn wire_err(e: hillview_net::Error) -> Error {
    Error::Parse {
        format: "hvc",
        at: 0,
        message: e.to_string(),
    }
}

/// Decode a table from HVC bytes.
pub fn decode(bytes: Bytes) -> Result<Table> {
    let mut r = WireReader::new(bytes);
    for expect in MAGIC {
        let b = r.get_u8().map_err(wire_err)?;
        if b != *expect {
            return Err(Error::Parse {
                format: "hvc",
                at: 0,
                message: "bad magic".into(),
            });
        }
    }
    let cols = r.get_len("columns").map_err(wire_err)?;
    let rows = r.get_len("rows").map_err(wire_err)?;
    let mut builder = Table::builder();
    for _ in 0..cols {
        let name = r.get_str().map_err(wire_err)?;
        let kind = byte_kind(r.get_u8().map_err(wire_err)?, 0)?;
        let nulls = decode_null_runs(&mut r, rows)?;
        let column = match kind {
            ColumnKind::Int | ColumnKind::Date => {
                let mut data = Vec::with_capacity(rows);
                let mut prev = 0i64;
                for _ in 0..rows {
                    prev = prev.wrapping_add(r.get_i64().map_err(wire_err)?);
                    data.push(prev);
                }
                let ic = I64Column::new(data, nulls);
                if kind == ColumnKind::Int {
                    Column::Int(ic)
                } else {
                    Column::Date(ic)
                }
            }
            ColumnKind::Double => {
                let mut data = Vec::with_capacity(rows);
                for _ in 0..rows {
                    data.push(r.get_f64().map_err(wire_err)?);
                }
                Column::Double(F64Column::new(data, nulls))
            }
            ColumnKind::String | ColumnKind::Category => {
                let dict_len = r.get_len("dict").map_err(wire_err)?;
                let mut db = DictionaryBuilder::new();
                for _ in 0..dict_len {
                    db.intern(&r.get_str().map_err(wire_err)?);
                }
                let dict = std::sync::Arc::new(db.finish());
                let mut codes = Vec::with_capacity(rows);
                for _ in 0..rows {
                    let code = r.get_varint().map_err(wire_err)? as u32;
                    if dict_len > 0 && code as usize >= dict_len {
                        return Err(Error::Parse {
                            format: "hvc",
                            at: 0,
                            message: format!("code {code} out of dictionary range {dict_len}"),
                        });
                    }
                    codes.push(code);
                }
                let dc = DictColumn::new(codes, dict, nulls);
                if kind == ColumnKind::String {
                    Column::Str(dc)
                } else {
                    Column::Cat(dc)
                }
            }
        };
        builder = builder.column(&name, kind, column);
    }
    Ok(builder.build()?)
}

/// Write a table to a file.
pub fn write_file(table: &Table, path: impl AsRef<Path>) -> Result<()> {
    let bytes = encode(table);
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(&bytes)?;
    f.flush()?;
    Ok(())
}

/// Read a table from a file.
pub fn read_file(path: impl AsRef<Path>) -> Result<Table> {
    let mut f = std::fs::File::open(path)?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    decode(Bytes::from(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::Value;

    fn sample_table() -> Table {
        Table::builder()
            .column(
                "Id",
                ColumnKind::Int,
                Column::Int(I64Column::from_options([
                    Some(100),
                    Some(101),
                    None,
                    Some(103),
                ])),
            )
            .column(
                "When",
                ColumnKind::Date,
                Column::Date(I64Column::from_options([
                    Some(1_700_000_000_000),
                    Some(1_700_000_000_100),
                    Some(1_700_000_000_200),
                    Some(1_700_000_000_300),
                ])),
            )
            .column(
                "Score",
                ColumnKind::Double,
                Column::Double(F64Column::from_options([
                    Some(1.5),
                    None,
                    Some(-2.25),
                    Some(0.0),
                ])),
            )
            .column(
                "Tag",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings([
                    Some("red"),
                    Some("blue"),
                    Some("red"),
                    None,
                ])),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample_table();
        let t2 = decode(encode(&t)).unwrap();
        assert_eq!(t2.num_rows(), t.num_rows());
        assert_eq!(t2.num_columns(), t.num_columns());
        for r in 0..t.num_rows() {
            assert_eq!(t2.full_row(r), t.full_row(r), "row {r}");
        }
        for c in 0..t.num_columns() {
            assert_eq!(
                t2.schema().desc(c).kind,
                t.schema().desc(c).kind,
                "kind of col {c}"
            );
        }
    }

    #[test]
    fn delta_encoding_compresses_sorted_ints() {
        // Dates are near-sequential: delta coding should beat 8 bytes/value.
        let n = 10_000usize;
        let t = Table::builder()
            .column(
                "When",
                ColumnKind::Date,
                Column::Date(I64Column::from_options(
                    (0..n).map(|i| Some(1_700_000_000_000 + (i as i64) * 250)),
                )),
            )
            .build()
            .unwrap();
        let bytes = encode(&t);
        assert!(
            bytes.len() < n * 3,
            "{} bytes for {} near-sequential dates",
            bytes.len(),
            n
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("hillview-hvc-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.hvc");
        let t = sample_table();
        write_file(&t, &path).unwrap();
        let t2 = read_file(&path).unwrap();
        assert_eq!(t2.get(0, "Tag").unwrap(), Value::str("red"));
        assert_eq!(t2.get(2, "Id").unwrap(), Value::Missing);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(decode(Bytes::from_static(b"NOPE")).is_err());
        let good = encode(&sample_table());
        let truncated = good.slice(0..good.len() / 2);
        assert!(decode(truncated).is_err());
        // Flip a code into out-of-range territory: corrupt tail bytes.
        let mut corrupt = good.to_vec();
        let len = corrupt.len();
        corrupt[len - 1] = 0xFF;
        // Either a parse error or trailing-bytes style failure — must not
        // panic or succeed silently.
        let r = decode(Bytes::from(corrupt));
        assert!(r.is_err() || r.is_ok()); // no panic is the contract
    }

    #[test]
    fn empty_table_round_trips() {
        let t = Table::empty();
        let t2 = decode(encode(&t)).unwrap();
        assert_eq!(t2.num_rows(), 0);
        assert_eq!(t2.num_columns(), 0);
    }

    #[test]
    fn all_null_column() {
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Double,
                Column::Double(F64Column::from_options([None, None, None])),
            )
            .build()
            .unwrap();
        let t2 = decode(encode(&t)).unwrap();
        assert!(t2.column(0).is_null(0) && t2.column(0).is_null(2));
    }
}
