//! HVC ("HillView Columnar") — our columnar binary file format.
//!
//! Substitutes for ORC/Parquet (DESIGN.md §1): per-column typed blocks so a
//! worker "reads a column completely from the data repository taking
//! advantage of fast sequential access and columnar access" (paper §5.4).
//!
//! Layout, version 2 (all integers varint unless noted):
//!
//! ```text
//! magic "HVC2" | column_count | row_count
//! per column:
//!   name | kind byte | null_run_lengths | payload
//! payload:
//!   Int/Date: enc byte, declared value count, then
//!     0 (plain):      delta-zigzag varints
//!     1 (bit-packed): base zigzag, width u8, word count, raw LE u64 words
//!     2 (run-length): run count, then (value zigzag, run length) pairs
//!     3 (delta):      anchor count, anchors zigzag, width u8, word count,
//!                     raw LE u64 words of packed adjacent deltas
//!   Double:   declared value count, raw little-endian f64
//!   Str/Cat:  dict_len, dict strings, codes in the same four encodings
//!             (code values as plain varints instead of zigzag)
//! ```
//!
//! The encoding byte mirrors the column's *in-memory*
//! [`hillview_columnar::IntStorage`] representation: a
//! bit-packed, run-length, or delta column round-trips through a file (and
//! across the wire — HVC bytes are also how partitions ship between nodes)
//! without ever inflating to plain, and decode rebuilds the exact same
//! variant via `with_storage` instead of re-analyzing.
//!
//! Encoding bytes are *additive* within the `HVC2` container: byte 3
//! (delta) was added after the format shipped, so a reader predating it
//! rejects files containing delta columns with a structured
//! "unknown encoding byte 3" parse error naming the column — older files
//! remain readable by every newer reader.
//!
//! Every column section carries its own declared value count; a mismatch
//! against the file's row count is rejected up front with the structured
//! [`Error::RowCountMismatch`] instead of surfacing later as a truncated
//! read or a wire error.
//!
//! Null masks are run-length encoded (alternating present/missing run
//! lengths, starting with present), which collapses the common all-present
//! case to a single varint.

#[path = "hvc_v3.rs"]
pub mod v3;

pub use v3::{probe_file, read_file_mapped, FileInfo};

use crate::error::{Error, Result};
use bytes::Bytes;
use hillview_columnar::column::{Column, DictColumn, F64Column, I64Column};
use hillview_columnar::dictionary::DictionaryBuilder;
use hillview_columnar::encoding::{IntStorage, PackedInt};
use hillview_columnar::{ColumnKind, NullMask, Table};
use hillview_net::{WireReader, WireWriter};
use std::io::{Read, Write};
use std::path::Path;

pub(crate) const MAGIC: &[u8; 4] = b"HVC2";

pub(crate) const ENC_PLAIN: u8 = 0;
pub(crate) const ENC_BIT_PACKED: u8 = 1;
pub(crate) const ENC_RUN_LENGTH: u8 = 2;
pub(crate) const ENC_DELTA: u8 = 3;

pub(crate) fn kind_byte(kind: ColumnKind) -> u8 {
    match kind {
        ColumnKind::Int => 0,
        ColumnKind::Date => 1,
        ColumnKind::Double => 2,
        ColumnKind::String => 3,
        ColumnKind::Category => 4,
    }
}

pub(crate) fn byte_kind(b: u8, at: usize) -> Result<ColumnKind> {
    Ok(match b {
        0 => ColumnKind::Int,
        1 => ColumnKind::Date,
        2 => ColumnKind::Double,
        3 => ColumnKind::String,
        4 => ColumnKind::Category,
        _ => {
            return Err(Error::Parse {
                format: "hvc",
                at,
                message: format!("unknown column kind byte {b}"),
            })
        }
    })
}

pub(crate) fn parse_err(message: impl Into<String>) -> Error {
    Error::Parse {
        format: "hvc",
        at: 0,
        message: message.into(),
    }
}

pub(crate) fn wire_err(e: hillview_net::Error) -> Error {
    parse_err(e.to_string())
}

/// Write an integer storage payload, preserving its encoding. `put` writes
/// one logical value (zigzag for `i64`, plain varint for codes).
fn encode_int_storage<T: PackedInt>(
    w: &mut WireWriter,
    storage: &IntStorage<T>,
    put: impl Fn(&mut WireWriter, T),
) {
    match storage {
        IntStorage::Plain(values) => {
            w.put_u8(ENC_PLAIN);
            w.put_varint(values.len() as u64);
            for &v in values.slice() {
                put(w, v);
            }
        }
        IntStorage::BitPacked {
            base,
            width,
            len,
            words,
        } => {
            w.put_u8(ENC_BIT_PACKED);
            w.put_varint(*len as u64);
            put(w, *base);
            w.put_u8(*width);
            w.put_varint(words.len() as u64);
            for &word in words.slice() {
                w.put_u64(word);
            }
        }
        IntStorage::RunLength { values, ends } => {
            w.put_u8(ENC_RUN_LENGTH);
            w.put_varint(ends.last().copied().unwrap_or(0) as u64);
            w.put_varint(values.len() as u64);
            let mut prev = 0u32;
            for (&v, &end) in values.iter().zip(ends) {
                put(w, v);
                w.put_varint((end - prev) as u64);
                prev = end;
            }
        }
        IntStorage::Delta {
            anchors,
            width,
            len,
            words,
        } => {
            w.put_u8(ENC_DELTA);
            w.put_varint(*len as u64);
            w.put_varint(anchors.len() as u64);
            for &a in anchors {
                put(w, a);
            }
            w.put_u8(*width);
            w.put_varint(words.len() as u64);
            for &word in words.slice() {
                w.put_u64(word);
            }
        }
    }
}

/// Read an integer storage payload written by [`encode_int_storage`],
/// validating the declared value count against the file's row count and the
/// structural invariants of each encoding.
fn decode_int_storage<T: PackedInt>(
    r: &mut WireReader,
    rows: usize,
    column: &str,
    get: impl Fn(&mut WireReader) -> std::result::Result<T, hillview_net::Error>,
) -> Result<IntStorage<T>> {
    let enc = r.get_u8().map_err(wire_err)?;
    decode_int_storage_body(r, enc, rows, column, get)
}

/// [`decode_int_storage`] with the encoding byte already consumed (the
/// `i64` reader peels it off first to special-case delta-coded plain data).
fn decode_int_storage_body<T: PackedInt>(
    r: &mut WireReader,
    enc: u8,
    rows: usize,
    column: &str,
    get: impl Fn(&mut WireReader) -> std::result::Result<T, hillview_net::Error>,
) -> Result<IntStorage<T>> {
    let declared = r.get_len("values").map_err(wire_err)?;
    if declared != rows {
        return Err(Error::RowCountMismatch {
            column: column.to_string(),
            declared: rows,
            actual: declared,
        });
    }
    match enc {
        ENC_PLAIN => {
            let mut values = Vec::with_capacity(rows.min(1 << 20));
            for _ in 0..rows {
                values.push(get(r).map_err(wire_err)?);
            }
            Ok(IntStorage::Plain(values.into()))
        }
        ENC_BIT_PACKED => {
            let base = get(r).map_err(wire_err)?;
            let width = r.get_u8().map_err(wire_err)?;
            let nwords = r.get_len("packed words").map_err(wire_err)?;
            let mut words = Vec::with_capacity(nwords.min(1 << 20));
            for _ in 0..nwords {
                words.push(r.get_u64().map_err(wire_err)?);
            }
            IntStorage::from_bit_packed(base, width, rows, words).ok_or_else(|| {
                parse_err(format!(
                    "column {column:?}: inconsistent bit-packed section (width {width}, {nwords} words for {rows} rows)"
                ))
            })
        }
        ENC_RUN_LENGTH => {
            let nruns = r.get_len("runs").map_err(wire_err)?;
            let mut values = Vec::with_capacity(nruns.min(1 << 20));
            let mut ends = Vec::with_capacity(nruns.min(1 << 20));
            let mut at = 0u64;
            for _ in 0..nruns {
                values.push(get(r).map_err(wire_err)?);
                let run = r.get_varint().map_err(wire_err)?;
                if run == 0 {
                    return Err(parse_err(format!("column {column:?}: zero-length run")));
                }
                at += run;
                if at > u32::MAX as u64 {
                    return Err(parse_err(format!(
                        "column {column:?}: run-length section overflows row index"
                    )));
                }
                ends.push(at as u32);
            }
            if at as usize != rows {
                return Err(Error::RowCountMismatch {
                    column: column.to_string(),
                    declared: rows,
                    actual: at as usize,
                });
            }
            IntStorage::from_run_length(values, ends).ok_or_else(|| {
                parse_err(format!("column {column:?}: malformed run-length section"))
            })
        }
        ENC_DELTA => {
            let nanchors = r.get_len("delta anchors").map_err(wire_err)?;
            let mut anchors = Vec::with_capacity(nanchors.min(1 << 20));
            for _ in 0..nanchors {
                anchors.push(get(r).map_err(wire_err)?);
            }
            let width = r.get_u8().map_err(wire_err)?;
            let nwords = r.get_len("delta words").map_err(wire_err)?;
            let mut words = Vec::with_capacity(nwords.min(1 << 20));
            for _ in 0..nwords {
                words.push(r.get_u64().map_err(wire_err)?);
            }
            IntStorage::from_delta(anchors, width, rows, words).ok_or_else(|| {
                parse_err(format!(
                    "column {column:?}: inconsistent delta section (width {width}, {nanchors} anchors, {nwords} words for {rows} rows)"
                ))
            })
        }
        b => Err(parse_err(format!(
            "column {column:?}: unknown encoding byte {b}"
        ))),
    }
}

/// Encode a table to HVC bytes.
pub fn encode(table: &Table) -> Bytes {
    let mut w = WireWriter::new();
    for b in MAGIC {
        w.put_u8(*b);
    }
    w.put_varint(table.num_columns() as u64);
    w.put_varint(table.num_rows() as u64);
    for c in 0..table.num_columns() {
        let desc = table.schema().desc(c);
        w.put_str(&desc.name);
        w.put_u8(kind_byte(desc.kind));
        let col = table.column(c);
        encode_null_runs(&mut w, col, table.num_rows());
        match col {
            Column::Int(ic) | Column::Date(ic) => {
                // Plain integers stay delta-of-previous coded (the v1 trick
                // that shrinks near-sequential dates); packed storages ship
                // their words verbatim.
                match ic.storage() {
                    IntStorage::Plain(values) => {
                        w.put_u8(ENC_PLAIN);
                        w.put_varint(values.len() as u64);
                        let mut prev = 0i64;
                        for &v in values.slice() {
                            w.put_i64(v.wrapping_sub(prev));
                            prev = v;
                        }
                    }
                    packed => encode_int_storage(&mut w, packed, |w, v| w.put_i64(v)),
                }
            }
            Column::Double(fc) => {
                w.put_varint(fc.data().len() as u64);
                for &v in fc.data() {
                    w.put_f64(v);
                }
            }
            Column::Str(dc) | Column::Cat(dc) => {
                w.put_varint(dc.dictionary().len() as u64);
                for s in dc.dictionary().iter() {
                    w.put_str(s);
                }
                encode_int_storage(&mut w, dc.codes(), |w, code| w.put_varint(code as u64));
            }
        }
    }
    w.finish()
}

pub(crate) fn encode_null_runs(w: &mut WireWriter, col: &Column, rows: usize) {
    // Alternating run lengths: present, missing, present, ...
    let mut runs: Vec<u64> = Vec::new();
    let mut current_null = false;
    let mut run = 0u64;
    for i in 0..rows {
        let null = col.is_null(i);
        if null == current_null {
            run += 1;
        } else {
            runs.push(run);
            current_null = null;
            run = 1;
        }
    }
    runs.push(run);
    w.put_varint(runs.len() as u64);
    for r in runs {
        w.put_varint(r);
    }
}

pub(crate) fn decode_null_runs(r: &mut WireReader, rows: usize, column: &str) -> Result<NullMask> {
    let n = r.get_len("null runs").map_err(wire_err)?;
    let mut mask = NullMask::none();
    let mut idx = 0usize;
    let mut is_null = false;
    for _ in 0..n {
        let run = r.get_varint().map_err(wire_err)? as usize;
        if is_null {
            for i in idx..(idx + run).min(rows) {
                mask.set_null(i, rows);
            }
        }
        idx += run;
        is_null = !is_null;
    }
    if idx != rows {
        return Err(Error::RowCountMismatch {
            column: column.to_string(),
            declared: rows,
            actual: idx,
        });
    }
    Ok(mask)
}

/// Verify every decoded dictionary code stays inside the dictionary,
/// matching the per-value check v1 performed while reading plain codes.
/// `null_count` guards the empty-dictionary case: a dictionary can only be
/// empty when every row is null (present rows would dereference it).
pub(crate) fn validate_codes(
    codes: &IntStorage<u32>,
    dict_len: usize,
    null_count: usize,
    column: &str,
) -> Result<()> {
    if dict_len == 0 {
        if null_count < codes.len() {
            return Err(parse_err(format!(
                "column {column:?}: empty dictionary but {} non-null rows",
                codes.len() - null_count
            )));
        }
        return Ok(());
    }
    let check = |code: u32| -> Result<()> {
        if code as usize >= dict_len {
            Err(parse_err(format!(
                "column {column:?}: code {code} out of dictionary range {dict_len}"
            )))
        } else {
            Ok(())
        }
    };
    match codes {
        // Run-length: one check per run is exhaustive.
        IntStorage::RunLength { values, .. } => values.iter().try_for_each(|&c| check(c)),
        storage => {
            let mut buf = [0u32; 64];
            let len = storage.len();
            let mut i = 0usize;
            while i < len {
                let n = 64.min(len - i);
                storage.decode_into(i, &mut buf[..n]);
                buf[..n].iter().try_for_each(|&c| check(c))?;
                i += n;
            }
            Ok(())
        }
    }
}

/// Decode a table from HVC bytes.
pub fn decode(bytes: Bytes) -> Result<Table> {
    let mut r = WireReader::new(bytes);
    for expect in MAGIC {
        let b = r.get_u8().map_err(wire_err)?;
        if b != *expect {
            return Err(parse_err("bad magic"));
        }
    }
    let cols = r.get_len("columns").map_err(wire_err)?;
    let rows = r.get_len("rows").map_err(wire_err)?;
    let mut builder = Table::builder();
    for _ in 0..cols {
        let name = r.get_str().map_err(wire_err)?;
        let kind = byte_kind(r.get_u8().map_err(wire_err)?, 0)?;
        let nulls = decode_null_runs(&mut r, rows, &name)?;
        let column = match kind {
            ColumnKind::Int | ColumnKind::Date => {
                let storage = decode_i64_storage(&mut r, rows, &name)?;
                let ic = I64Column::with_storage(storage, nulls);
                if kind == ColumnKind::Int {
                    Column::Int(ic)
                } else {
                    Column::Date(ic)
                }
            }
            ColumnKind::Double => {
                let declared = r.get_len("values").map_err(wire_err)?;
                if declared != rows {
                    return Err(Error::RowCountMismatch {
                        column: name.clone(),
                        declared: rows,
                        actual: declared,
                    });
                }
                let mut data = Vec::with_capacity(rows.min(1 << 20));
                for _ in 0..rows {
                    data.push(r.get_f64().map_err(wire_err)?);
                }
                Column::Double(F64Column::new(data, nulls))
            }
            ColumnKind::String | ColumnKind::Category => {
                let dict_len = r.get_len("dict").map_err(wire_err)?;
                let mut db = DictionaryBuilder::new();
                for _ in 0..dict_len {
                    db.intern(&r.get_str().map_err(wire_err)?);
                }
                let dict = std::sync::Arc::new(db.finish());
                let codes = decode_int_storage(&mut r, rows, &name, |r| {
                    let v = r.get_varint()?;
                    // Reject oversized varints instead of silently wrapping
                    // into a (possibly valid) smaller code.
                    u32::try_from(v).map_err(|_| hillview_net::Error::BadLength {
                        context: "dictionary code",
                        len: v,
                    })
                })?;
                validate_codes(&codes, dict_len, nulls.null_count(), &name)?;
                let dc = DictColumn::with_storage(codes, dict, nulls);
                if kind == ColumnKind::String {
                    Column::Str(dc)
                } else {
                    Column::Cat(dc)
                }
            }
        };
        builder = builder.column(&name, kind, column);
    }
    Ok(builder.build()?)
}

/// Decode an `i64` payload: plain sections undo the delta-of-previous
/// transform, packed sections go through the shared reader.
fn decode_i64_storage(r: &mut WireReader, rows: usize, column: &str) -> Result<IntStorage<i64>> {
    // Read the encoding byte first: plain i64 needs the delta transform,
    // which the generic reader does not apply.
    let enc = r.get_u8().map_err(wire_err)?;
    if enc == ENC_PLAIN {
        let declared = r.get_len("values").map_err(wire_err)?;
        if declared != rows {
            return Err(Error::RowCountMismatch {
                column: column.to_string(),
                declared: rows,
                actual: declared,
            });
        }
        let mut data = Vec::with_capacity(rows.min(1 << 20));
        let mut prev = 0i64;
        for _ in 0..rows {
            prev = prev.wrapping_add(r.get_i64().map_err(wire_err)?);
            data.push(prev);
        }
        Ok(IntStorage::Plain(data.into()))
    } else {
        decode_int_storage_body(r, enc, rows, column, |r| r.get_i64())
    }
}

/// Write a table to a file, in the current on-disk version (v3: 64-byte
/// aligned raw-LE payload sections behind a self-contained header, so the
/// file can be mapped and scanned zero-copy — see [`v3`]). The v2 wire
/// format ([`encode`]/[`decode`]) is unchanged; use [`write_file_v2`] to
/// produce a v2 file for an older reader.
pub fn write_file(table: &Table, path: impl AsRef<Path>) -> Result<()> {
    let bytes = v3::encode(table);
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(&bytes)?;
    f.flush()?;
    Ok(())
}

/// Write a table in the v2 (wire) layout — varint-packed, unaligned, not
/// mappable — for interchange with readers predating v3.
pub fn write_file_v2(table: &Table, path: impl AsRef<Path>) -> Result<()> {
    let bytes = encode(table);
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(&bytes)?;
    f.flush()?;
    Ok(())
}

/// Read a table from a file into fully heap-resident columns, sniffing the
/// version from the magic (v2 and v3 both readable). For lazy, file-backed
/// columns use [`read_file_mapped`]; to inspect a file without reading its
/// payload use [`probe_file`].
pub fn read_file(path: impl AsRef<Path>) -> Result<Table> {
    let mut f = std::fs::File::open(path)?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    if buf.starts_with(v3::MAGIC3) {
        return v3::decode_owned(&buf);
    }
    decode(Bytes::from(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::encoding::EncodingKind;
    use hillview_columnar::Value;

    fn sample_table() -> Table {
        Table::builder()
            .column(
                "Id",
                ColumnKind::Int,
                Column::Int(I64Column::from_options([
                    Some(100),
                    Some(101),
                    None,
                    Some(103),
                ])),
            )
            .column(
                "When",
                ColumnKind::Date,
                Column::Date(I64Column::from_options([
                    Some(1_700_000_000_000),
                    Some(1_700_000_000_100),
                    Some(1_700_000_000_200),
                    Some(1_700_000_000_300),
                ])),
            )
            .column(
                "Score",
                ColumnKind::Double,
                Column::Double(F64Column::from_options([
                    Some(1.5),
                    None,
                    Some(-2.25),
                    Some(0.0),
                ])),
            )
            .column(
                "Tag",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings([
                    Some("red"),
                    Some("blue"),
                    Some("red"),
                    None,
                ])),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample_table();
        let t2 = decode(encode(&t)).unwrap();
        assert_eq!(t2.num_rows(), t.num_rows());
        assert_eq!(t2.num_columns(), t.num_columns());
        for r in 0..t.num_rows() {
            assert_eq!(t2.full_row(r), t.full_row(r), "row {r}");
        }
        for c in 0..t.num_columns() {
            assert_eq!(
                t2.schema().desc(c).kind,
                t.schema().desc(c).kind,
                "kind of col {c}"
            );
        }
    }

    #[test]
    fn round_trip_preserves_encoding_without_inflating() {
        // Build columns under each forced in-memory encoding and check the
        // decoded table carries the identical variant.
        let sorted: Vec<i64> = (0..4000).map(|i| i / 100).collect();
        let packed: Vec<i64> = (0..4000).map(|i| (i * 7919) % 512).collect();
        let plain: Vec<i64> = (0..4000)
            .map(|i: i64| i.wrapping_mul(0x5851_F42D_4C95_7F2D))
            .collect();
        let sequential: Vec<i64> = (0..4000).map(|i| 1_000_000 + i * 3).collect();
        let t = Table::builder()
            .column(
                "RL",
                ColumnKind::Int,
                Column::Int(I64Column::new(sorted, NullMask::none())),
            )
            .column(
                "BP",
                ColumnKind::Int,
                Column::Int(I64Column::new(packed, NullMask::none())),
            )
            .column(
                "PL",
                ColumnKind::Int,
                Column::Int(I64Column::plain(plain, NullMask::none())),
            )
            .column(
                "DL",
                ColumnKind::Int,
                Column::Int(I64Column::new(sequential, NullMask::none())),
            )
            .build()
            .unwrap();
        let t2 = decode(encode(&t)).unwrap();
        for (name, kind) in [
            ("RL", EncodingKind::RunLength),
            ("BP", EncodingKind::BitPacked),
            ("PL", EncodingKind::Plain),
            ("DL", EncodingKind::Delta),
        ] {
            let c = t.column_by_name(name).unwrap().as_i64_col().unwrap();
            let c2 = t2.column_by_name(name).unwrap().as_i64_col().unwrap();
            assert_eq!(c.storage().kind(), kind, "in-memory {name}");
            assert_eq!(c2.storage().kind(), kind, "decoded {name}");
            assert_eq!(c2.storage(), c.storage(), "identical storage {name}");
        }
    }

    #[test]
    fn packed_columns_shrink_the_file() {
        let n = 100_000usize;
        let t = Table::builder()
            .column(
                "Bucketed",
                ColumnKind::Int,
                Column::Int(I64Column::new(
                    (0..n as i64).map(|i| i / 50).collect(),
                    NullMask::none(),
                )),
            )
            .build()
            .unwrap();
        let bytes = encode(&t);
        assert!(
            bytes.len() < n, // < 1 byte/row; plain would be several
            "{} bytes for {} run-length rows",
            bytes.len(),
            n
        );
    }

    #[test]
    fn delta_encoding_compresses_sorted_ints() {
        // Dates are near-sequential: whatever encoding ingest picks must
        // still beat 3 bytes/value on disk.
        let n = 10_000usize;
        let t = Table::builder()
            .column(
                "When",
                ColumnKind::Date,
                Column::Date(I64Column::from_options(
                    (0..n).map(|i| Some(1_700_000_000_000 + (i as i64) * 250)),
                )),
            )
            .build()
            .unwrap();
        let bytes = encode(&t);
        assert!(
            bytes.len() < n * 3,
            "{} bytes for {} near-sequential dates",
            bytes.len(),
            n
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("hillview-hvc-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.hvc");
        let t = sample_table();
        write_file(&t, &path).unwrap();
        let t2 = read_file(&path).unwrap();
        assert_eq!(t2.get(0, "Tag").unwrap(), Value::str("red"));
        assert_eq!(t2.get(2, "Id").unwrap(), Value::Missing);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(decode(Bytes::from_static(b"NOPE")).is_err());
        let good = encode(&sample_table());
        let truncated = good.slice(0..good.len() / 2);
        assert!(decode(truncated).is_err());
        // Flip a code into out-of-range territory: corrupt tail bytes.
        let mut corrupt = good.to_vec();
        let len = corrupt.len();
        corrupt[len - 1] = 0xFF;
        // Either a parse error or trailing-bytes style failure — must not
        // panic or succeed silently.
        let r = decode(Bytes::from(corrupt));
        assert!(r.is_err() || r.is_ok()); // no panic is the contract
    }

    /// Helper building a single-int-column file whose payload we then
    /// corrupt at specific positions.
    fn packed_int_file(values: Vec<i64>) -> Vec<u8> {
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Int,
                Column::Int(I64Column::new(values, NullMask::none())),
            )
            .build()
            .unwrap();
        encode(&t).to_vec()
    }

    #[test]
    fn declared_row_count_mismatch_is_structured() {
        // 200 sorted low-cardinality rows → run-length payload. Lie about
        // the table's row count (byte right after the 4-byte magic + column
        // count varint): 200 fits one varint byte.
        let mut bytes = packed_int_file((0..200).map(|i| i / 20).collect());
        // Layout: magic(4) | cols=1 (1 byte) | rows=200 (2-byte varint)...
        // Patch rows to 199 (also 2 bytes: 0xC7 0x01).
        assert_eq!(&bytes[5..7], &[0xC8, 0x01], "expected varint 200");
        bytes[5] = 0xC7;
        let err = decode(Bytes::from(bytes)).unwrap_err();
        assert!(
            matches!(
                err,
                Error::RowCountMismatch {
                    declared: 199,
                    actual: 200,
                    ..
                }
            ),
            "got {err}"
        );
    }

    #[test]
    fn corrupt_packed_sections_rejected() {
        // Bit-packed column: truncating the word stream must error, not
        // panic or fabricate rows.
        let bp = packed_int_file((0..1000).map(|i| (i * 37) % 256).collect());
        for cut in [bp.len() - 1, bp.len() - 9, bp.len() / 2] {
            assert!(
                decode(Bytes::copy_from_slice(&bp[..cut])).is_err(),
                "truncation at {cut} accepted"
            );
        }
        // Run-length column: zero-length and over-long runs must error.
        let rl = packed_int_file((0..1000).map(|i| i / 100).collect());
        let decoded = decode(Bytes::copy_from_slice(&rl)).unwrap();
        assert_eq!(decoded.num_rows(), 1000);
        let mut broken = rl.clone();
        // The last run length varint is the final byte (100 = 0x64).
        let last = broken.len() - 1;
        assert_eq!(broken[last], 100);
        broken[last] = 0; // zero-length run
        assert!(decode(Bytes::from(broken)).is_err());
        let mut short = rl.clone();
        let last = short.len() - 1;
        short[last] = 99; // runs now sum to 999 ≠ 1000
        let err = decode(Bytes::from(short)).unwrap_err();
        assert!(
            matches!(err, Error::RowCountMismatch { actual: 999, .. }),
            "got {err}"
        );
    }

    #[test]
    fn corrupt_packed_codes_stay_in_dictionary() {
        // Five categories over many rows → bit-packed codes of width 3,
        // whose packed words are the last bytes of the file. Setting them
        // to all-ones decodes codes 7 > dictionary length 5; the decoder
        // must reject, never index out of bounds.
        let cats = ["a", "b", "c", "d", "e"];
        let t = Table::builder()
            .column(
                "Tag",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings(
                    (0..640).map(|i| Some(cats[i % 5])),
                )),
            )
            .build()
            .unwrap();
        let col = t.column_by_name("Tag").unwrap().as_dict_col().unwrap();
        assert_eq!(col.codes().kind(), EncodingKind::BitPacked);
        let mut bytes = encode(&t).to_vec();
        let n = bytes.len();
        assert!(decode(Bytes::copy_from_slice(&bytes)).is_ok());
        for b in &mut bytes[n - 8..] {
            *b = 0xFF;
        }
        let err = decode(Bytes::from(bytes)).unwrap_err();
        assert!(
            err.to_string().contains("out of dictionary range"),
            "got {err}"
        );
    }

    #[test]
    fn corrupt_delta_sections_rejected() {
        // A delta-coded column (sequential values): truncating the word
        // stream or the anchors must error, never panic or fabricate rows.
        let dl = packed_int_file((0..1000).map(|i| 5_000_000 + i * 7).collect());
        let t = decode(Bytes::copy_from_slice(&dl)).unwrap();
        assert_eq!(
            t.column_by_name("X")
                .unwrap()
                .as_i64_col()
                .unwrap()
                .storage()
                .kind(),
            EncodingKind::Delta
        );
        for cut in [dl.len() - 1, dl.len() - 9, dl.len() / 2, 12] {
            assert!(
                decode(Bytes::copy_from_slice(&dl[..cut])).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn empty_dictionary_with_present_rows_rejected() {
        // Hand-craft a file whose Str column declares both rows present but
        // ships an empty dictionary: decoding must reject it up front, not
        // panic later when a row dereferences the missing entry.
        let mut w = hillview_net::WireWriter::new();
        for b in MAGIC {
            w.put_u8(*b);
        }
        w.put_varint(1); // columns
        w.put_varint(2); // rows
        w.put_str("S");
        w.put_u8(kind_byte(ColumnKind::String));
        w.put_varint(1); // one null run...
        w.put_varint(2); // ...of 2 present rows
        w.put_varint(0); // dict_len = 0
        w.put_u8(ENC_PLAIN);
        w.put_varint(2); // declared codes
        w.put_varint(0);
        w.put_varint(0);
        let err = decode(w.finish()).unwrap_err();
        assert!(err.to_string().contains("empty dictionary"), "got {err}");
        // The legitimate shape — all rows null — still decodes.
        let t = Table::builder()
            .column(
                "S",
                ColumnKind::String,
                Column::Str(DictColumn::from_strings([None::<&str>, None])),
            )
            .build()
            .unwrap();
        let t2 = decode(encode(&t)).unwrap();
        assert!(t2.column(0).is_null(0) && t2.column(0).is_null(1));
    }

    #[test]
    fn oversized_code_varints_rejected() {
        // A plain code varint above u32::MAX must error instead of silently
        // wrapping into a small (possibly in-range) code.
        let mut w = hillview_net::WireWriter::new();
        for b in MAGIC {
            w.put_u8(*b);
        }
        w.put_varint(1); // columns
        w.put_varint(1); // rows
        w.put_str("S");
        w.put_u8(kind_byte(ColumnKind::String));
        w.put_varint(1); // one null run...
        w.put_varint(1); // ...of 1 present row
        w.put_varint(1); // dict_len = 1
        w.put_str("a");
        w.put_u8(ENC_PLAIN);
        w.put_varint(1); // declared codes
        w.put_varint(1u64 << 32); // truncates to code 0 if unchecked
        let err = decode(w.finish()).unwrap_err();
        assert!(err.to_string().contains("dictionary code"), "got {err}");
    }

    #[test]
    fn empty_table_round_trips() {
        let t = Table::empty();
        let t2 = decode(encode(&t)).unwrap();
        assert_eq!(t2.num_rows(), 0);
        assert_eq!(t2.num_columns(), 0);
    }

    #[test]
    fn all_null_column() {
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Double,
                Column::Double(F64Column::from_options([None, None, None])),
            )
            .build()
            .unwrap();
        let t2 = decode(encode(&t)).unwrap();
        assert!(t2.column(0).is_null(0) && t2.column(0).is_null(2));
    }
}
