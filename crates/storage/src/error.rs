//! Storage-layer errors.

use std::fmt;

/// Errors from readers, writers, and partitioning.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed input at a given line/offset.
    Parse {
        /// Format being parsed ("csv", "jsonl", "hvc").
        format: &'static str,
        /// 1-based line (text formats) or byte offset (binary).
        at: usize,
        /// What went wrong.
        message: String,
    },
    /// Columnar-layer error while assembling tables.
    Column(hillview_columnar::Error),
    /// A schema mismatch between file and expectation.
    Schema(String),
    /// A column section's decoded length disagrees with the file's declared
    /// row count. Structured (rather than a generic parse error) so callers
    /// can reject corrupt files before any data reaches the wire.
    RowCountMismatch {
        /// Column whose payload disagrees.
        column: String,
        /// Row count the file header declares.
        declared: usize,
        /// Rows the column section actually encodes.
        actual: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Parse {
                format,
                at,
                message,
            } => write!(f, "{format} parse error at {at}: {message}"),
            Error::Column(e) => write!(f, "column error: {e}"),
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::RowCountMismatch {
                column,
                declared,
                actual,
            } => write!(
                f,
                "column {column:?} encodes {actual} rows but the file declares {declared}"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Column(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<hillview_columnar::Error> for Error {
    fn from(e: hillview_columnar::Error) -> Self {
        Error::Column(e)
    }
}

/// Result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = Error::Parse {
            format: "csv",
            at: 42,
            message: "unterminated quote".into(),
        };
        let s = e.to_string();
        assert!(s.contains("csv") && s.contains("42") && s.contains("quote"));
    }
}
