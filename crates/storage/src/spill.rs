//! Spilling ingest: seal micropartitions to disk as they fill.
//!
//! The paper's workers hold datasets in memory (§5.4), but out-of-core
//! datasets cannot be *ingested* through memory either: reading a whole
//! source table just to write it back out makes ingest O(dataset). The
//! [`SpillingWriter`] keeps ingest O(micropartition): rows are buffered
//! only until the current micropartition reaches its row bound, then the
//! sealed partition is written as an `hvc` v3 file — mappable, zone-mapped,
//! 64-byte aligned — and its memory is released. The resulting directory
//! of `part-NNNNN.hvc` files is exactly what the out-of-core loader
//! ([`crate::hvc::read_file_mapped`] per part) consumes, and
//! [`crate::hvc::probe_file`] plans over it without reading payloads.
//!
//! [`spill_csv`] drives the same writer from a CSV stream with a declared
//! schema, so text ingest never materializes more than one micropartition
//! of cells at a time.

use crate::csv::{column_from_strings, parse_record, CsvOptions};
use crate::error::{Error, Result};
use crate::hvc;
use crate::partition::concat_tables;
use hillview_columnar::{Schema, Table};
use std::io::BufRead;
use std::path::{Path, PathBuf};

/// One sealed micropartition on disk.
#[derive(Debug, Clone)]
pub struct SpilledPart {
    /// The `hvc` v3 file holding this micropartition.
    pub path: PathBuf,
    /// Rows it contains.
    pub rows: usize,
}

/// Everything a loader needs to know about a spilled dataset.
#[derive(Debug, Clone)]
pub struct SpillManifest {
    /// Directory the parts were written into.
    pub dir: PathBuf,
    /// The sealed micropartitions, in row order.
    pub parts: Vec<SpilledPart>,
}

impl SpillManifest {
    /// Total rows across all parts.
    pub fn total_rows(&self) -> usize {
        self.parts.iter().map(|p| p.rows).sum()
    }

    /// The part file paths, in row order.
    pub fn paths(&self) -> impl Iterator<Item = &Path> {
        self.parts.iter().map(|p| p.path.as_path())
    }
}

/// Streams tables (or row batches) into a directory of sealed
/// micropartition files, holding at most one micropartition's rows in
/// memory at a time.
pub struct SpillingWriter {
    dir: PathBuf,
    rows_per_part: usize,
    pending: Vec<Table>,
    pending_rows: usize,
    parts: Vec<SpilledPart>,
}

impl SpillingWriter {
    /// Create a writer spilling into `dir` (created if absent), sealing a
    /// micropartition every `rows_per_part` rows.
    pub fn new(dir: impl AsRef<Path>, rows_per_part: usize) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(SpillingWriter {
            dir,
            rows_per_part: rows_per_part.max(1),
            pending: Vec::new(),
            pending_rows: 0,
            parts: Vec::new(),
        })
    }

    /// Append a batch of rows. Any micropartition that fills inside the
    /// batch is sealed to disk immediately and its memory dropped.
    pub fn push(&mut self, table: &Table) -> Result<()> {
        if table.num_rows() == 0 || table.num_columns() == 0 {
            return Ok(());
        }
        let n = table.num_rows();
        let mut start = 0usize;
        while start < n {
            let take = (self.rows_per_part - self.pending_rows).min(n - start);
            self.pending
                .push(crate::partition::slice_table(table, start, start + take));
            self.pending_rows += take;
            start += take;
            if self.pending_rows == self.rows_per_part {
                self.seal()?;
            }
        }
        Ok(())
    }

    /// Micropartitions sealed so far.
    pub fn sealed_parts(&self) -> usize {
        self.parts.len()
    }

    /// Rows currently buffered (always `< rows_per_part` after a `push`).
    pub fn buffered_rows(&self) -> usize {
        self.pending_rows
    }

    fn seal(&mut self) -> Result<()> {
        if self.pending_rows == 0 {
            return Ok(());
        }
        let table = if self.pending.len() == 1 {
            self.pending.pop().expect("one pending")
        } else {
            concat_tables(&std::mem::take(&mut self.pending))?
        };
        self.pending.clear();
        self.pending_rows = 0;
        let path = self.dir.join(format!("part-{:05}.hvc", self.parts.len()));
        hvc::write_file(&table, &path)?;
        self.parts.push(SpilledPart {
            path,
            rows: table.num_rows(),
        });
        Ok(())
    }

    /// Seal any buffered remainder and return the manifest.
    pub fn finish(mut self) -> Result<SpillManifest> {
        self.seal()?;
        Ok(SpillManifest {
            dir: self.dir,
            parts: self.parts,
        })
    }
}

/// Stream a CSV source with a declared `schema` straight into spilled
/// micropartitions: at most `rows_per_part` rows of cells are ever held in
/// memory. The header row (when present) must match the schema's column
/// names in order.
pub fn spill_csv(
    reader: impl BufRead,
    options: &CsvOptions,
    schema: &Schema,
    rows_per_part: usize,
    dir: impl AsRef<Path>,
) -> Result<SpillManifest> {
    let rows_per_part = rows_per_part.max(1);
    let mut writer = SpillingWriter::new(dir, rows_per_part)?;
    let mut lines = reader.lines();
    let mut line_no = 0usize;
    if options.has_header {
        if let Some(line) = lines.next() {
            line_no += 1;
            let header = parse_record(line?, &mut lines, options.delimiter, line_no)?;
            let names: Vec<&str> = schema.descs().iter().map(|d| d.name.as_ref()).collect();
            if header != names {
                return Err(Error::Schema(format!(
                    "CSV header {header:?} does not match declared schema {names:?}"
                )));
            }
        }
    }
    let ncols = schema.len();
    let mut cells: Vec<Vec<Option<String>>> = (0..ncols).map(|_| Vec::new()).collect();
    let mut buffered = 0usize;
    let flush = |cells: &mut Vec<Vec<Option<String>>>, writer: &mut SpillingWriter| {
        let mut builder = Table::builder();
        for (desc, col) in schema.descs().iter().zip(cells.iter()) {
            let column = column_from_strings(desc.kind, col);
            builder = builder.column(&desc.name, desc.kind, column);
        }
        for col in cells.iter_mut() {
            col.clear();
        }
        writer.push(&builder.build()?)
    };
    while let Some(line) = lines.next() {
        line_no += 1;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let record = parse_record(line, &mut lines, options.delimiter, line_no)?;
        if record.len() != ncols {
            return Err(Error::Parse {
                format: "csv",
                at: line_no,
                message: format!("expected {ncols} fields, found {}", record.len()),
            });
        }
        for (col, value) in cells.iter_mut().zip(record) {
            col.push(if value.is_empty() { None } else { Some(value) });
        }
        buffered += 1;
        if buffered == rows_per_part {
            flush(&mut cells, &mut writer)?;
            buffered = 0;
        }
    }
    if buffered > 0 {
        flush(&mut cells, &mut writer)?;
    }
    writer.finish()
}

/// List the `hvc` part files of a spill directory in name (row) order —
/// the loader-side counterpart of the writer's `part-NNNNN.hvc` naming.
pub fn list_parts(dir: impl AsRef<Path>) -> Result<Vec<PathBuf>> {
    let mut parts: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "hvc"))
        .collect();
    parts.sort();
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, DictColumn, F64Column, I64Column};
    use hillview_columnar::{ColumnKind, Table};

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hvc-spill-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn rows(n: usize, base: usize) -> Table {
        Table::builder()
            .column(
                "id",
                ColumnKind::Int,
                Column::Int(I64Column::from_options(
                    (0..n).map(|i| Some((base + i) as i64)),
                )),
            )
            .column(
                "v",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(
                    (0..n).map(|i| Some((base + i) as f64 * 0.5)),
                )),
            )
            .column(
                "tag",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings(
                    (0..n).map(|i| Some(["x", "y", "z"][(base + i) % 3])),
                )),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn spills_sealed_parts_and_reassembles_exactly() {
        let d = dir("basic");
        let mut w = SpillingWriter::new(&d, 100).unwrap();
        // Push in ragged batches that straddle partition boundaries.
        let mut base = 0usize;
        for n in [37, 250, 1, 99, 63] {
            w.push(&rows(n, base)).unwrap();
            base += n;
        }
        assert_eq!(w.sealed_parts(), 4, "450 rows → 4 sealed parts");
        assert_eq!(w.buffered_rows(), 50);
        let m = w.finish().unwrap();
        assert_eq!(m.parts.len(), 5);
        assert_eq!(m.total_rows(), 450);
        assert!(m.parts[..4].iter().all(|p| p.rows == 100));
        assert_eq!(m.parts[4].rows, 50);
        // Read every part back and reassemble: identical to the source.
        let read: Vec<Table> = m.paths().map(|p| hvc::read_file(p).unwrap()).collect();
        let whole = concat_tables(&read).unwrap();
        let source = rows(450, 0);
        for r in 0..450 {
            assert_eq!(whole.full_row(r), source.full_row(r), "row {r}");
        }
    }

    #[test]
    fn parts_are_v3_and_probe_without_payload() {
        let d = dir("v3");
        let mut w = SpillingWriter::new(&d, 64).unwrap();
        w.push(&rows(200, 0)).unwrap();
        let m = w.finish().unwrap();
        for p in m.paths() {
            let info = hvc::probe_file(p).unwrap();
            assert_eq!(info.version, 3);
            assert!(info.schema.is_some());
        }
        assert_eq!(list_parts(&d).unwrap().len(), m.parts.len());
    }

    #[test]
    fn spill_csv_streams_micropartitions() {
        let d = dir("csv");
        let mut csv = String::from("id,v,tag\n");
        for i in 0..333 {
            csv.push_str(&format!("{i},{}.5,{}\n", i, ["x", "y", "z"][i % 3]));
        }
        let schema = rows(1, 0).schema().clone();
        let m = spill_csv(csv.as_bytes(), &CsvOptions::default(), &schema, 100, &d).unwrap();
        assert_eq!(m.parts.len(), 4);
        assert_eq!(m.total_rows(), 333);
        let first = hvc::read_file(&m.parts[0].path).unwrap();
        assert_eq!(first.num_rows(), 100);
        assert_eq!(first.schema().descs(), schema.descs());
        assert_eq!(
            first.get(7, "tag").unwrap(),
            hillview_columnar::Value::str("y")
        );
    }

    #[test]
    fn spill_csv_rejects_header_mismatch() {
        let d = dir("hdr");
        let schema = rows(1, 0).schema().clone();
        let err = spill_csv(
            "wrong,names,here\n1,2.0,x\n".as_bytes(),
            &CsvOptions::default(),
            &schema,
            10,
            &d,
        )
        .unwrap_err();
        assert!(matches!(err, Error::Schema(_)), "got {err}");
    }

    #[test]
    fn concat_rejects_schema_mismatch() {
        let a = rows(3, 0);
        let b = Table::builder()
            .column(
                "other",
                ColumnKind::Int,
                Column::Int(I64Column::from_options([Some(1)])),
            )
            .build()
            .unwrap();
        assert!(matches!(concat_tables(&[a, b]), Err(Error::Schema(_))));
    }
}
