//! JSON-lines reader: one JSON object per line.
//!
//! Hillview reads "JSON files" among its storage formats (paper §2). This
//! module contains a small self-contained JSON value parser (objects,
//! arrays, strings with escapes, numbers, booleans, null) and a reader that
//! assembles flat objects into a columnar [`Table`] with type inference.

use crate::error::{Error, Result};
use hillview_columnar::column::{Column, DictColumn, F64Column, I64Column};
use hillview_columnar::Table;
use std::collections::BTreeMap;
use std::io::BufRead;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Integral number.
    Int(i64),
    /// Non-integral number.
    Double(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object (sorted keys).
    Object(BTreeMap<String, Json>),
}

/// Parse one JSON document from a string.
pub fn parse_json(input: &str) -> std::result::Result<Json, String> {
    let chars: Vec<char> = input.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing characters at {pos}"));
    }
    Ok(v)
}

fn skip_ws(c: &[char], pos: &mut usize) {
    while *pos < c.len() && c[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn parse_value(c: &[char], pos: &mut usize) -> std::result::Result<Json, String> {
    skip_ws(c, pos);
    match c.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some('{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(c, pos);
            if c.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            loop {
                skip_ws(c, pos);
                let key = match parse_value(c, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be string, got {other:?}")),
                };
                skip_ws(c, pos);
                if c.get(*pos) != Some(&':') {
                    return Err(format!("expected ':' at {pos}"));
                }
                *pos += 1;
                let val = parse_value(c, pos)?;
                map.insert(key, val);
                skip_ws(c, pos);
                match c.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Object(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at {pos}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(c, pos);
            if c.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Array(arr));
            }
            loop {
                arr.push(parse_value(c, pos)?);
                skip_ws(c, pos);
                match c.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Array(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at {pos}")),
                }
            }
        }
        Some('"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match c.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some('"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some('\\') => {
                        *pos += 1;
                        match c.get(*pos) {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('/') => s.push('/'),
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('r') => s.push('\r'),
                            Some('b') => s.push('\u{8}'),
                            Some('f') => s.push('\u{c}'),
                            Some('u') => {
                                let hex: String = c
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("bad \\u escape")?
                                    .iter()
                                    .collect();
                                let code = u32::from_str_radix(&hex, 16)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(ch) => {
                        s.push(*ch);
                        *pos += 1;
                    }
                }
            }
        }
        Some('t') => expect_lit(c, pos, "true", Json::Bool(true)),
        Some('f') => expect_lit(c, pos, "false", Json::Bool(false)),
        Some('n') => expect_lit(c, pos, "null", Json::Null),
        Some(_) => {
            let start = *pos;
            while *pos < c.len() && matches!(c[*pos], '0'..='9' | '-' | '+' | '.' | 'e' | 'E') {
                *pos += 1;
            }
            let text: String = c[start..*pos].iter().collect();
            if let Ok(i) = text.parse::<i64>() {
                Ok(Json::Int(i))
            } else if let Ok(f) = text.parse::<f64>() {
                Ok(Json::Double(f))
            } else {
                Err(format!("invalid number {text:?} at {start}"))
            }
        }
    }
}

fn expect_lit(
    c: &[char],
    pos: &mut usize,
    lit: &str,
    value: Json,
) -> std::result::Result<Json, String> {
    let end = *pos + lit.len();
    if c.len() >= end && c[*pos..end].iter().collect::<String>() == lit {
        *pos = end;
        Ok(value)
    } else {
        Err(format!("invalid literal at {pos}"))
    }
}

/// Read a JSON-lines stream into a [`Table`]. Columns are the union of all
/// object keys; nested values are stored as their JSON text.
pub fn read_jsonl(reader: impl BufRead) -> Result<Table> {
    let mut columns: BTreeMap<String, Vec<Option<Json>>> = BTreeMap::new();
    let mut rows = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let obj = parse_json(&line).map_err(|m| Error::Parse {
            format: "jsonl",
            at: idx + 1,
            message: m,
        })?;
        let map = match obj {
            Json::Object(m) => m,
            other => {
                return Err(Error::Parse {
                    format: "jsonl",
                    at: idx + 1,
                    message: format!("expected object per line, got {other:?}"),
                })
            }
        };
        // Backfill new columns and append this row.
        for (k, v) in map {
            columns
                .entry(k)
                .or_insert_with(|| vec![None; rows])
                .push(Some(v));
        }
        rows += 1;
        for col in columns.values_mut() {
            if col.len() < rows {
                col.push(None);
            }
        }
    }

    let mut builder = Table::builder();
    for (name, vals) in &columns {
        let all_int = vals.iter().flatten().all(|v| matches!(v, Json::Int(_)));
        let all_num = vals
            .iter()
            .flatten()
            .all(|v| matches!(v, Json::Int(_) | Json::Double(_)));
        let column = if all_int {
            Column::Int(I64Column::from_options(vals.iter().map(|v| match v {
                Some(Json::Int(i)) => Some(*i),
                _ => None,
            })))
        } else if all_num {
            Column::Double(F64Column::from_options(vals.iter().map(|v| match v {
                Some(Json::Int(i)) => Some(*i as f64),
                Some(Json::Double(f)) => Some(*f),
                _ => None,
            })))
        } else {
            let strs: Vec<Option<String>> = vals
                .iter()
                .map(|v| {
                    v.as_ref().and_then(|j| match j {
                        Json::Null => None,
                        Json::Str(s) => Some(s.clone()),
                        Json::Bool(b) => Some(b.to_string()),
                        Json::Int(i) => Some(i.to_string()),
                        Json::Double(f) => Some(f.to_string()),
                        other => Some(format!("{other:?}")),
                    })
                })
                .collect();
            Column::Str(DictColumn::from_strings(strs.iter().map(|s| s.as_deref())))
        };
        builder = builder.column(name, column.kind(), column);
    }
    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::{ColumnKind, Value};
    use std::io::Cursor;

    #[test]
    fn parse_scalars() {
        assert_eq!(parse_json("42").unwrap(), Json::Int(42));
        assert_eq!(parse_json("-3.5").unwrap(), Json::Double(-3.5));
        assert_eq!(parse_json("true").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parse_nested() {
        let v = parse_json(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        match v {
            Json::Object(m) => {
                assert!(matches!(m["a"], Json::Array(_)));
                assert_eq!(m["c"], Json::Str("x".into()));
            }
            _ => panic!("expected object"),
        }
    }

    #[test]
    fn parse_escapes() {
        assert_eq!(
            parse_json(r#""a\"b\nA""#).unwrap(),
            Json::Str("a\"b\nA".into())
        );
    }

    #[test]
    fn parse_errors() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("12abc").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("1 2").is_err(), "trailing data");
    }

    #[test]
    fn read_lines_to_table() {
        let data = r#"{"server": "gandalf", "latency": 3.5, "code": 200}
{"server": "frodo", "latency": 1.25, "code": 404}
"#;
        let t = read_jsonl(Cursor::new(data)).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.schema().kind_of("code").unwrap(), ColumnKind::Int);
        assert_eq!(t.schema().kind_of("latency").unwrap(), ColumnKind::Double);
        assert_eq!(t.get(1, "server").unwrap(), Value::str("frodo"));
    }

    #[test]
    fn ragged_objects_fill_missing() {
        let data = "{\"a\": 1}\n{\"b\": 2}\n{\"a\": 3, \"b\": 4}\n";
        let t = read_jsonl(Cursor::new(data)).unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.get(0, "b").unwrap(), Value::Missing);
        assert_eq!(t.get(1, "a").unwrap(), Value::Missing);
        assert_eq!(t.get(2, "a").unwrap(), Value::Int(3));
    }

    #[test]
    fn mixed_int_double_promotes() {
        let data = "{\"x\": 1}\n{\"x\": 2.5}\n";
        let t = read_jsonl(Cursor::new(data)).unwrap();
        assert_eq!(t.schema().kind_of("x").unwrap(), ColumnKind::Double);
        assert_eq!(t.get(0, "x").unwrap(), Value::Double(1.0));
    }

    #[test]
    fn non_object_line_is_error() {
        assert!(matches!(
            read_jsonl(Cursor::new("[1,2]\n")),
            Err(Error::Parse { .. })
        ));
    }
}
