//! Horizontal partitioning into micropartitions.
//!
//! Paper §5.3: *"the data partition within a server is divided into
//! micropartitions of 10-20M rows, each micropartition assigned to a
//! leaf."* (Scaled down by default here — see DESIGN.md §1.) Partitioning
//! is arbitrary: Hillview makes no assumptions about which rows land where
//! (§2), which the sketch merge laws guarantee is harmless.

use crate::error::{Error, Result};
use hillview_columnar::column::{Column, DictColumn, F64Column, I64Column};
use hillview_columnar::{NullMask, Table};

/// Split `table` into chunks of at most `rows_per_partition` rows.
///
/// Copies column data (partitions are independent tables, as if read from
/// separate files); row order is preserved across the concatenation.
pub fn partition_table(table: &Table, rows_per_partition: usize) -> Vec<Table> {
    let rpp = rows_per_partition.max(1);
    let n = table.num_rows();
    if n == 0 {
        return vec![table.clone()];
    }
    let mut out = Vec::with_capacity(n.div_ceil(rpp));
    let mut start = 0usize;
    while start < n {
        let end = (start + rpp).min(n);
        out.push(slice_table(table, start, end));
        start = end;
    }
    out
}

/// Copy rows `start..end` of every column into a new table.
pub fn slice_table(table: &Table, start: usize, end: usize) -> Table {
    let mut builder = Table::builder();
    for c in 0..table.num_columns() {
        let desc = table.schema().desc(c);
        let col = table.column(c);
        let rows = start..end;
        let sliced = match col {
            Column::Int(ic) | Column::Date(ic) => {
                let data: Vec<i64> = ic.storage().decode_range(start, end);
                let mut nulls = NullMask::none();
                for (j, i) in rows.clone().enumerate() {
                    if ic.nulls().is_null(i) {
                        nulls.set_null(j, end - start);
                    }
                }
                let nc = I64Column::new(data, nulls);
                if matches!(col, Column::Int(_)) {
                    Column::Int(nc)
                } else {
                    Column::Date(nc)
                }
            }
            Column::Double(fc) => {
                let data: Vec<f64> = fc.data()[start..end].to_vec();
                let mut nulls = NullMask::none();
                for (j, i) in rows.clone().enumerate() {
                    if fc.nulls().is_null(i) {
                        nulls.set_null(j, end - start);
                    }
                }
                Column::Double(F64Column::new(data, nulls))
            }
            Column::Str(dc) | Column::Cat(dc) => {
                // Share the dictionary; slice only the codes (decoded and
                // re-encoded, so each micropartition re-analyzes its slice).
                let codes: Vec<u32> = dc.codes().decode_range(start, end);
                let mut nulls = NullMask::none();
                for (j, i) in rows.clone().enumerate() {
                    if dc.nulls().is_null(i) {
                        nulls.set_null(j, end - start);
                    }
                }
                let nc = DictColumn::new(codes, dc.dictionary().clone(), nulls);
                if matches!(col, Column::Str(_)) {
                    Column::Str(nc)
                } else {
                    Column::Cat(nc)
                }
            }
        };
        builder = builder.column(&desc.name, desc.kind, sliced);
    }
    builder.build().expect("slice preserves schema validity")
}

/// Concatenate tables with identical schemas into one, in order — the
/// inverse of [`partition_table`]. Used by the spilling ingest
/// ([`crate::spill`]) to seal buffered row batches into one micropartition
/// file, and by tests to check spilled parts reassemble exactly.
///
/// Values are materialized row-wise (dictionaries are re-interned, since
/// each part may carry its own), so the result is always fully owned.
pub fn concat_tables(parts: &[Table]) -> Result<Table> {
    let Some(first) = parts.first() else {
        return Ok(Table::empty());
    };
    for p in &parts[1..] {
        if p.schema().descs() != first.schema().descs() {
            return Err(Error::Schema(format!(
                "cannot concatenate tables with different schemas ({:?} vs {:?})",
                p.schema().descs(),
                first.schema().descs()
            )));
        }
    }
    if parts.len() == 1 {
        return Ok(first.clone());
    }
    let mut builder = Table::builder();
    for c in 0..first.num_columns() {
        let desc = first.schema().desc(c);
        let column = match first.column(c) {
            Column::Int(_) | Column::Date(_) => {
                let vals = parts.iter().flat_map(|p| {
                    let col = p.column(c).as_i64_col().expect("schema checked");
                    (0..p.num_rows()).map(move |i| col.get(i))
                });
                let ic = I64Column::from_options(vals);
                if desc.kind == hillview_columnar::ColumnKind::Int {
                    Column::Int(ic)
                } else {
                    Column::Date(ic)
                }
            }
            Column::Double(_) => {
                Column::Double(F64Column::from_options(parts.iter().flat_map(|p| {
                    let col = p.column(c).as_f64_col().expect("schema checked");
                    (0..p.num_rows()).map(move |i| col.get(i))
                })))
            }
            Column::Str(_) | Column::Cat(_) => {
                let vals: Vec<Option<std::sync::Arc<str>>> = parts
                    .iter()
                    .flat_map(|p| {
                        let col = p.column(c).as_dict_col().expect("schema checked");
                        (0..p.num_rows()).map(move |i| col.get(i).cloned())
                    })
                    .collect();
                let dc = DictColumn::from_strings(vals.iter().map(|v| v.as_deref()));
                if desc.kind == hillview_columnar::ColumnKind::String {
                    Column::Str(dc)
                } else {
                    Column::Cat(dc)
                }
            }
        };
        builder = builder.column(&desc.name, desc.kind, column);
    }
    Ok(builder.build()?)
}

/// Deal partitions round-robin to `workers` buckets (how a cluster spreads
/// shards; paper Fig. 1 "data repository" → workers).
pub fn assign_round_robin<T>(items: Vec<T>, workers: usize) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = (0..workers.max(1)).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        out[i % workers.max(1)].push(item);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::{ColumnKind, Value};

    fn table(n: usize) -> Table {
        Table::builder()
            .column(
                "X",
                ColumnKind::Int,
                Column::Int(I64Column::from_options((0..n).map(|i| {
                    if i % 7 == 3 {
                        None
                    } else {
                        Some(i as i64)
                    }
                }))),
            )
            .column(
                "S",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings(
                    (0..n).map(|i| Some(["a", "b", "c"][i % 3])),
                )),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn partitions_cover_all_rows_in_order() {
        let t = table(25);
        let parts = partition_table(&t, 10);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].num_rows(), 10);
        assert_eq!(parts[2].num_rows(), 5);
        let mut global = 0usize;
        for p in &parts {
            for r in 0..p.num_rows() {
                assert_eq!(p.full_row(r), t.full_row(global), "row {global}");
                global += 1;
            }
        }
        assert_eq!(global, 25);
    }

    #[test]
    fn nulls_survive_slicing() {
        let t = table(20);
        let parts = partition_table(&t, 6);
        // Row 3, 10, 17 are null in X; find them in their partitions.
        assert_eq!(parts[0].get(3, "X").unwrap(), Value::Missing);
        assert_eq!(parts[1].get(4, "X").unwrap(), Value::Missing); // global 10
        assert_eq!(parts[2].get(5, "X").unwrap(), Value::Missing); // global 17
    }

    #[test]
    fn dictionaries_are_shared_not_copied() {
        let t = table(30);
        let parts = partition_table(&t, 10);
        let orig = t.column_by_name("S").unwrap().as_dict_col().unwrap();
        for p in &parts {
            let pc = p.column_by_name("S").unwrap().as_dict_col().unwrap();
            assert!(std::sync::Arc::ptr_eq(pc.dictionary(), orig.dictionary()));
        }
    }

    #[test]
    fn tiny_and_oversized_partitions() {
        let t = table(5);
        assert_eq!(partition_table(&t, 100).len(), 1);
        assert_eq!(partition_table(&t, 1).len(), 5);
        let empty = Table::empty();
        assert_eq!(partition_table(&empty, 10).len(), 1);
    }

    #[test]
    fn round_robin_assignment() {
        let parts: Vec<i32> = (0..7).collect();
        let buckets = assign_round_robin(parts, 3);
        assert_eq!(buckets[0], vec![0, 3, 6]);
        assert_eq!(buckets[1], vec![1, 4]);
        assert_eq!(buckets[2], vec![2, 5]);
    }
}
