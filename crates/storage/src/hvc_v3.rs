//! HVC version 3 — the mmap-friendly layout of the columnar format.
//!
//! v2 optimizes for the wire: everything is varint-packed back to back, so
//! a reader must decode the whole stream to materialize any column. v3
//! optimizes for the *file*: all variable-length metadata moves into a
//! self-contained header, and the bulk payloads (plain values, packed
//! words, doubles) are written as raw little-endian sections aligned to 64
//! bytes, so an [`hillview_columnar::residency::Segment`] can hand out
//! zero-copy [`ValueBuf`] windows over them without any decode pass:
//!
//! ```text
//! magic "HVC3" | header_len u32 LE | header blob | pad | payload sections
//! header blob (all integers varint unless noted):
//!   column_count | row_count
//!   per column:
//!     name | kind byte | null_run_lengths (as in v2)
//!     payload descriptor:
//!       Int/Date: enc byte, declared value count, then
//!         0 (plain):      section offset
//!         1 (bit-packed): base zigzag, width u8, word count, section offset
//!         2 (run-length): run count, (value zigzag, run length) pairs inline
//!         3 (delta):      anchor count, anchors zigzag, width u8,
//!                         word count, section offset
//!       Double:   declared value count, section offset
//!       Str/Cat:  dict_len, dict strings, codes descriptor (same four
//!                 encodings, code values as plain varints)
//!     zone map: block count, per block (min, max)
//!       (zigzag varints for i64, plain varints for codes, raw LE for f64)
//! ```
//!
//! Section offsets are relative to the *payload base* — the first 64-byte
//! boundary at or after the header — and each section starts on a 64-byte
//! boundary of its own, so every `i64`/`u64`/`f64` payload is naturally
//! aligned however long the header is. Sections hold raw little-endian
//! values: v3 deliberately trades v2's delta-of-previous varint shrink on
//! plain integers for fixed-width layouts a scan can borrow in place
//! (packed encodings still compress, and their word sections map as well).
//!
//! Because the header also persists each column's zone map, a mapped open
//! ([`read_file_mapped`]) constructs every column without touching one
//! payload byte: residency is faulted in chunk-at-a-time by the scans
//! themselves, and blocks the zone maps rule out are never read at all.
//! [`probe_file`] goes one step further and reads *only* the header —
//! enough for partition planning (schema + row count) at O(header) I/O.
//!
//! Integrity: the header is validated as strictly as v2 (declared counts
//! vs. rows, run structure, encoding invariants, zone-map block counts).
//! The heap path ([`decode_owned`]) additionally validates every
//! dictionary code like v2 does; the mapped path must not (that would
//! fault in the payload laziness exists to avoid), so it bounds codes by
//! the persisted per-block zone maxima instead — O(header) — and a file
//! whose payload contradicts its zone maps surfaces as a worker-isolated
//! panic at decode time rather than a quiet out-of-bounds.
//!
//! Endianness: mapped windows reinterpret file bytes in place and are only
//! correct on little-endian targets; big-endian hosts transparently fall
//! back to the heap path, which decodes via explicit LE reads.

use crate::error::{Error, Result};
use crate::hvc::{
    self, byte_kind, decode_null_runs, encode_null_runs, kind_byte, parse_err, validate_codes,
    wire_err, ENC_BIT_PACKED, ENC_DELTA, ENC_PLAIN, ENC_RUN_LENGTH,
};
use bytes::Bytes;
use hillview_columnar::column::{Column, DictColumn, F64Column, I64Column};
use hillview_columnar::dictionary::{Dictionary, DictionaryBuilder};
use hillview_columnar::encoding::{IntStorage, PackedInt, ZoneMap};
use hillview_columnar::residency::{BlockCache, Pod, Segment, SegmentMode, ValueBuf};
use hillview_columnar::{ColumnDesc, ColumnKind, NullMask, Schema, Table, BLOCK_ROWS};
use hillview_net::{WireReader, WireWriter};
use std::io::Read;
use std::path::Path;
use std::sync::Arc;

/// v3 file magic.
pub(crate) const MAGIC3: &[u8; 4] = b"HVC3";

/// Payload section alignment: covers every lane type and leaves room for
/// cache-line-aligned SIMD loads.
const ALIGN: usize = 64;

fn align_up(n: usize) -> usize {
    n.div_ceil(ALIGN) * ALIGN
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Raw payload sections accumulated while the header is written; each is
/// placed at the next 64-byte-aligned offset relative to the payload base.
#[derive(Default)]
struct Sections {
    rel: usize,
    parts: Vec<(usize, Vec<u8>)>,
}

impl Sections {
    /// Reserve an aligned slot for `bytes`, returning its relative offset.
    fn push(&mut self, bytes: Vec<u8>) -> usize {
        let at = align_up(self.rel);
        self.rel = at + bytes.len();
        self.parts.push((at, bytes));
        at
    }
}

/// Write one integer-storage descriptor into the header, spilling bulk
/// payloads (plain values, packed words) into aligned sections. `put`
/// writes one inline logical value (zigzag for `i64`, varint for codes).
fn encode_int_storage_v3<T: PackedInt + Pod>(
    w: &mut WireWriter,
    sections: &mut Sections,
    storage: &IntStorage<T>,
    put: impl Fn(&mut WireWriter, T),
) {
    match storage {
        IntStorage::Plain(values) => {
            w.put_u8(ENC_PLAIN);
            w.put_varint(values.len() as u64);
            let mut bytes = Vec::with_capacity(values.len() * <T as Pod>::BYTES);
            for &v in values.slice() {
                v.write_le(&mut bytes);
            }
            w.put_varint(sections.push(bytes) as u64);
        }
        IntStorage::BitPacked {
            base,
            width,
            len,
            words,
        } => {
            w.put_u8(ENC_BIT_PACKED);
            w.put_varint(*len as u64);
            put(w, *base);
            w.put_u8(*width);
            w.put_varint(words.len() as u64);
            let mut bytes = Vec::with_capacity(words.len() * 8);
            for &word in words.slice() {
                word.write_le(&mut bytes);
            }
            w.put_varint(sections.push(bytes) as u64);
        }
        IntStorage::RunLength { values, ends } => {
            // Fully inline, exactly as in v2: run tables are consulted by
            // every block decision, so there is nothing to keep lazy.
            w.put_u8(ENC_RUN_LENGTH);
            w.put_varint(ends.last().copied().unwrap_or(0) as u64);
            w.put_varint(values.len() as u64);
            let mut prev = 0u32;
            for (&v, &end) in values.iter().zip(ends) {
                put(w, v);
                w.put_varint((end - prev) as u64);
                prev = end;
            }
        }
        IntStorage::Delta {
            anchors,
            width,
            len,
            words,
        } => {
            w.put_u8(ENC_DELTA);
            w.put_varint(*len as u64);
            w.put_varint(anchors.len() as u64);
            for &a in anchors {
                put(w, a);
            }
            w.put_u8(*width);
            w.put_varint(words.len() as u64);
            let mut bytes = Vec::with_capacity(words.len() * 8);
            for &word in words.slice() {
                word.write_le(&mut bytes);
            }
            w.put_varint(sections.push(bytes) as u64);
        }
    }
}

fn encode_zones<T: Copy>(w: &mut WireWriter, zones: &ZoneMap<T>, put: impl Fn(&mut WireWriter, T)) {
    w.put_varint(zones.len() as u64);
    for (&min, &max) in zones.mins().iter().zip(zones.maxs()) {
        put(w, min);
        put(w, max);
    }
}

/// Encode a table as a complete v3 file image.
pub fn encode(table: &Table) -> Vec<u8> {
    let mut h = WireWriter::new();
    let mut sections = Sections::default();
    h.put_varint(table.num_columns() as u64);
    h.put_varint(table.num_rows() as u64);
    for c in 0..table.num_columns() {
        let desc = table.schema().desc(c);
        h.put_str(&desc.name);
        h.put_u8(kind_byte(desc.kind));
        let col = table.column(c);
        encode_null_runs(&mut h, col, table.num_rows());
        match col {
            Column::Int(ic) | Column::Date(ic) => {
                encode_int_storage_v3(&mut h, &mut sections, ic.storage(), |w, v| w.put_i64(v));
                encode_zones(&mut h, ic.zones(), |w, v| w.put_i64(v));
            }
            Column::Double(fc) => {
                h.put_varint(fc.len() as u64);
                let mut bytes = Vec::with_capacity(fc.len() * 8);
                for &v in fc.data() {
                    v.write_le(&mut bytes);
                }
                h.put_varint(sections.push(bytes) as u64);
                encode_zones(&mut h, fc.zones(), |w, v| w.put_f64(v));
            }
            Column::Str(dc) | Column::Cat(dc) => {
                h.put_varint(dc.dictionary().len() as u64);
                for s in dc.dictionary().iter() {
                    h.put_str(s);
                }
                encode_int_storage_v3(&mut h, &mut sections, dc.codes(), |w, code| {
                    w.put_varint(code as u64)
                });
                encode_zones(&mut h, dc.zones(), |w, v| w.put_varint(v as u64));
            }
        }
    }
    let hdr = h.finish();
    assert!(hdr.len() <= u32::MAX as usize, "hvc v3 header exceeds u32");
    let payload_base = align_up(8 + hdr.len());
    let mut out = Vec::with_capacity(payload_base + sections.rel);
    out.extend_from_slice(MAGIC3);
    out.extend_from_slice(&(hdr.len() as u32).to_le_bytes());
    out.extend_from_slice(&hdr);
    out.resize(payload_base, 0);
    for (rel, bytes) in sections.parts {
        out.resize(payload_base + rel, 0);
        out.extend_from_slice(&bytes);
    }
    out
}

// ---------------------------------------------------------------------------
// Header parsing (shared by heap, mapped, and probe paths)
// ---------------------------------------------------------------------------

/// Parsed integer-storage descriptor: inline parts materialized, bulk
/// payloads still only (offset, count) coordinates.
enum IntMeta<T> {
    Plain {
        rel: usize,
    },
    BitPacked {
        base: T,
        width: u8,
        nwords: usize,
        rel: usize,
    },
    RunLength {
        values: Vec<T>,
        ends: Vec<u32>,
    },
    Delta {
        anchors: Vec<T>,
        width: u8,
        nwords: usize,
        rel: usize,
    },
}

fn decode_int_meta<T>(
    r: &mut WireReader,
    rows: usize,
    column: &str,
    get: impl Fn(&mut WireReader) -> std::result::Result<T, hillview_net::Error>,
) -> Result<IntMeta<T>> {
    let enc = r.get_u8().map_err(wire_err)?;
    let declared = r.get_len("values").map_err(wire_err)?;
    if declared != rows {
        return Err(Error::RowCountMismatch {
            column: column.to_string(),
            declared: rows,
            actual: declared,
        });
    }
    match enc {
        ENC_PLAIN => Ok(IntMeta::Plain {
            rel: r.get_len("section offset").map_err(wire_err)?,
        }),
        ENC_BIT_PACKED => {
            let base = get(r).map_err(wire_err)?;
            let width = r.get_u8().map_err(wire_err)?;
            let nwords = r.get_len("packed words").map_err(wire_err)?;
            let rel = r.get_len("section offset").map_err(wire_err)?;
            Ok(IntMeta::BitPacked {
                base,
                width,
                nwords,
                rel,
            })
        }
        ENC_RUN_LENGTH => {
            let nruns = r.get_len("runs").map_err(wire_err)?;
            let mut values = Vec::with_capacity(nruns.min(1 << 20));
            let mut ends = Vec::with_capacity(nruns.min(1 << 20));
            let mut at = 0u64;
            for _ in 0..nruns {
                values.push(get(r).map_err(wire_err)?);
                let run = r.get_varint().map_err(wire_err)?;
                if run == 0 {
                    return Err(parse_err(format!("column {column:?}: zero-length run")));
                }
                at += run;
                if at > u32::MAX as u64 {
                    return Err(parse_err(format!(
                        "column {column:?}: run-length section overflows row index"
                    )));
                }
                ends.push(at as u32);
            }
            if at as usize != rows {
                return Err(Error::RowCountMismatch {
                    column: column.to_string(),
                    declared: rows,
                    actual: at as usize,
                });
            }
            Ok(IntMeta::RunLength { values, ends })
        }
        ENC_DELTA => {
            let nanchors = r.get_len("delta anchors").map_err(wire_err)?;
            let mut anchors = Vec::with_capacity(nanchors.min(1 << 20));
            for _ in 0..nanchors {
                anchors.push(get(r).map_err(wire_err)?);
            }
            let width = r.get_u8().map_err(wire_err)?;
            let nwords = r.get_len("delta words").map_err(wire_err)?;
            let rel = r.get_len("section offset").map_err(wire_err)?;
            Ok(IntMeta::Delta {
                anchors,
                width,
                nwords,
                rel,
            })
        }
        b => Err(parse_err(format!(
            "column {column:?}: unknown encoding byte {b}"
        ))),
    }
}

fn decode_zones<T: Copy>(
    r: &mut WireReader,
    rows: usize,
    column: &str,
    get: impl Fn(&mut WireReader) -> std::result::Result<T, hillview_net::Error>,
) -> Result<ZoneMap<T>> {
    let n = r.get_len("zone blocks").map_err(wire_err)?;
    if n != rows.div_ceil(BLOCK_ROWS) {
        return Err(parse_err(format!(
            "column {column:?}: zone map covers {n} blocks for {rows} rows"
        )));
    }
    let mut mins = Vec::with_capacity(n.min(1 << 20));
    let mut maxs = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        mins.push(get(r).map_err(wire_err)?);
        maxs.push(get(r).map_err(wire_err)?);
    }
    ZoneMap::from_parts(mins, maxs)
        .ok_or_else(|| parse_err(format!("column {column:?}: malformed zone map")))
}

/// One column's fully-parsed header metadata.
struct ColMeta {
    name: String,
    kind: ColumnKind,
    nulls: NullMask,
    payload: PayloadMeta,
}

enum PayloadMeta {
    Int {
        storage: IntMeta<i64>,
        zones: ZoneMap<i64>,
    },
    Double {
        rel: usize,
        zones: ZoneMap<f64>,
    },
    Dict {
        dict: Arc<Dictionary>,
        dict_len: usize,
        codes: IntMeta<u32>,
        zones: ZoneMap<u32>,
    },
}

struct Header {
    rows: usize,
    columns: Vec<ColMeta>,
    /// Absolute byte offset of the first payload section.
    payload_base: usize,
}

fn get_code(r: &mut WireReader) -> std::result::Result<u32, hillview_net::Error> {
    let v = r.get_varint()?;
    u32::try_from(v).map_err(|_| hillview_net::Error::BadLength {
        context: "dictionary code",
        len: v,
    })
}

/// Parse a v3 header blob (the bytes after magic + length word).
fn parse_header(hdr: Bytes, payload_base: usize) -> Result<Header> {
    let mut r = WireReader::new(hdr);
    let cols = r.get_len("columns").map_err(wire_err)?;
    let rows = r.get_len("rows").map_err(wire_err)?;
    let mut columns = Vec::with_capacity(cols.min(1 << 16));
    for _ in 0..cols {
        let name = r.get_str().map_err(wire_err)?;
        let kind = byte_kind(r.get_u8().map_err(wire_err)?, 0)?;
        let nulls = decode_null_runs(&mut r, rows, &name)?;
        let payload = match kind {
            ColumnKind::Int | ColumnKind::Date => {
                let storage = decode_int_meta(&mut r, rows, &name, |r| r.get_i64())?;
                let zones = decode_zones(&mut r, rows, &name, |r| r.get_i64())?;
                PayloadMeta::Int { storage, zones }
            }
            ColumnKind::Double => {
                let declared = r.get_len("values").map_err(wire_err)?;
                if declared != rows {
                    return Err(Error::RowCountMismatch {
                        column: name.clone(),
                        declared: rows,
                        actual: declared,
                    });
                }
                let rel = r.get_len("section offset").map_err(wire_err)?;
                let zones = decode_zones(&mut r, rows, &name, |r| r.get_f64())?;
                PayloadMeta::Double { rel, zones }
            }
            ColumnKind::String | ColumnKind::Category => {
                let dict_len = r.get_len("dict").map_err(wire_err)?;
                let mut db = DictionaryBuilder::new();
                for _ in 0..dict_len {
                    db.intern(&r.get_str().map_err(wire_err)?);
                }
                let codes = decode_int_meta(&mut r, rows, &name, get_code)?;
                let zones = decode_zones(&mut r, rows, &name, get_code)?;
                PayloadMeta::Dict {
                    dict: Arc::new(db.finish()),
                    dict_len,
                    codes,
                    zones,
                }
            }
        };
        columns.push(ColMeta {
            name,
            kind,
            nulls,
            payload,
        });
    }
    Ok(Header {
        rows,
        columns,
        payload_base,
    })
}

// ---------------------------------------------------------------------------
// Materialization (heap and mapped share everything but the ValueBuf source)
// ---------------------------------------------------------------------------

/// Where payload sections come from: a fully-read file image (heap tier,
/// decoded via explicit LE reads — endian-independent) or a lazily
/// resident [`Segment`] (zero-copy windows, little-endian only).
enum Source<'a> {
    Owned(&'a [u8]),
    Mapped(Arc<Segment>),
}

impl Source<'_> {
    fn buf<T: Pod>(
        &self,
        base: usize,
        rel: usize,
        len: usize,
        column: &str,
    ) -> Result<ValueBuf<T>> {
        let off = base
            .checked_add(rel)
            .ok_or_else(|| parse_err(format!("column {column:?}: section offset overflows")))?;
        match self {
            Source::Owned(bytes) => {
                let nbytes = len.checked_mul(T::BYTES).ok_or_else(|| {
                    parse_err(format!("column {column:?}: section length overflows"))
                })?;
                let end = off.checked_add(nbytes).ok_or_else(|| {
                    parse_err(format!("column {column:?}: section length overflows"))
                })?;
                if end > bytes.len() {
                    return Err(parse_err(format!(
                        "column {column:?}: section {off}..{end} exceeds file length {}",
                        bytes.len()
                    )));
                }
                let mut v = Vec::with_capacity(len);
                for chunk in bytes[off..end].chunks_exact(T::BYTES) {
                    v.push(T::read_le(chunk));
                }
                Ok(v.into())
            }
            Source::Mapped(seg) => ValueBuf::mapped(Arc::clone(seg), off, len)
                .map_err(|e| parse_err(format!("column {column:?}: {e}"))),
        }
    }
}

fn build_int_storage<T: Pod + PackedInt>(
    meta: IntMeta<T>,
    rows: usize,
    src: &Source<'_>,
    base: usize,
    column: &str,
) -> Result<IntStorage<T>> {
    match meta {
        IntMeta::Plain { rel } => Ok(IntStorage::Plain(src.buf::<T>(base, rel, rows, column)?)),
        IntMeta::BitPacked {
            base: frame,
            width,
            nwords,
            rel,
        } => {
            let words = src.buf::<u64>(base, rel, nwords, column)?;
            IntStorage::from_bit_packed_buf(frame, width, rows, words).ok_or_else(|| {
                parse_err(format!(
                    "column {column:?}: inconsistent bit-packed section (width {width}, {nwords} words for {rows} rows)"
                ))
            })
        }
        IntMeta::RunLength { values, ends } => IntStorage::from_run_length(values, ends)
            .ok_or_else(|| parse_err(format!("column {column:?}: malformed run-length section"))),
        IntMeta::Delta {
            anchors,
            width,
            nwords,
            rel,
        } => {
            let nanchors = anchors.len();
            let words = src.buf::<u64>(base, rel, nwords, column)?;
            IntStorage::from_delta_buf(anchors, width, rows, words).ok_or_else(|| {
                parse_err(format!(
                    "column {column:?}: inconsistent delta section (width {width}, {nanchors} anchors, {nwords} words for {rows} rows)"
                ))
            })
        }
    }
}

/// Assemble a [`Table`] from a parsed header and a payload source.
/// `deep_validate` runs the v2-parity full dictionary-code check (heap
/// path); the mapped path instead bounds codes by the persisted zone
/// maxima, which never touches payload bytes.
fn build_table(header: Header, src: &Source<'_>, deep_validate: bool) -> Result<Table> {
    let base = header.payload_base;
    let rows = header.rows;
    let mut builder = Table::builder();
    for cm in header.columns {
        let column = match cm.payload {
            PayloadMeta::Int { storage, zones } => {
                let st = build_int_storage(storage, rows, src, base, &cm.name)?;
                let ic = I64Column::with_storage_and_zones(st, cm.nulls, zones);
                if cm.kind == ColumnKind::Int {
                    Column::Int(ic)
                } else {
                    Column::Date(ic)
                }
            }
            PayloadMeta::Double { rel, zones } => {
                let data = src.buf::<f64>(base, rel, rows, &cm.name)?;
                Column::Double(F64Column::from_parts(data, cm.nulls, zones))
            }
            PayloadMeta::Dict {
                dict,
                dict_len,
                codes,
                zones,
            } => {
                let st = build_int_storage(codes, rows, src, base, &cm.name)?;
                if deep_validate {
                    validate_codes(&st, dict_len, cm.nulls.null_count(), &cm.name)?;
                } else if dict_len == 0 {
                    if cm.nulls.null_count() < rows {
                        return Err(parse_err(format!(
                            "column {:?}: empty dictionary but {} non-null rows",
                            cm.name,
                            rows - cm.nulls.null_count()
                        )));
                    }
                } else if let Some(&max) = zones.maxs().iter().find(|&&m| m as usize >= dict_len) {
                    return Err(parse_err(format!(
                        "column {:?}: zone max code {max} out of dictionary range {dict_len}",
                        cm.name
                    )));
                }
                let dc = DictColumn::with_storage_and_zones(st, dict, cm.nulls, zones);
                if cm.kind == ColumnKind::String {
                    Column::Str(dc)
                } else {
                    Column::Cat(dc)
                }
            }
        };
        builder = builder.column(&cm.name, cm.kind, column);
    }
    Ok(builder.build()?)
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

fn split_image(bytes: &[u8]) -> Result<(Bytes, usize)> {
    if bytes.len() < 8 || &bytes[0..4] != MAGIC3 {
        return Err(parse_err("bad v3 magic"));
    }
    let header_len = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    let end = 8usize
        .checked_add(header_len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| parse_err("v3 header exceeds file length"))?;
    Ok((
        Bytes::copy_from_slice(&bytes[8..end]),
        align_up(8 + header_len),
    ))
}

/// Decode a complete v3 file image into fully heap-resident columns.
pub fn decode_owned(bytes: &[u8]) -> Result<Table> {
    let (hdr, payload_base) = split_image(bytes)?;
    let header = parse_header(hdr, payload_base)?;
    build_table(header, &Source::Owned(bytes), true)
}

/// Open a v3 file as lazily-resident, file-backed columns: bulk payloads
/// become zero-copy [`ValueBuf`] windows over a [`Segment`] attached to
/// `cache`, and no payload byte is read until a scan touches it. A v2 file
/// (or any open on a big-endian host) transparently falls back to the
/// heap-resident [`hvc::read_file`] path.
pub fn read_file_mapped(
    path: impl AsRef<Path>,
    cache: &Arc<BlockCache>,
    mode: SegmentMode,
) -> Result<Table> {
    let path = path.as_ref();
    if cfg!(target_endian = "big") {
        return hvc::read_file(path);
    }
    let mut f = std::fs::File::open(path)?;
    let mut head = [0u8; 8];
    if read_some(&mut f, &mut head)? < 4 || &head[0..4] != MAGIC3 {
        return hvc::read_file(path);
    }
    let header_len = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes")) as usize;
    let mut hdr = vec![0u8; header_len];
    f.read_exact(&mut hdr)
        .map_err(|_| parse_err("v3 header exceeds file length"))?;
    drop(f);
    let header = parse_header(Bytes::from(hdr), align_up(8 + header_len))?;
    let seg = Segment::open(path, mode, cache)?;
    build_table(header, &Source::Mapped(seg), false)
}

/// What [`probe_file`] learns from a file's header alone.
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Container version (2 or 3).
    pub version: u8,
    /// Number of columns.
    pub columns: usize,
    /// Number of rows.
    pub rows: usize,
    /// Full schema — available for v3 (whose header is self-contained);
    /// `None` for v2, where the schema is interleaved with the payload.
    pub schema: Option<Schema>,
}

/// Read as many bytes as the reader has, up to `buf.len()`.
fn read_some(f: &mut impl Read, buf: &mut [u8]) -> Result<usize> {
    let mut n = 0usize;
    while n < buf.len() {
        let got = f.read(&mut buf[n..])?;
        if got == 0 {
            break;
        }
        n += got;
    }
    Ok(n)
}

/// Probe a file's identity, dimensions and (v3) schema by reading only its
/// header — never the column payloads. This is what partition loading uses
/// to plan shard assignment without faulting data in.
pub fn probe_file(path: impl AsRef<Path>) -> Result<FileInfo> {
    let mut f = std::fs::File::open(path)?;
    // 4 magic + 4 length word (v3) — or 4 magic + two varints (v2, ≤ 10
    // bytes each). 24 bytes covers both.
    let mut head = [0u8; 24];
    let n = read_some(&mut f, &mut head)?;
    if n < 4 {
        return Err(parse_err("file too short for magic"));
    }
    if &head[0..4] == hvc::MAGIC {
        let mut r = WireReader::new(Bytes::copy_from_slice(&head[4..n]));
        let columns = r.get_len("columns").map_err(wire_err)?;
        let rows = r.get_len("rows").map_err(wire_err)?;
        return Ok(FileInfo {
            version: 2,
            columns,
            rows,
            schema: None,
        });
    }
    if &head[0..4] != MAGIC3 {
        return Err(parse_err("bad magic"));
    }
    if n < 8 {
        return Err(parse_err("file too short for v3 header length"));
    }
    let header_len = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes")) as usize;
    let mut hdr = vec![0u8; header_len];
    let have = (n - 8).min(header_len);
    hdr[..have].copy_from_slice(&head[8..8 + have]);
    f.read_exact(&mut hdr[have..])
        .map_err(|_| parse_err("v3 header exceeds file length"))?;
    let header = parse_header(Bytes::from(hdr), align_up(8 + header_len))?;
    let descs: Vec<ColumnDesc> = header
        .columns
        .iter()
        .map(|c| ColumnDesc::new(&c.name, c.kind))
        .collect();
    Ok(FileInfo {
        version: 3,
        columns: header.columns.len(),
        rows: header.rows,
        schema: Some(Schema::from_descs(descs)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::encoding::EncodingKind;
    use hillview_columnar::Value;

    fn dir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("hvc3-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn mixed_table(n: usize) -> Table {
        Table::builder()
            .column(
                "seq",
                ColumnKind::Int,
                Column::Int(I64Column::new(
                    (0..n as i64).map(|i| 1_000_000 + i * 3).collect(),
                    NullMask::none(),
                )),
            )
            .column(
                "bucket",
                ColumnKind::Int,
                Column::Int(I64Column::from_options((0..n).map(|i| {
                    if i % 17 == 3 {
                        None
                    } else {
                        Some((i as i64 * 7919) % 512)
                    }
                }))),
            )
            .column(
                "rl",
                ColumnKind::Int,
                Column::Int(I64Column::new(
                    (0..n as i64).map(|i| i / 100).collect(),
                    NullMask::none(),
                )),
            )
            .column(
                "noise",
                ColumnKind::Int,
                Column::Int(I64Column::plain(
                    (0..n as i64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect(),
                    NullMask::none(),
                )),
            )
            .column(
                "score",
                ColumnKind::Double,
                Column::Double(F64Column::from_options((0..n).map(|i| {
                    if i % 13 == 0 {
                        None
                    } else {
                        Some(i as f64 * 0.25 - 100.0)
                    }
                }))),
            )
            .column(
                "tag",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings((0..n).map(|i| {
                    if i % 11 == 5 {
                        None
                    } else {
                        Some(["red", "green", "blue", "teal"][i % 4])
                    }
                }))),
            )
            .build()
            .unwrap()
    }

    fn assert_tables_identical(a: &Table, b: &Table) {
        assert_eq!(a.num_rows(), b.num_rows());
        assert_eq!(a.num_columns(), b.num_columns());
        for c in 0..a.num_columns() {
            assert_eq!(a.schema().desc(c), b.schema().desc(c), "desc {c}");
        }
        for r in 0..a.num_rows() {
            assert_eq!(a.full_row(r), b.full_row(r), "row {r}");
        }
    }

    #[test]
    fn v3_round_trip_preserves_everything() {
        let t = mixed_table(700);
        let t2 = decode_owned(&encode(&t)).unwrap();
        assert_tables_identical(&t, &t2);
    }

    #[test]
    fn v3_round_trip_preserves_encoding_and_zones() {
        let t = mixed_table(4000);
        let img = encode(&t);
        let t2 = decode_owned(&img).unwrap();
        for (name, kind) in [
            ("seq", EncodingKind::Delta),
            ("bucket", EncodingKind::BitPacked),
            ("rl", EncodingKind::RunLength),
            ("noise", EncodingKind::Plain),
        ] {
            let a = t.column_by_name(name).unwrap().as_i64_col().unwrap();
            let b = t2.column_by_name(name).unwrap().as_i64_col().unwrap();
            assert_eq!(a.storage().kind(), kind, "{name}");
            assert_eq!(a.storage(), b.storage(), "{name}");
            assert_eq!(a.zones().mins(), b.zones().mins(), "{name} zone mins");
            assert_eq!(a.zones().maxs(), b.zones().maxs(), "{name} zone maxs");
        }
    }

    #[test]
    fn write_file_emits_v3_and_read_file_sniffs_both() {
        let d = dir();
        let t = mixed_table(300);
        let p3 = d.join("t3.hvc");
        hvc::write_file(&t, &p3).unwrap();
        let bytes = std::fs::read(&p3).unwrap();
        assert_eq!(&bytes[0..4], MAGIC3);
        assert_tables_identical(&t, &hvc::read_file(&p3).unwrap());
        // v2 files remain readable through the same entry point.
        let p2 = d.join("t2.hvc");
        hvc::write_file_v2(&t, &p2).unwrap();
        let bytes = std::fs::read(&p2).unwrap();
        assert_eq!(&bytes[0..4], hvc::MAGIC);
        assert_tables_identical(&t, &hvc::read_file(&p2).unwrap());
    }

    #[test]
    fn payload_sections_are_64_byte_aligned() {
        let t = mixed_table(500);
        let img = encode(&t);
        let (hdr, payload_base) = split_image(&img).unwrap();
        assert_eq!(payload_base % ALIGN, 0);
        let header = parse_header(hdr, payload_base).unwrap();
        for cm in &header.columns {
            let rels: Vec<usize> = match &cm.payload {
                PayloadMeta::Int { storage, .. } => match storage {
                    IntMeta::Plain { rel }
                    | IntMeta::BitPacked { rel, .. }
                    | IntMeta::Delta { rel, .. } => vec![*rel],
                    IntMeta::RunLength { .. } => vec![],
                },
                PayloadMeta::Double { rel, .. } => vec![*rel],
                PayloadMeta::Dict { codes, .. } => match codes {
                    IntMeta::Plain { rel }
                    | IntMeta::BitPacked { rel, .. }
                    | IntMeta::Delta { rel, .. } => vec![*rel],
                    IntMeta::RunLength { .. } => vec![],
                },
            };
            for rel in rels {
                assert_eq!(rel % ALIGN, 0, "column {:?} section at {rel}", cm.name);
            }
        }
    }

    #[test]
    fn mapped_read_bit_identical_to_heap_in_every_mode() {
        let d = dir();
        let t = mixed_table(2000);
        let p = d.join("mapped.hvc");
        hvc::write_file(&t, &p).unwrap();
        let heap = hvc::read_file(&p).unwrap();
        assert_tables_identical(&t, &heap);
        let modes: &[SegmentMode] = &[
            SegmentMode::Auto,
            SegmentMode::Pread,
            SegmentMode::Heap,
            #[cfg(feature = "ooc")]
            SegmentMode::Mmap,
        ];
        for &mode in modes {
            let cache = BlockCache::unbounded();
            let m = read_file_mapped(&p, &cache, mode).unwrap();
            assert_tables_identical(&heap, &m);
            // Storage-level equality: same variant, same decoded values.
            for name in ["seq", "bucket", "rl", "noise"] {
                let a = heap.column_by_name(name).unwrap().as_i64_col().unwrap();
                let b = m.column_by_name(name).unwrap().as_i64_col().unwrap();
                assert_eq!(a.storage(), b.storage(), "{name} under {mode:?}");
            }
        }
    }

    #[test]
    fn mapped_open_reads_no_payload() {
        let d = dir();
        let t = mixed_table(5000);
        let p = d.join("lazy.hvc");
        hvc::write_file(&t, &p).unwrap();
        let cache = BlockCache::unbounded();
        let m = read_file_mapped(&p, &cache, SegmentMode::Pread).unwrap();
        assert_eq!(cache.stats().faults, 0, "open faulted payload in");
        assert!(m.mapped_bytes() > 0, "columns are file-backed");
        // First actual access faults.
        let _ = m.column_by_name("noise").unwrap().value(4321);
        assert!(cache.stats().faults > 0);
    }

    #[test]
    fn mapped_falls_back_to_heap_for_v2_files() {
        let d = dir();
        let t = mixed_table(200);
        let p = d.join("old.hvc");
        hvc::write_file_v2(&t, &p).unwrap();
        let cache = BlockCache::unbounded();
        let m = read_file_mapped(&p, &cache, SegmentMode::Auto).unwrap();
        assert_tables_identical(&t, &m);
        assert_eq!(m.mapped_bytes(), 0);
    }

    #[test]
    fn probe_reads_header_only() {
        let d = dir();
        let t = mixed_table(600);
        let p = d.join("probe.hvc");
        hvc::write_file(&t, &p).unwrap();
        let info = probe_file(&p).unwrap();
        assert_eq!(info.version, 3);
        assert_eq!(info.rows, 600);
        assert_eq!(info.columns, 6);
        let schema = info.schema.unwrap();
        assert_eq!(schema.index_of("score").unwrap(), 4);
        assert_eq!(schema.desc(5).kind, ColumnKind::Category);
        // Truncate the file to magic + header: the probe still succeeds
        // (proof it never reads payload), while a full read fails.
        let bytes = std::fs::read(&p).unwrap();
        let header_len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        let cut = d.join("probe-cut.hvc");
        std::fs::write(&cut, &bytes[..8 + header_len]).unwrap();
        let info = probe_file(&cut).unwrap();
        assert_eq!((info.version, info.rows), (3, 600));
        assert!(hvc::read_file(&cut).is_err());
    }

    #[test]
    fn probe_reports_v2_dimensions() {
        let d = dir();
        let t = mixed_table(250);
        let p = d.join("probe2.hvc");
        hvc::write_file_v2(&t, &p).unwrap();
        let info = probe_file(&p).unwrap();
        assert_eq!(info.version, 2);
        assert_eq!(info.rows, 250);
        assert_eq!(info.columns, 6);
        assert!(info.schema.is_none());
    }

    #[test]
    fn corrupt_v3_rejected() {
        let t = mixed_table(400);
        let img = encode(&t);
        // Bad magic.
        assert!(decode_owned(b"NOPE0000").is_err());
        // Header length beyond the file.
        let mut huge = img.clone();
        huge[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_owned(&huge).is_err());
        // Truncations at many points must error, never panic.
        for cut in [6, 20, img.len() / 4, img.len() / 2, img.len() - 1] {
            assert!(decode_owned(&img[..cut]).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn row_count_mismatch_is_structured() {
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Int,
                Column::Int(I64Column::plain((0..200).collect(), NullMask::none())),
            )
            .build()
            .unwrap();
        let img = encode(&t);
        // Header blob starts at byte 8: cols varint (1 byte) then rows
        // varint 200 = [0xC8, 0x01]. Patch rows to 199.
        assert_eq!(&img[9..11], &[0xC8, 0x01], "expected varint 200");
        let mut bad = img.clone();
        bad[9] = 0xC7;
        let err = decode_owned(&bad).unwrap_err();
        assert!(
            matches!(
                err,
                Error::RowCountMismatch {
                    declared: 199,
                    actual: 200,
                    ..
                }
            ),
            "got {err}"
        );
    }

    #[test]
    fn mapped_open_rejects_zone_codes_outside_dictionary() {
        // Corrupt a categorical column's zone max above dict_len: the
        // mapped path's header-only validation must reject the file.
        let d = dir();
        let t = Table::builder()
            .column(
                "tag",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings(
                    (0..640).map(|i| Some(["a", "b", "c", "d", "e"][i % 5])),
                )),
            )
            .build()
            .unwrap();
        let p = d.join("badzones.hvc");
        hvc::write_file(&t, &p).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        let header_len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        // The zone map is the header's tail: 10 blocks of (min=0, max=4)
        // varint pairs. Set every max to 127 (still a one-byte varint).
        let tail = &mut bytes[8 + header_len - 20..8 + header_len];
        assert!(tail.iter().step_by(2).all(|&b| b == 0), "zone mins");
        assert!(tail[1..].iter().step_by(2).all(|&b| b == 4), "zone maxs");
        for b in tail[1..].iter_mut().step_by(2) {
            *b = 127;
        }
        std::fs::write(&p, &bytes).unwrap();
        let cache = BlockCache::unbounded();
        let err = read_file_mapped(&p, &cache, SegmentMode::Pread).unwrap_err();
        assert!(
            err.to_string().contains("out of dictionary range"),
            "got {err}"
        );
    }

    #[test]
    fn empty_and_all_null_tables_round_trip() {
        let t = Table::empty();
        let t2 = decode_owned(&encode(&t)).unwrap();
        assert_eq!((t2.num_rows(), t2.num_columns()), (0, 0));
        let t = Table::builder()
            .column(
                "S",
                ColumnKind::String,
                Column::Str(DictColumn::from_strings([None::<&str>, None, None])),
            )
            .column(
                "D",
                ColumnKind::Double,
                Column::Double(F64Column::from_options([None, None, None])),
            )
            .build()
            .unwrap();
        let t2 = decode_owned(&encode(&t)).unwrap();
        for r in 0..3 {
            assert_eq!(t2.get(r, "S").unwrap(), Value::Missing);
            assert_eq!(t2.get(r, "D").unwrap(), Value::Missing);
        }
        // And through the mapped path.
        let d = dir();
        let p = d.join("allnull.hvc");
        hvc::write_file(&t, &p).unwrap();
        let cache = BlockCache::unbounded();
        let m = read_file_mapped(&p, &cache, SegmentMode::Auto).unwrap();
        assert_tables_identical(&t2, &m);
    }

    #[test]
    fn nan_doubles_survive_the_mapped_path() {
        // NaN payload values are null-masked at ingest; the raw section
        // preserves them bit-for-bit and from_parts must not re-normalize.
        let d = dir();
        let t = Table::builder()
            .column(
                "x",
                ColumnKind::Double,
                Column::Double(F64Column::new(
                    vec![1.0, f64::NAN, 3.0, f64::NAN],
                    NullMask::none(),
                )),
            )
            .build()
            .unwrap();
        let p = d.join("nan.hvc");
        hvc::write_file(&t, &p).unwrap();
        let cache = BlockCache::unbounded();
        let m = read_file_mapped(&p, &cache, SegmentMode::Pread).unwrap();
        let c = m.column_by_name("x").unwrap().as_f64_col().unwrap();
        assert_eq!(c.get(0), Some(1.0));
        assert_eq!(c.get(1), None, "NaN row stays null");
        assert_eq!(c.nulls().null_count(), 2);
    }
}
