//! Chunked vs. per-row scan benchmarks (the tentpole measurement for the
//! block scan pipeline), plus simd-on vs forced-scalar pairs.
//!
//! Each case runs the same vizketch kernel twice over identical data: once
//! through the block scan path (`summarize`) and once through the per-row
//! reference path (`summarize_rowwise`). Views cover the membership
//! representations that matter: full, contiguous-range (coalesced bitmap
//! words), alternating dense bitmap, sparse, and a null-heavy column.
//!
//! When built with `--features simd`, a second table of cases times each
//! hot kernel under the vector codegen vs the forced-scalar fallback
//! (`hillview_columnar::simd::set_force_scalar`) — same process, same
//! data, byte-identical summaries, different codegen.
//!
//! Running `cargo bench --bench scan` rewrites `BENCH_scan.json` at the
//! repository root with the measured medians and speedups.

use criterion::Criterion;
use hillview_columnar::column::{Column, DictColumn, F64Column};
use hillview_columnar::{simd, ColumnKind, MembershipSet, Table};
use hillview_sketch::buckets::BucketSpec;
use hillview_sketch::heatmap::HeatmapSketch;
use hillview_sketch::heavy::MisraGriesSketch;
use hillview_sketch::histogram::HistogramSketch;
use hillview_sketch::moments::MomentsSketch;
use hillview_sketch::traits::Sketch;
use hillview_sketch::TableView;
use std::sync::Arc;

const ROWS: usize = 1_000_000;

/// 1M-row table: clean Double, 30%-null Double, and a skewed category.
fn table() -> Arc<Table> {
    // Deterministic pseudo-random values without pulling in `rand`.
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let dense: Vec<Option<f64>> = (0..ROWS)
        .map(|_| Some((next() % 10_000) as f64 / 10.0))
        .collect();
    let holey: Vec<Option<f64>> = (0..ROWS)
        .map(|_| {
            let v = next();
            (v % 10 >= 3).then_some((v % 10_000) as f64 / 10.0)
        })
        .collect();
    let cats = [
        "whale", "shark", "tuna", "cod", "eel", "crab", "squid", "ray",
    ];
    let cat_rows: Vec<usize> = (0..ROWS)
        .map(|_| {
            // Skewed: half the rows land on the first category.
            let v = next() % 16;
            if v < 8 {
                0
            } else {
                (v % 8) as usize
            }
        })
        .collect();
    Arc::new(
        Table::builder()
            .column(
                "X",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(dense)),
            )
            .column(
                "H",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(holey)),
            )
            .column(
                "C",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings(
                    cat_rows.iter().map(|&i| Some(cats[i])),
                )),
            )
            .build()
            .unwrap(),
    )
}

struct Case {
    name: &'static str,
    chunked_ns: u128,
    rowwise_ns: u128,
}

/// A simd-on vs forced-scalar timing of one kernel (same process, same
/// data; summaries asserted byte-identical before timing).
struct SimdCase {
    name: &'static str,
    simd_ns: u128,
    scalar_ns: u128,
}

fn run_pair(
    c: &mut Criterion,
    cases: &mut Vec<Case>,
    name: &'static str,
    mut chunked: impl FnMut(),
    mut rowwise: impl FnMut(),
) {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.bench_function("chunked", |b| b.iter(&mut chunked));
    g.bench_function("rowwise", |b| b.iter(&mut rowwise));
    g.finish();
    let ms = c.measurements();
    let chunked_ns = ms[ms.len() - 2].median.as_nanos();
    let rowwise_ns = ms[ms.len() - 1].median.as_nanos();
    cases.push(Case {
        name,
        chunked_ns,
        rowwise_ns,
    });
}

fn run_simd_pair(
    c: &mut Criterion,
    cases: &mut Vec<SimdCase>,
    name: &'static str,
    mut kernel: impl FnMut(),
) {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    simd::set_force_scalar(false);
    g.bench_function("simd", |b| b.iter(&mut kernel));
    simd::set_force_scalar(true);
    g.bench_function("scalar", |b| b.iter(&mut kernel));
    simd::set_force_scalar(false);
    g.finish();
    let ms = c.measurements();
    cases.push(SimdCase {
        name,
        simd_ns: ms[ms.len() - 2].median.as_nanos(),
        scalar_ns: ms[ms.len() - 1].median.as_nanos(),
    });
}

fn main() {
    let t = table();
    let full = TableView::full(t.clone());
    let range = TableView::with_members(
        t.clone(),
        Arc::new(MembershipSet::from_rows(
            (100_000u32..900_000).collect(),
            ROWS,
        )),
    );
    let dense = TableView::with_members(
        t.clone(),
        Arc::new(MembershipSet::from_rows(
            (0..ROWS as u32).filter(|r| r % 2 == 0).collect(),
            ROWS,
        )),
    );
    let sparse = TableView::with_members(
        t.clone(),
        Arc::new(MembershipSet::from_rows(
            (0..ROWS as u32).step_by(20).collect(),
            ROWS,
        )),
    );

    let hist = HistogramSketch::streaming("X", BucketSpec::numeric(0.0, 1000.0, 100));
    let hist_nulls = HistogramSketch::streaming("H", BucketSpec::numeric(0.0, 1000.0, 100));
    let hist_sampled = HistogramSketch::sampled("X", BucketSpec::numeric(0.0, 1000.0, 100), 0.05);
    let moments = MomentsSketch::new("X", 2);
    let mg = MisraGriesSketch::new("C", 8);

    let mut c = Criterion::default();
    let mut cases = Vec::new();

    run_pair(
        &mut c,
        &mut cases,
        "histogram_1M_full",
        || {
            hist.summarize(&full, 0).unwrap();
        },
        || {
            hist.summarize_rowwise(&full, 0).unwrap();
        },
    );
    run_pair(
        &mut c,
        &mut cases,
        "histogram_1M_null30pct",
        || {
            hist_nulls.summarize(&full, 0).unwrap();
        },
        || {
            hist_nulls.summarize_rowwise(&full, 0).unwrap();
        },
    );
    run_pair(
        &mut c,
        &mut cases,
        "histogram_800k_range_filter",
        || {
            hist.summarize(&range, 0).unwrap();
        },
        || {
            hist.summarize_rowwise(&range, 0).unwrap();
        },
    );
    run_pair(
        &mut c,
        &mut cases,
        "histogram_500k_bitmap_filter",
        || {
            hist.summarize(&dense, 0).unwrap();
        },
        || {
            hist.summarize_rowwise(&dense, 0).unwrap();
        },
    );
    run_pair(
        &mut c,
        &mut cases,
        "histogram_50k_sparse_filter",
        || {
            hist.summarize(&sparse, 0).unwrap();
        },
        || {
            hist.summarize_rowwise(&sparse, 0).unwrap();
        },
    );
    run_pair(
        &mut c,
        &mut cases,
        "histogram_1M_sampled_5pct",
        || {
            hist_sampled.summarize(&full, 7).unwrap();
        },
        || {
            hist_sampled.summarize_rowwise(&full, 7).unwrap();
        },
    );
    run_pair(
        &mut c,
        &mut cases,
        "moments_1M_full",
        || {
            moments.summarize(&full, 0).unwrap();
        },
        || {
            moments.summarize_rowwise(&full, 0).unwrap();
        },
    );
    run_pair(
        &mut c,
        &mut cases,
        "misra_gries_1M_category",
        || {
            mg.summarize(&full, 0).unwrap();
        },
        || {
            mg.summarize_rowwise(&full, 0).unwrap();
        },
    );

    // Sanity: chunked and rowwise agree on every benchmarked shape.
    assert_eq!(
        hist.summarize(&dense, 0).unwrap(),
        hist.summarize_rowwise(&dense, 0).unwrap()
    );
    assert_eq!(
        hist_nulls.summarize(&full, 0).unwrap(),
        hist_nulls.summarize_rowwise(&full, 0).unwrap()
    );

    // Simd-on vs forced-scalar pairs over the hot kernels; summaries must
    // be byte-identical before we time anything.
    let mut simd_cases = Vec::new();
    let heat = HeatmapSketch::streaming(
        "X",
        "C",
        BucketSpec::numeric(0.0, 1000.0, 50),
        BucketSpec::strings(vec!["cod".into(), "shark".into(), "tuna".into()]),
    );
    {
        let a = hist.summarize(&full, 0).unwrap();
        simd::set_force_scalar(true);
        let b = hist.summarize(&full, 0).unwrap();
        simd::set_force_scalar(false);
        assert_eq!(a, b, "simd and scalar histograms diverge");
        let a = moments.summarize(&full, 0).unwrap();
        simd::set_force_scalar(true);
        let b = moments.summarize(&full, 0).unwrap();
        simd::set_force_scalar(false);
        assert_eq!(a, b, "simd and scalar moments diverge");
    }
    run_simd_pair(&mut c, &mut simd_cases, "simd_histogram_1M_full", || {
        hist.summarize(&full, 0).unwrap();
    });
    run_simd_pair(
        &mut c,
        &mut simd_cases,
        "simd_histogram_1M_null30pct",
        || {
            hist_nulls.summarize(&full, 0).unwrap();
        },
    );
    run_simd_pair(&mut c, &mut simd_cases, "simd_moments_1M_full", || {
        moments.summarize(&full, 0).unwrap();
    });
    run_simd_pair(&mut c, &mut simd_cases, "simd_heatmap_1M_full", || {
        heat.summarize(&full, 0).unwrap();
    });

    write_json(&cases, &simd_cases);
    println!(
        "\n{:<32} {:>12} {:>12} {:>8}",
        "case", "chunked", "rowwise", "speedup"
    );
    for case in &cases {
        println!(
            "{:<32} {:>10}ns {:>10}ns {:>7.2}x",
            case.name,
            case.chunked_ns,
            case.rowwise_ns,
            case.rowwise_ns as f64 / case.chunked_ns.max(1) as f64
        );
    }
    println!(
        "\n{:<32} {:>12} {:>12} {:>8}  (simd_available: {})",
        "case",
        "simd",
        "scalar",
        "speedup",
        simd::active()
    );
    for case in &simd_cases {
        println!(
            "{:<32} {:>10}ns {:>10}ns {:>7.2}x",
            case.name,
            case.simd_ns,
            case.scalar_ns,
            case.scalar_ns as f64 / case.simd_ns.max(1) as f64
        );
    }
}

fn write_json(cases: &[Case], simd_cases: &[SimdCase]) {
    let mut out = String::from(
        "{\n  \"rows\": 1000000,\n  \"bench\": \"chunked vs per-row scan, median ns per summarize\",\n",
    );
    out.push_str(&format!("  \"simd_available\": {},\n", simd::active()));
    out.push_str("  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let speedup = case.rowwise_ns as f64 / case.chunked_ns.max(1) as f64;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"chunked_ns\": {}, \"rowwise_ns\": {}, \"speedup\": {:.2}}}{}\n",
            case.name,
            case.chunked_ns,
            case.rowwise_ns,
            speedup,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"simd_cases\": [\n");
    for (i, case) in simd_cases.iter().enumerate() {
        let speedup = case.scalar_ns as f64 / case.simd_ns.max(1) as f64;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"simd_ns\": {}, \"scalar_ns\": {}, \"simd_speedup\": {:.2}}}{}\n",
            case.name,
            case.simd_ns,
            case.scalar_ns,
            speedup,
            if i + 1 < simd_cases.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan.json");
    std::fs::write(path, out).expect("write BENCH_scan.json");
    println!("wrote {path}");
}
