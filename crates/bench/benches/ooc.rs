//! Out-of-core tiered storage benchmark: a spilled `hvc` dataset ten times
//! the block-cache budget, queried through [`HvcDirSource`] with lazy
//! block residency versus fully heap-resident.
//!
//! Running `cargo bench --bench ooc` rewrites `BENCH_ooc.json` at the
//! repository root. The acceptance cases:
//!
//! * a zone-skippable filtered histogram (5% band of the sorted column)
//!   faults in **≤ 20% of the file bytes** — I/O pruning reaches disk;
//! * warm mapped latency lands **within 1.2x** of the heap-resident
//!   baseline — residency bookkeeping is not a steady-state tax;
//! * mapped and heap summaries are **bit-identical**.
//!
//! With `--features ooc` the mapped tier is zero-copy mmap with eviction;
//! without it, the same bench exercises the portable pread fallback.

use criterion::Criterion;
use hillview_columnar::column::{Column, I64Column};
use hillview_columnar::udf::UdfRegistry;
use hillview_columnar::{ColumnKind, NullMask, Predicate, SegmentMode, Table};
use hillview_core::dataset::SourceRegistry;
use hillview_core::erased::{erase, ErasedSketch};
use hillview_core::{Cluster, ClusterConfig, Engine, HvcDirSource, QueryOptions};
use hillview_sketch::histogram::HistogramSketch;
use hillview_sketch::BucketSpec;
use hillview_storage::SpillingWriter;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const ROWS: usize = 4_000_000;
const ROWS_PER_PART: usize = 250_000;
const WORKERS: usize = 2;

fn mix(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Spill the dataset: `X` a sorted ramp (tight zone windows, the
/// drill-down target) and `Y` a dense shuffled payload the filter never
/// touches — the bulk of the file bytes the scan must *not* read.
fn spill_dataset() -> (PathBuf, u64) {
    let dir = std::env::temp_dir().join(format!("hv-bench-ooc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut w = SpillingWriter::new(&dir, ROWS_PER_PART).unwrap();
    for base in (0..ROWS).step_by(ROWS_PER_PART) {
        let n = ROWS_PER_PART.min(ROWS - base);
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Int,
                Column::Int(I64Column::new(
                    (base..base + n).map(|i| i as i64).collect(),
                    NullMask::none(),
                )),
            )
            .column(
                "Y",
                ColumnKind::Int,
                Column::Int(I64Column::new(
                    (base..base + n)
                        .map(|i| (mix(i as u64) % (1 << 20)) as i64)
                        .collect(),
                    NullMask::none(),
                )),
            )
            .build()
            .unwrap();
        w.push(&t).unwrap();
    }
    w.finish().unwrap();
    let bytes = file_bytes(&dir);
    (dir, bytes)
}

fn file_bytes(dir: &Path) -> u64 {
    hillview_storage::spill::list_parts(dir)
        .unwrap()
        .iter()
        .map(|p| std::fs::metadata(p).unwrap().len())
        .sum()
}

/// A cluster whose per-worker block cache holds one tenth of the file:
/// the dataset is 10x "RAM" and residency must stay partial.
fn ooc_engine(dir: &Path, block_cache_bytes: usize) -> Arc<Engine> {
    let mut sources = SourceRegistry::new();
    sources.register(Arc::new(HvcDirSource::new("mapped", dir)));
    sources.register(Arc::new(HvcDirSource::with_mode(
        "heap",
        dir,
        SegmentMode::Heap,
    )));
    let cfg = ClusterConfig {
        workers: WORKERS,
        threads_per_worker: 4,
        micropartition_rows: 125_000,
        batch_interval: std::time::Duration::from_millis(100),
        link: hillview_net::LinkConfig::instant(),
        worker_timeout: std::time::Duration::from_secs(30),
        leaf_grain_rows: 65_536,
        cache_budget_bytes: 32 << 20,
        block_cache_bytes,
    };
    Arc::new(Engine::new(Cluster::new(
        cfg,
        sources,
        UdfRegistry::with_builtins(),
    )))
}

fn histogram() -> Arc<dyn ErasedSketch> {
    erase(HistogramSketch::streaming(
        "X",
        BucketSpec::numeric(0.0, ROWS as f64, 32),
    ))
}

/// The zone-skippable drill-down: 5% of the sorted ramp.
fn band() -> Predicate {
    Predicate::range("X", 1_000_000.0, 1_200_000.0)
}

fn uncached() -> QueryOptions {
    QueryOptions {
        cache: false,
        ..Default::default()
    }
}

fn main() {
    let (dir, total_file_bytes) = spill_dataset();
    let budget = (total_file_bytes / 10) as usize;
    let sk = histogram();

    // ------------------------------------------------------------------
    // Cold: fresh engine, headers just probed, zero payload bytes
    // resident — the first drill-down pays the pruned disk reads.
    // ------------------------------------------------------------------
    let engine = ooc_engine(&dir, budget);
    let mapped = engine.load("mapped", 0).unwrap();
    let started = Instant::now();
    let cold_outcome = engine
        .run_filtered_erased(mapped, band(), &sk, &uncached())
        .unwrap();
    let cold_ns = started.elapsed().as_nanos();
    let cold_stats = engine.cluster().block_cache_stats();
    let fault_fraction = cold_stats.bytes_faulted as f64 / total_file_bytes as f64;

    // ------------------------------------------------------------------
    // Warm mapped vs heap-resident baseline: the identical query, result
    // cache off, once residency (resp. the heap) is populated.
    // ------------------------------------------------------------------
    let heap = engine.load("heap", 0).unwrap();
    let heap_outcome = engine
        .run_filtered_erased(heap, band(), &sk, &uncached())
        .unwrap();
    let identical = cold_outcome.bytes == heap_outcome.bytes;

    let mut c = Criterion::default();
    let mut g = c.benchmark_group("ooc_filtered_histogram");
    g.sample_size(20);
    g.bench_function("warm_mapped", |b| {
        b.iter(|| {
            engine
                .run_filtered_erased(mapped, band(), &sk, &uncached())
                .unwrap()
        });
    });
    g.bench_function("warm_heap", |b| {
        b.iter(|| {
            engine
                .run_filtered_erased(heap, band(), &sk, &uncached())
                .unwrap()
        });
    });
    g.finish();
    let ms = c.measurements();
    let warm_mapped_ns = ms[ms.len() - 2].median.as_nanos();
    let warm_heap_ns = ms[ms.len() - 1].median.as_nanos();
    let warm_over_heap = warm_mapped_ns as f64 / warm_heap_ns.max(1) as f64;

    let mapped_span = engine.cluster().dataset_mapped_bytes(mapped);
    let heap_bytes = engine.cluster().dataset_heap_bytes(heap);
    let end_stats = engine.cluster().block_cache_stats();

    assert!(identical, "mapped result diverged from heap-resident");
    assert!(
        fault_fraction <= 0.20,
        "zone-skippable band faulted {:.1}% of file bytes (> 20%)",
        fault_fraction * 100.0
    );

    write_json(
        total_file_bytes,
        budget,
        mapped_span,
        heap_bytes,
        cold_ns,
        warm_mapped_ns,
        warm_heap_ns,
        cold_stats.bytes_faulted,
        fault_fraction,
        end_stats.evictions,
        identical,
    );

    println!(
        "\nooc_filtered_histogram: cold {cold_ns} ns, warm_mapped {warm_mapped_ns} ns, \
         warm_heap {warm_heap_ns} ns ({warm_over_heap:.2}x heap)"
    );
    println!(
        "faulted {} of {} file bytes ({:.1}%) for the 5% band; cache budget {} per worker, \
         evictions {}",
        cold_stats.bytes_faulted,
        total_file_bytes,
        fault_fraction * 100.0,
        budget,
        end_stats.evictions
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    total_file_bytes: u64,
    budget: usize,
    mapped_span: usize,
    heap_bytes: usize,
    cold_ns: u128,
    warm_mapped_ns: u128,
    warm_heap_ns: u128,
    bytes_faulted: u64,
    fault_fraction: f64,
    evictions: u64,
    identical: bool,
) {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"rows\": {ROWS},\n"));
    out.push_str(
        "  \"bench\": \"out-of-core tiered storage: cold vs warm filtered histogram through \
         lazy block residency at a block-cache budget one tenth of the file, vs the \
         heap-resident baseline (median ns); bytes faulted for a zone-skippable 5% band\",\n",
    );
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if cfg!(feature = "ooc") {
            "mmap (zero-copy, evictable)"
        } else {
            "pread (lazy, pinned)"
        }
    ));
    out.push_str(&format!(
        "  \"dataset\": {{\"total_file_bytes\": {total_file_bytes}, \
         \"block_cache_bytes_per_worker\": {budget}, \
         \"file_over_budget\": {:.1}, \"mapped_span_bytes\": {mapped_span}, \
         \"heap_baseline_bytes\": {heap_bytes}}},\n",
        total_file_bytes as f64 / budget.max(1) as f64
    ));
    out.push_str(&format!(
        "  \"filtered_histogram\": {{\"cold_ns\": {cold_ns}, \
         \"warm_mapped_ns\": {warm_mapped_ns}, \"warm_heap_ns\": {warm_heap_ns}, \
         \"warm_over_heap\": {:.3}}},\n",
        warm_mapped_ns as f64 / warm_heap_ns.max(1) as f64
    ));
    out.push_str(&format!(
        "  \"io_pruning\": {{\"bytes_faulted\": {bytes_faulted}, \
         \"total_file_bytes\": {total_file_bytes}, \
         \"fault_fraction\": {fault_fraction:.4}, \"evictions\": {evictions}}},\n"
    ));
    out.push_str(&format!(
        "  \"mapped_heap_bit_identical\": {identical}\n}}\n"
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ooc.json");
    std::fs::write(path, out).expect("write BENCH_ooc.json");
    println!("wrote {path}");
}
