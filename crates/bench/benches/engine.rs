//! Criterion benchmarks of end-to-end engine execution: full execution
//! trees (serialize → merge → byte-counted links) over a live cluster.

use criterion::{criterion_group, criterion_main, Criterion};
use hillview_bench::setup::BenchCluster;
use hillview_core::spreadsheet::Spreadsheet;
use hillview_core::QueryOptions;
use hillview_sketch::count::CountSketch;
use hillview_sketch::histogram::HistogramSketch;
use hillview_sketch::BucketSpec;
use hillview_viz::display::DisplaySpec;

fn bench_engine(c: &mut Criterion) {
    let bench = BenchCluster::new(4, 4, 50_000);
    let ds = bench.load_warm(5); // 650k rows
    let mut g = c.benchmark_group("engine_650k_rows_4x4");
    g.sample_size(10);

    g.bench_function("count_tree", |b| {
        b.iter(|| {
            bench
                .engine
                .run(ds, CountSketch::rows(), &QueryOptions::default())
                .unwrap()
        })
    });

    let spec = BucketSpec::numeric(-100.0, 600.0, 100);
    g.bench_function("histogram_tree_streaming", |b| {
        b.iter(|| {
            bench
                .engine
                .run(
                    ds,
                    HistogramSketch::streaming("DepDelay", spec.clone()),
                    &QueryOptions::default(),
                )
                .unwrap()
        })
    });

    let sheet = Spreadsheet::new(bench.engine.clone(), ds, DisplaySpec::new(600, 200));
    sheet.set_seed(7);
    g.bench_function("spreadsheet_histogram_with_cdf", |b| {
        b.iter(|| sheet.histogram_with_cdf("DepDelay", None).unwrap())
    });
    g.bench_function("spreadsheet_sort_view", |b| {
        b.iter(|| sheet.sort_view(&["DepDelay"], 20).unwrap())
    });
    g.bench_function("spreadsheet_heatmap", |b| {
        b.iter(|| sheet.heatmap("Distance", "AirTime").unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
