//! Fused-query benchmarks: one block pass from predicate to sketch
//! (`summarize_filtered`) vs the two-pass filter-then-sketch execution
//! (`filter_members` into a membership set, then `summarize` over it) vs
//! the per-row baseline (`filter_members_rowwise` + the rowwise kernel),
//! across selectivities × encodings, with the fused path timed under both
//! the active codegen and the forced-scalar fallback.
//!
//! Running `cargo bench --bench fused` rewrites `BENCH_fused.json` at the
//! repository root. The acceptance cases: on the selective packed and
//! delta (sorted, zone-map-skipping) columns the fused pass must beat the
//! two-pass baseline by ≥ 2x — the second decode and the intermediate
//! membership set are the only difference between the two.

use criterion::Criterion;
use hillview_columnar::column::{Column, DictColumn, F64Column, I64Column};
use hillview_columnar::predicate::filter_members_rowwise;
use hillview_columnar::{simd, ColumnKind, MembershipSet, NullMask, Predicate, Table};
use hillview_sketch::histogram::HistogramSketch;
use hillview_sketch::traits::Sketch;
use hillview_sketch::view::filtered_view;
use hillview_sketch::{BucketSpec, TableView};
use std::sync::Arc;

const ROWS: usize = 1_000_000;

struct Case {
    name: &'static str,
    encoding: String,
    selectivity: f64,
    rowwise_ns: u128,
    two_pass_ns: u128,
    fused_ns: u128,
    fused_scalar_ns: u128,
}

fn int_table(values: Vec<i64>) -> Table {
    Table::builder()
        .column(
            "X",
            ColumnKind::Int,
            Column::Int(I64Column::new(values, NullMask::none())),
        )
        .build()
        .unwrap()
}

fn run_case(
    c: &mut Criterion,
    cases: &mut Vec<Case>,
    name: &'static str,
    t: Table,
    p: Predicate,
    sk: HistogramSketch,
) {
    let encoding = match t.column(0) {
        Column::Int(col) => col.storage().kind().to_string(),
        Column::Double(_) => "plain-f64".to_string(),
        _ => "dict".to_string(),
    };
    let table = Arc::new(t);
    let v = TableView::full(table.clone());
    // All three executions must agree exactly before we time them.
    let narrowed_rowwise = TableView::with_members(
        table.clone(),
        Arc::new(
            filter_members_rowwise(&table, &p, &MembershipSet::full(table.num_rows())).unwrap(),
        ),
    );
    let want = sk.summarize_rowwise(&narrowed_rowwise, 0).unwrap();
    for force in [false, true] {
        simd::set_force_scalar(force);
        assert_eq!(
            sk.summarize_filtered(&v, &p, 0).unwrap(),
            want,
            "fused diverges from the rowwise reference in {name}"
        );
        assert_eq!(
            sk.summarize(&filtered_view(&v, &p).unwrap(), 0).unwrap(),
            want,
            "two-pass diverges from the rowwise reference in {name}"
        );
    }
    simd::set_force_scalar(false);
    let selectivity = narrowed_rowwise.len() as f64 / table.num_rows() as f64;
    let mut g = c.benchmark_group(name);
    g.sample_size(30);
    g.bench_function("rowwise", |b| {
        b.iter(|| {
            let narrowed = TableView::with_members(
                table.clone(),
                Arc::new(
                    filter_members_rowwise(&table, &p, &MembershipSet::full(table.num_rows()))
                        .unwrap(),
                ),
            );
            sk.summarize_rowwise(&narrowed, 0).unwrap()
        });
    });
    g.bench_function("two_pass", |b| {
        b.iter(|| sk.summarize(&filtered_view(&v, &p).unwrap(), 0).unwrap());
    });
    g.bench_function("fused", |b| {
        b.iter(|| sk.summarize_filtered(&v, &p, 0).unwrap());
    });
    simd::set_force_scalar(true);
    g.bench_function("fused_scalar", |b| {
        b.iter(|| sk.summarize_filtered(&v, &p, 0).unwrap());
    });
    simd::set_force_scalar(false);
    g.finish();
    let ms = c.measurements();
    cases.push(Case {
        name,
        encoding,
        selectivity,
        rowwise_ns: ms[ms.len() - 4].median.as_nanos(),
        two_pass_ns: ms[ms.len() - 3].median.as_nanos(),
        fused_ns: ms[ms.len() - 2].median.as_nanos(),
        fused_scalar_ns: ms[ms.len() - 1].median.as_nanos(),
    });
}

fn main() {
    let mut c = Criterion::default();
    let mut cases = Vec::new();
    let spec = || BucketSpec::numeric(0.0, 4096.0, 32);

    let mut state = 0x5EEDu64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let shuffled: Vec<i64> = (0..ROWS).map(|_| (next() % 4096) as i64).collect();
    // Sorted-with-jitter small-range ints: the jitter defeats run-length
    // encoding (storage stays bit-packed) while each 64-row block keeps a
    // tight min/max window, so a drill-down range on this *sorted* column
    // engages zone-map skipping for both stages — the acceptance case. The
    // ~20% band keeps the two-pass membership sparse (below the §5.6
    // threshold), which is exactly the regime interactive zooms live in:
    // the two-pass path pays a per-row storage probe for every selected
    // row, the fused pass decodes each surviving block once.
    //
    // The shuffled variants document the bandwidth-bound regime honestly:
    // with no zone-map skips the predicate decode dominates both paths, so
    // fusion only removes the (small) membership materialization.
    let sorted_jitter: Vec<i64> = (0..ROWS)
        .map(|i| (i / 244) as i64 + (next() % 4) as i64)
        .collect();
    run_case(
        &mut c,
        &mut cases,
        "packed_selective",
        int_table(sorted_jitter),
        Predicate::range("X", 1000.0, 1820.0),
        HistogramSketch::streaming("X", spec()),
    );
    run_case(
        &mut c,
        &mut cases,
        "packed_shuffled_selective",
        int_table(shuffled.clone()),
        Predicate::range("X", 100.0, 104.0),
        HistogramSketch::streaming("X", spec()),
    );
    run_case(
        &mut c,
        &mut cases,
        "packed_unselective",
        int_table(shuffled),
        Predicate::range("X", 0.0, 2048.0),
        HistogramSketch::streaming("X", spec()),
    );

    // Plain f64 column (chart-zoom shape): lane compares on the raw slice
    // feed surviving lanes straight into the bucket kernel.
    let doubles: Vec<f64> = (0..ROWS)
        .map(|i| ((i * 7919) % 10_000) as f64 * 0.1)
        .collect();
    let t = Table::builder()
        .column(
            "X",
            ColumnKind::Double,
            Column::Double(F64Column::new(doubles, NullMask::none())),
        )
        .build()
        .unwrap();
    run_case(
        &mut c,
        &mut cases,
        "f64_selective",
        t,
        Predicate::range("X", 500.0, 510.0),
        HistogramSketch::streaming("X", BucketSpec::numeric(0.0, 1000.0, 32)),
    );

    // Sequential ids → delta storage: a selective range on sorted data is
    // the pure zone-map case for BOTH stages — blocks outside the band are
    // skipped by the predicate and therefore never decoded for the kernel.
    run_case(
        &mut c,
        &mut cases,
        "sorted_delta_zone_skip",
        int_table(
            (0..ROWS as i64)
                .map(|i| i * 1000 + (i * 7919) % 613)
                .collect(),
        ),
        Predicate::range("X", 500_000_000.0, 510_000_000.0),
        HistogramSketch::streaming("X", BucketSpec::numeric(0.0, 1.0e9, 32)),
    );

    // Dictionary column: categorical Equals consults the per-block code
    // zone maps, and the surviving codes flow into the string histogram
    // through the same fused pass.
    let names: Vec<String> = (0..64).map(|i| format!("cat{i:02}")).collect();
    let t = Table::builder()
        .column(
            "X",
            ColumnKind::Category,
            Column::Cat(DictColumn::from_strings(
                (0..ROWS).map(|i| Some(names[(i * 31) % 64].as_str())),
            )),
        )
        .build()
        .unwrap();
    run_case(
        &mut c,
        &mut cases,
        "dict_equals_selective",
        t,
        Predicate::equals("X", "cat07"),
        HistogramSketch::streaming(
            "X",
            BucketSpec::strings(names.iter().map(|s| Arc::from(s.as_str())).collect()),
        ),
    );

    write_json(&cases);
    println!(
        "\n{:<26} {:>10} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "case", "encoding", "rowwise_ns", "two_pass_ns", "fused_ns", "scalar_ns", "speedup"
    );
    for case in &cases {
        println!(
            "{:<26} {:>10} {:>12} {:>12} {:>12} {:>12} {:>8.1}x",
            case.name,
            case.encoding,
            case.rowwise_ns,
            case.two_pass_ns,
            case.fused_ns,
            case.fused_scalar_ns,
            case.two_pass_ns as f64 / case.fused_ns.max(1) as f64,
        );
    }
}

fn write_json(cases: &[Case]) {
    let mut out = String::from(
        "{\n  \"rows\": 1000000,\n  \"bench\": \"fused (predicate+sketch, one block pass) vs two-pass filter-then-sketch vs per-row baseline: median ns per filtered histogram query (simd + forced-scalar)\",\n",
    );
    out.push_str(&format!("  \"simd_available\": {},\n", simd::active()));
    out.push_str("  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let vs_two_pass = case.two_pass_ns as f64 / case.fused_ns.max(1) as f64;
        let vs_rowwise = case.rowwise_ns as f64 / case.fused_ns.max(1) as f64;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"encoding\": \"{}\", \"selectivity\": {:.4}, \"rowwise_ns\": {}, \"two_pass_ns\": {}, \"fused_ns\": {}, \"fused_scalar_ns\": {}, \"fused_vs_two_pass\": {:.2}, \"fused_vs_rowwise\": {:.2}}}{}\n",
            case.name,
            case.encoding,
            case.selectivity,
            case.rowwise_ns,
            case.two_pass_ns,
            case.fused_ns,
            case.fused_scalar_ns,
            vs_two_pass,
            vs_rowwise,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fused.json");
    std::fs::write(path, out).expect("write BENCH_fused.json");
    println!("wrote {path}");
}
