//! Thread-scaling benchmark for work-stealing parallel leaf execution.
//!
//! One worker holds a single 1M-row flights-shaped micropartition — the
//! worst case for the old one-task-per-partition executor, which ran it on
//! one pool thread regardless of core count. With recursive range
//! splitting (leaf grain 64k rows → 16 sub-tasks) the same query spreads
//! across every pool thread. This bench measures median latency of three
//! kernels (exact histogram, Misra-Gries heavy hitters, moments) at 1, 2,
//! 4, and 8 pool threads, over plain and packed column storage, asserts
//! the bytes are identical across thread counts (the determinism
//! contract), and rewrites `BENCH_parallel.json` at the repository root
//! with the scaling curve and the 8-thread-vs-1-thread speedup.
//!
//! Note: speedups are bounded by the physical cores of the host running
//! the bench; the JSON records `host_cores` so the curve can be read in
//! context.

use criterion::Criterion;
use hillview_columnar::column::{Column, DictColumn, I64Column};
use hillview_columnar::udf::UdfRegistry;
use hillview_columnar::{ColumnKind, NullMask, Table};
use hillview_core::dataset::{FnSource, SourceRegistry, SourceSpec};
use hillview_core::erased::{erase, ErasedSketch};
use hillview_core::{Cluster, ClusterConfig, DatasetId, QueryOptions};
use hillview_sketch::buckets::BucketSpec;
use hillview_sketch::heavy::MisraGriesSketch;
use hillview_sketch::histogram::HistogramSketch;
use hillview_sketch::moments::MomentsSketch;
use std::sync::Arc;
use std::time::Duration;

const ROWS: usize = 1_000_000;
const THREADS: [usize; 4] = [1, 2, 4, 8];
const GRAIN: usize = 65_536;

/// splitmix64, the same generator the other benches use.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A 1M-row flights-shaped table: a 12-bit-range delay column (mostly
/// small, occasionally huge — shuffled, so it bit-packs but cannot
/// run-length encode) and a skewed low-cardinality carrier column.
fn flights_shaped(packed: bool) -> Table {
    const CARRIERS: [&str; 12] = [
        "WN", "DL", "AA", "UA", "OO", "B6", "AS", "NK", "F9", "G4", "HA", "YX",
    ];
    let mut state = 0xF11u64;
    let mut delays = Vec::with_capacity(ROWS);
    let mut carriers: Vec<Option<&str>> = Vec::with_capacity(ROWS);
    for _ in 0..ROWS {
        let r = mix(&mut state);
        // Delay in [-60, 4035]: a 4096-value frame.
        delays.push((r % 4096) as i64 - 60);
        // Zipf-ish carrier skew: the top two carriers take half the rows.
        let c = (mix(&mut state) % 100) as usize;
        let idx = match c {
            0..=29 => 0,
            30..=49 => 1,
            50..=64 => 2,
            65..=76 => 3,
            _ => 4 + c % 8,
        };
        carriers.push(Some(CARRIERS[idx]));
    }
    let delay_col = if packed {
        I64Column::new(delays, NullMask::none())
    } else {
        I64Column::plain(delays, NullMask::none())
    };
    let carrier_packed = DictColumn::from_strings(carriers);
    let carrier_col = if packed {
        carrier_packed
    } else {
        DictColumn::plain(
            carrier_packed.codes().to_vec(),
            carrier_packed.dictionary().clone(),
            carrier_packed.nulls().clone(),
        )
    };
    Table::builder()
        .column("DepDelay", ColumnKind::Int, Column::Int(delay_col))
        .column("Carrier", ColumnKind::Category, Column::Cat(carrier_col))
        .build()
        .unwrap()
}

/// One worker × `threads` pool threads holding the 1M-row table as a
/// single micropartition, so intra-partition splitting is the only source
/// of parallelism.
fn cluster(threads: usize, packed: bool) -> (Arc<Cluster>, DatasetId) {
    let mut sources = SourceRegistry::new();
    sources.register(Arc::new(FnSource::new(
        "flights1m",
        move |_w, _n, _mp, _snap| Ok(vec![flights_shaped(packed)]),
    )));
    let cfg = ClusterConfig {
        workers: 1,
        threads_per_worker: threads,
        micropartition_rows: ROWS,
        batch_interval: Duration::from_millis(100),
        link: hillview_net::LinkConfig::instant(),
        worker_timeout: std::time::Duration::from_secs(30),
        leaf_grain_rows: GRAIN,
        cache_budget_bytes: 32 << 20,
        block_cache_bytes: 256 << 20,
    };
    let c = Cluster::new(cfg, sources, UdfRegistry::new());
    let ds = DatasetId(1);
    c.load(
        ds,
        &SourceSpec {
            source: Arc::from("flights1m"),
            snapshot: 0,
        },
    )
    .unwrap();
    (c, ds)
}

struct Case {
    sketch: &'static str,
    encoding: &'static str,
    /// Median ns, aligned with `THREADS`.
    ns: Vec<u128>,
}

fn main() {
    let mut c = Criterion::default();
    let mut cases = Vec::new();
    let sketches: Vec<(&'static str, Arc<dyn ErasedSketch>)> = vec![
        (
            "histogram",
            erase(HistogramSketch::streaming(
                "DepDelay",
                BucketSpec::numeric(-60.0, 4036.0, 100),
            )),
        ),
        (
            "heavy_hitters_mg",
            erase(MisraGriesSketch::new("Carrier", 8)),
        ),
        ("moments", erase(MomentsSketch::new("DepDelay", 2))),
    ];

    for packed in [false, true] {
        let encoding = if packed { "packed" } else { "plain" };
        let clusters: Vec<_> = THREADS.iter().map(|&t| cluster(t, packed)).collect();
        for (name, sketch) in &sketches {
            // Determinism gate before timing: every thread count must
            // produce identical bytes.
            let reference = clusters[0]
                .0
                .run_erased(clusters[0].1, sketch, &QueryOptions::default())
                .unwrap()
                .bytes;
            for (cl, ds) in &clusters[1..] {
                let got = cl
                    .run_erased(*ds, sketch, &QueryOptions::default())
                    .unwrap()
                    .bytes;
                assert_eq!(got, reference, "{name}/{encoding} differs across threads");
            }
            let mut g = c.benchmark_group(&format!("{name}_{encoding}"));
            g.sample_size(10);
            for (i, &threads) in THREADS.iter().enumerate() {
                let (cl, ds) = &clusters[i];
                g.bench_function(&format!("{threads}t"), |b| {
                    b.iter(|| {
                        cl.run_erased(*ds, sketch, &QueryOptions::default())
                            .unwrap()
                    });
                });
            }
            g.finish();
            let ms = c.measurements();
            let ns: Vec<u128> = ms[ms.len() - THREADS.len()..]
                .iter()
                .map(|m| m.median.as_nanos())
                .collect();
            cases.push(Case {
                sketch: name,
                encoding,
                ns,
            });
        }
    }

    write_json(&cases);
    println!(
        "\n{:<18} {:>8} {:>11} {:>11} {:>11} {:>11} {:>9}",
        "sketch", "encoding", "1t_ns", "2t_ns", "4t_ns", "8t_ns", "8t_speedup"
    );
    for case in &cases {
        println!(
            "{:<18} {:>8} {:>11} {:>11} {:>11} {:>11} {:>8.2}x",
            case.sketch,
            case.encoding,
            case.ns[0],
            case.ns[1],
            case.ns[2],
            case.ns[3],
            case.ns[0] as f64 / case.ns[3].max(1) as f64,
        );
    }
}

fn write_json(cases: &[Case]) {
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut out = format!(
        "{{\n  \"rows\": {ROWS},\n  \"leaf_grain_rows\": {GRAIN},\n  \"host_cores\": {cores},\n  \"bench\": \"work-stealing leaf split: median query ns on one 1M-row micropartition at 1/2/4/8 pool threads; results asserted bit-identical across thread counts\",\n  \"cases\": [\n"
    );
    for (i, case) in cases.iter().enumerate() {
        let threads: Vec<String> = THREADS
            .iter()
            .zip(&case.ns)
            .map(|(&t, &ns)| format!("{{\"threads\": {t}, \"ns\": {ns}}}"))
            .collect();
        out.push_str(&format!(
            "    {{\"sketch\": \"{}\", \"encoding\": \"{}\", \"runs\": [{}], \"speedup_8t_vs_1t\": {:.2}}}{}\n",
            case.sketch,
            case.encoding,
            threads.join(", "),
            case.ns[0] as f64 / case.ns[3].max(1) as f64,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, out).expect("write BENCH_parallel.json");
    println!("wrote {path}");
}
