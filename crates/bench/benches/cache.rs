//! Sketch-result cache benchmarks over a live cluster: cold fused
//! execution vs. a warm per-worker cache hit on the drill-down shape
//! (`packed_selective`, the same sorted-jitter column and range the fused
//! bench accepts on), single-flight coalescing under concurrent identical
//! queries, and the cost-based fuse-vs-materialize planner against both
//! static strategies on a repeated-query sequence.
//!
//! Running `cargo bench --bench cache` rewrites `BENCH_cache.json` at the
//! repository root. The acceptance cases: the warm hit must beat the cold
//! miss by ≥ 10x on `packed_selective`, and on every planner scenario the
//! cost-based plan must land within 1.3x of the better static strategy.

use criterion::Criterion;
use hillview_columnar::column::{Column, I64Column};
use hillview_columnar::udf::UdfRegistry;
use hillview_columnar::{ColumnKind, NullMask, Predicate, Table};
use hillview_core::dataset::SourceRegistry;
use hillview_core::erased::{erase, ErasedSketch};
use hillview_core::{Cluster, ClusterConfig, Engine, FnSource, QueryOptions};
use hillview_sketch::histogram::HistogramSketch;
use hillview_sketch::BucketSpec;
use hillview_storage::partition_table;
use std::sync::Arc;
use std::time::Instant;

const ROWS: usize = 1_000_000;
const WORKERS: usize = 2;

fn mix(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The engine under test: 2 workers × 4 threads over two 1M-row integer
/// columns sharded by global row index, so the cluster-wide data matches
/// the single-table fused bench exactly.
///
/// * `packed` — sorted with jitter (`i/244 + mix(i)%4`): bit-packed
///   storage, tight per-block zone windows. A drill-down range engages
///   zone-map skipping, so the fused scan only decodes the ~20% band.
/// * `shuffled` — `mix(i) % 4096`: no zone skips, every block decodes.
///   A selective range here is the regime where materializing the
///   membership once beats re-running the full-scan predicate per query.
fn bench_engine() -> Arc<Engine> {
    let mut sources = SourceRegistry::new();
    let shard = |w: usize, value: fn(u64) -> i64| -> Vec<i64> {
        let per = ROWS / WORKERS;
        (w * per..(w + 1) * per).map(|i| value(i as u64)).collect()
    };
    let table = |values: Vec<i64>, mp: usize| {
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Int,
                Column::Int(I64Column::new(values, NullMask::none())),
            )
            .build()
            .unwrap();
        Ok(partition_table(&t, mp))
    };
    sources.register(Arc::new(FnSource::new(
        "packed",
        move |w, _n, mp, _snap| table(shard(w, |i| (i / 244) as i64 + (mix(i) % 4) as i64), mp),
    )));
    sources.register(Arc::new(FnSource::new(
        "shuffled",
        move |w, _n, mp, _snap| table(shard(w, |i| (mix(i) % 4096) as i64), mp),
    )));
    let cfg = ClusterConfig {
        workers: WORKERS,
        threads_per_worker: 4,
        micropartition_rows: 125_000,
        batch_interval: std::time::Duration::from_millis(100),
        link: hillview_net::LinkConfig::instant(),
        worker_timeout: std::time::Duration::from_secs(30),
        leaf_grain_rows: 65_536,
        cache_budget_bytes: 32 << 20,
        block_cache_bytes: 256 << 20,
    };
    Arc::new(Engine::new(Cluster::new(
        cfg,
        sources,
        UdfRegistry::with_builtins(),
    )))
}

fn histogram() -> Arc<dyn ErasedSketch> {
    erase(HistogramSketch::streaming(
        "X",
        BucketSpec::numeric(0.0, 4096.0, 32),
    ))
}

fn uncached() -> QueryOptions {
    QueryOptions {
        cache: false,
        ..Default::default()
    }
}

fn main() {
    let mut c = Criterion::default();
    let engine = bench_engine();
    let cluster = engine.cluster().clone();
    let packed = engine.load("packed", 0).unwrap();
    let shuffled = engine.load("shuffled", 0).unwrap();
    let sk = histogram();
    let drill = || Predicate::range("X", 1000.0, 1820.0);

    // ------------------------------------------------------------------
    // Cold vs. warm: the same fused filtered-histogram drill-down, timed
    // as a pure computation (`cache: false`), as a cache miss (caches
    // cleared inside the measured iteration), and as a warm hit.
    // ------------------------------------------------------------------
    let mut g = c.benchmark_group("packed_selective");
    g.sample_size(20);
    g.bench_function("uncached", |b| {
        b.iter(|| {
            engine
                .run_filtered_erased(packed, drill(), &sk, &uncached())
                .unwrap()
        });
    });
    g.bench_function("cold_miss", |b| {
        b.iter(|| {
            for w in 0..cluster.num_workers() {
                cluster.worker(w).cache().clear();
            }
            engine
                .run_filtered_erased(packed, drill(), &sk, &QueryOptions::default())
                .unwrap()
        });
    });
    // Prime once, then every iteration is served from the worker caches.
    engine
        .run_filtered_erased(packed, drill(), &sk, &QueryOptions::default())
        .unwrap();
    g.bench_function("warm_hit", |b| {
        b.iter(|| {
            engine
                .run_filtered_erased(packed, drill(), &sk, &QueryOptions::default())
                .unwrap()
        });
    });
    g.finish();
    let ms = c.measurements();
    let uncached_ns = ms[ms.len() - 3].median.as_nanos();
    let cold_ns = ms[ms.len() - 2].median.as_nanos();
    let warm_ns = ms[ms.len() - 1].median.as_nanos();

    // Sanity outside the timers: the warm path actually hits.
    let before = cluster.cache_stats();
    engine
        .run_filtered_erased(packed, drill(), &sk, &QueryOptions::default())
        .unwrap();
    let after = cluster.cache_stats();
    assert_eq!(
        after.hits - before.hits,
        cluster.num_workers() as u64,
        "warm drill-down was not served from every worker's cache"
    );

    // ------------------------------------------------------------------
    // Single-flight coalescing: N threads fire the identical cold query;
    // one flight per worker computes, everyone else waits on it. Counters
    // prove the dedup; the wall clock shows N queries for ~1 cold price.
    // ------------------------------------------------------------------
    const THREADS: usize = 8;
    for w in 0..cluster.num_workers() {
        cluster.worker(w).cache().clear();
    }
    let base = cluster.cache_stats();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let engine = &engine;
            let sk = &sk;
            scope.spawn(move || {
                engine
                    .run_filtered_erased(packed, drill(), sk, &QueryOptions::default())
                    .unwrap()
            });
        }
    });
    let coalesce_ns = started.elapsed().as_nanos();
    let delta = {
        let now = cluster.cache_stats();
        (
            now.misses - base.misses,
            now.hits - base.hits,
            now.coalesced - base.coalesced,
            now.insertions - base.insertions,
        )
    };
    assert_eq!(
        delta.0 + delta.1,
        (THREADS * cluster.num_workers()) as u64,
        "coalescing run lost queries (misses {} + hits {})",
        delta.0,
        delta.1
    );

    // ------------------------------------------------------------------
    // Planner regret: a burst of identical filtered queries (result cache
    // off, so every query really executes) under the cost-based plan vs.
    // both static strategies. `packed_selective` is the zone-skip regime
    // where staying fused wins; `shuffled_selective` (full decode, ~5%
    // selectivity) is the regime where materializing once wins.
    // ------------------------------------------------------------------
    const BURST: usize = 6;
    let scenarios = [
        ("planner_packed_selective", packed, drill()),
        (
            "planner_shuffled_selective",
            shuffled,
            Predicate::range("X", 100.0, 304.0),
        ),
    ];
    let mut planner_cases = Vec::new();
    for (name, data, pred) in scenarios {
        let mut g = c.benchmark_group(name);
        g.sample_size(10);
        g.bench_function("fused_always", |b| {
            b.iter(|| {
                for _ in 0..BURST {
                    engine
                        .run_filtered_erased(data, pred.clone(), &sk, &uncached())
                        .unwrap();
                }
            });
        });
        g.bench_function("materialize_always", |b| {
            b.iter(|| {
                let id = engine.filter(data, pred.clone()).unwrap();
                for _ in 0..BURST {
                    engine.run_erased(id, &sk, &uncached()).unwrap();
                }
            });
        });
        g.bench_function("planner", |b| {
            b.iter(|| {
                let id = engine.filter_lazy(data, pred.clone());
                for _ in 0..BURST {
                    engine.run_erased(id, &sk, &uncached()).unwrap();
                }
            });
        });
        g.finish();
        let ms = c.measurements();
        let fused_ns = ms[ms.len() - 3].median.as_nanos();
        let mat_ns = ms[ms.len() - 2].median.as_nanos();
        let planner_ns = ms[ms.len() - 1].median.as_nanos();
        planner_cases.push((name, fused_ns, mat_ns, planner_ns));
    }

    write_json(
        uncached_ns,
        cold_ns,
        warm_ns,
        THREADS,
        coalesce_ns,
        delta,
        &planner_cases,
    );

    println!(
        "\npacked_selective: uncached {uncached_ns} ns, cold_miss {cold_ns} ns, warm_hit \
         {warm_ns} ns ({:.1}x warm-over-cold)",
        cold_ns as f64 / warm_ns.max(1) as f64
    );
    println!(
        "coalesce {THREADS} threads: {coalesce_ns} ns total, {} misses / {} hits / {} \
         coalesced waits / {} insertions",
        delta.0, delta.1, delta.2, delta.3
    );
    for (name, fused_ns, mat_ns, planner_ns) in &planner_cases {
        let best = (*fused_ns).min(*mat_ns);
        println!(
            "{name}: fused_always {fused_ns} ns, materialize_always {mat_ns} ns, planner \
             {planner_ns} ns (regret {:.2}x)",
            *planner_ns as f64 / best.max(1) as f64
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    uncached_ns: u128,
    cold_ns: u128,
    warm_ns: u128,
    threads: usize,
    coalesce_ns: u128,
    (misses, hits, coalesced, insertions): (u64, u64, u64, u64),
    planner: &[(&str, u128, u128, u128)],
) {
    let mut out = String::from("{\n  \"rows\": 1000000,\n");
    out.push_str(
        "  \"bench\": \"sketch-result cache: cold fused drill-down vs warm per-worker hit, \
         single-flight coalescing, and cost-based fuse-vs-materialize planner regret vs both \
         static strategies (median ns)\",\n",
    );
    out.push_str(&format!(
        "  \"packed_selective\": {{\"uncached_ns\": {uncached_ns}, \"cold_miss_ns\": {cold_ns}, \
         \"warm_hit_ns\": {warm_ns}, \"warm_over_cold\": {:.2}}},\n",
        cold_ns as f64 / warm_ns.max(1) as f64
    ));
    out.push_str(&format!(
        "  \"coalesce\": {{\"threads\": {threads}, \"total_ns\": {coalesce_ns}, \
         \"cold_miss_ns\": {cold_ns}, \"misses\": {misses}, \"hits\": {hits}, \
         \"coalesced_waits\": {coalesced}, \"insertions\": {insertions}}},\n",
    ));
    out.push_str("  \"planner\": [\n");
    for (i, (name, fused_ns, mat_ns, planner_ns)) in planner.iter().enumerate() {
        let best = (*fused_ns).min(*mat_ns);
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"queries\": 6, \"fused_always_ns\": {fused_ns}, \
             \"materialize_always_ns\": {mat_ns}, \"planner_ns\": {planner_ns}, \
             \"regret_vs_best_static\": {:.3}}}{}\n",
            *planner_ns as f64 / best.max(1) as f64,
            if i + 1 < planner.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cache.json");
    std::fs::write(path, out).expect("write BENCH_cache.json");
    println!("wrote {path}");
}
