//! Criterion microbenchmarks of the sketch kernels (single thread).
//!
//! Complements the `figures micro` table (§7.2.1): per-kernel throughput on
//! one million rows, including the row-store DB baseline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hillview_baseline::RowDb;
use hillview_columnar::SortOrder;
use hillview_data::{generate_flights, FlightsConfig};
use hillview_sketch::buckets::BucketSpec;
use hillview_sketch::distinct::DistinctSketch;
use hillview_sketch::heatmap::HeatmapSketch;
use hillview_sketch::heavy::MisraGriesSketch;
use hillview_sketch::histogram::HistogramSketch;
use hillview_sketch::nextk::NextKSketch;
use hillview_sketch::traits::Sketch;
use hillview_sketch::TableView;
use std::sync::Arc;

const ROWS: usize = 1_000_000;

fn flights_view() -> TableView {
    let t = generate_flights(&FlightsConfig::new(ROWS, 0xBEEF));
    TableView::full(Arc::new(t))
}

fn bench_kernels(c: &mut Criterion) {
    let view = flights_view();
    let mut g = c.benchmark_group("vizketch_1M_rows");
    g.sample_size(10);

    let spec = BucketSpec::numeric(-100.0, 600.0, 100);
    let streaming = HistogramSketch::streaming("DepDelay", spec.clone());
    g.bench_function("histogram_streaming", |b| {
        b.iter(|| streaming.summarize(&view, 0).unwrap())
    });

    let sampled = HistogramSketch::sampled("DepDelay", spec, 0.05);
    let mut seed = 0u64;
    g.bench_function("histogram_sampled_5pct", |b| {
        b.iter(|| {
            seed += 1;
            sampled.summarize(&view, seed).unwrap()
        })
    });

    let heatmap = HeatmapSketch::streaming(
        "Distance",
        "AirTime",
        BucketSpec::numeric(0.0, 3000.0, 200),
        BucketSpec::numeric(0.0, 500.0, 66),
    );
    g.bench_function("heatmap_streaming", |b| {
        b.iter(|| heatmap.summarize(&view, 0).unwrap())
    });

    let nextk = NextKSketch::first_page(SortOrder::ascending(&["Carrier", "DepDelay"]), 20);
    g.bench_function("next_items_k20", |b| {
        b.iter(|| nextk.summarize(&view, 0).unwrap())
    });

    let hll = DistinctSketch::new("TailNum");
    g.bench_function("distinct_hll", |b| {
        b.iter(|| hll.summarize(&view, 0).unwrap())
    });

    let mg = MisraGriesSketch::new("Carrier", 14);
    g.bench_function("heavy_hitters_mg", |b| {
        b.iter(|| mg.summarize(&view, 0).unwrap())
    });

    g.finish();
}

fn bench_db_baseline(c: &mut Criterion) {
    let t = generate_flights(&FlightsConfig::new(ROWS, 0xBEEF));
    let mut g = c.benchmark_group("baseline_1M_rows");
    g.sample_size(10);
    g.bench_function("rowdb_histogram", |b| {
        b.iter_batched(
            || {
                let mut db = RowDb::create(&["DepDelay"]);
                db.insert_table(&t);
                db
            },
            |db| db.histogram("DepDelay", -100.0, 600.0, 100),
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_kernels, bench_db_baseline);
criterion_main!(benches);
