//! Filter-pipeline benchmarks: block-wise predicate evaluation
//! (`filter_members`) vs the per-row baseline (`filter_members_rowwise`,
//! exactly the loop the worker ran before the block pipeline), across
//! selectivities × encodings, under the active codegen *and* the
//! forced-scalar fallback.
//!
//! Running `cargo bench --bench filter` rewrites `BENCH_filter.json` at
//! the repository root. The acceptance cases: a selective `Range` on a
//! bit-packed 1M-row column must beat the rowwise baseline by ≥ 5x, and
//! the sorted cases must show zone-map skipping (block time collapses to
//! the boundary blocks while the rowwise baseline still walks every row).

use criterion::Criterion;
use hillview_columnar::column::{Column, F64Column, I64Column};
use hillview_columnar::predicate::{filter_members, filter_members_rowwise};
use hillview_columnar::{simd, ColumnKind, MembershipSet, NullMask, Predicate, Table};

const ROWS: usize = 1_000_000;

struct Case {
    name: &'static str,
    encoding: String,
    selectivity: f64,
    rowwise_ns: u128,
    block_ns: u128,
    block_scalar_ns: u128,
}

fn int_table(values: Vec<i64>) -> Table {
    Table::builder()
        .column(
            "X",
            ColumnKind::Int,
            Column::Int(I64Column::new(values, NullMask::none())),
        )
        .build()
        .unwrap()
}

fn run_case(c: &mut Criterion, cases: &mut Vec<Case>, name: &'static str, t: Table, p: Predicate) {
    let encoding = match t.column(0) {
        Column::Int(col) => col.storage().kind().to_string(),
        Column::Double(_) => "plain-f64".to_string(),
        _ => "dict".to_string(),
    };
    let parent = MembershipSet::full(t.num_rows());
    // The pipelines must agree exactly before we time them.
    let want: Vec<usize> = filter_members_rowwise(&t, &p, &parent)
        .unwrap()
        .iter()
        .collect();
    for force in [false, true] {
        simd::set_force_scalar(force);
        let got: Vec<usize> = filter_members(&t, &p, &parent).unwrap().iter().collect();
        assert_eq!(got, want, "block and rowwise filters diverge in {name}");
    }
    simd::set_force_scalar(false);
    let selectivity = want.len() as f64 / t.num_rows() as f64;
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.bench_function("rowwise", |b| {
        b.iter(|| filter_members_rowwise(&t, &p, &parent).unwrap().len());
    });
    g.bench_function("block", |b| {
        b.iter(|| filter_members(&t, &p, &parent).unwrap().len());
    });
    simd::set_force_scalar(true);
    g.bench_function("block_scalar", |b| {
        b.iter(|| filter_members(&t, &p, &parent).unwrap().len());
    });
    simd::set_force_scalar(false);
    g.finish();
    let ms = c.measurements();
    cases.push(Case {
        name,
        encoding,
        selectivity,
        rowwise_ns: ms[ms.len() - 3].median.as_nanos(),
        block_ns: ms[ms.len() - 2].median.as_nanos(),
        block_scalar_ns: ms[ms.len() - 1].median.as_nanos(),
    });
}

fn main() {
    let mut c = Criterion::default();
    let mut cases = Vec::new();

    // Shuffled small-range ints → bit-packed storage; compares run in the
    // packed-delta domain. Selective (zoom into ~0.1%) and unselective
    // (half the data) ranges — the acceptance pair.
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let shuffled: Vec<i64> = (0..ROWS).map(|_| (next() % 4096) as i64).collect();
    run_case(
        &mut c,
        &mut cases,
        "packed_selective",
        int_table(shuffled.clone()),
        Predicate::range("X", 100.0, 104.0),
    );
    run_case(
        &mut c,
        &mut cases,
        "packed_unselective",
        int_table(shuffled),
        Predicate::range("X", 0.0, 2048.0),
    );

    // Plain f64 column (chart-zoom shape): lane compares on the raw slice.
    let doubles: Vec<f64> = (0..ROWS)
        .map(|i| ((i * 7919) % 10_000) as f64 * 0.1)
        .collect();
    let t = Table::builder()
        .column(
            "X",
            ColumnKind::Double,
            Column::Double(F64Column::new(doubles, NullMask::none())),
        )
        .build()
        .unwrap();
    run_case(
        &mut c,
        &mut cases,
        "f64_selective",
        t,
        Predicate::range("X", 500.0, 501.0),
    );

    // Sorted low-cardinality → run-length storage: one compare per run,
    // and zone maps skip every block outside the selected band.
    run_case(
        &mut c,
        &mut cases,
        "sorted_runlength_zone_skip",
        int_table((0..ROWS as i64).map(|i| i / 128).collect()),
        Predicate::range("X", 4000.0, 4010.0),
    );

    // Sequential ids → delta storage: a selective range on sorted data is
    // the pure zone-map case (only boundary blocks decode).
    run_case(
        &mut c,
        &mut cases,
        "sorted_delta_zone_skip",
        int_table(
            (0..ROWS as i64)
                .map(|i| i * 1000 + (i * 7919) % 613)
                .collect(),
        ),
        Predicate::range("X", 500_000_000.0, 501_000_000.0),
    );

    write_json(&cases);
    println!(
        "\n{:<28} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "case", "encoding", "rowwise_ns", "block_ns", "scalar_ns", "speedup"
    );
    for case in &cases {
        println!(
            "{:<28} {:>12} {:>12} {:>12} {:>12} {:>8.1}x",
            case.name,
            case.encoding,
            case.rowwise_ns,
            case.block_ns,
            case.block_scalar_ns,
            case.rowwise_ns as f64 / case.block_ns.max(1) as f64,
        );
    }
}

fn write_json(cases: &[Case]) {
    let mut out = String::from(
        "{\n  \"rows\": 1000000,\n  \"bench\": \"block-wise filter pipeline vs per-row baseline: median ns per full filter (simd + forced-scalar)\",\n",
    );
    out.push_str(&format!("  \"simd_available\": {},\n", simd::active()));
    out.push_str("  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let speedup = case.rowwise_ns as f64 / case.block_ns.max(1) as f64;
        let simd_speedup = case.block_scalar_ns as f64 / case.block_ns.max(1) as f64;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"encoding\": \"{}\", \"selectivity\": {:.4}, \"rowwise_ns\": {}, \"block_ns\": {}, \"block_scalar_ns\": {}, \"block_speedup\": {:.2}, \"block_simd_speedup\": {:.2}}}{}\n",
            case.name,
            case.encoding,
            case.selectivity,
            case.rowwise_ns,
            case.block_ns,
            case.block_scalar_ns,
            speedup,
            simd_speedup,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_filter.json");
    std::fs::write(path, out).expect("write BENCH_filter.json");
    println!("wrote {path}");
}
