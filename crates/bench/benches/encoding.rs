//! Compressed-column benchmarks: in-memory footprint and block-scan
//! throughput of packed vs plain integer columns (the tentpole measurement
//! for the encoding layer).
//!
//! Each case builds the same 1M-row logical column twice — once forced
//! plain, once auto-encoded at ingest — and runs the identical block
//! histogram kernel over both, under the active codegen *and* under the
//! forced-scalar fallback (`set_force_scalar`), so the JSON records both
//! the packed-vs-plain gap and the simd-vs-scalar speedup per side.
//! Running `cargo bench --bench encoding` rewrites `BENCH_encoding.json`
//! at the repository root with the footprint ratio (plain bytes / packed
//! bytes) and the throughput ratio (packed ns / plain ns).

use criterion::Criterion;
use hillview_columnar::column::{Column, I64Column};
use hillview_columnar::{simd, ColumnKind, NullMask, Table};
use hillview_sketch::buckets::BucketSpec;
use hillview_sketch::histogram::HistogramSketch;
use hillview_sketch::traits::Sketch;
use hillview_sketch::TableView;
use std::sync::Arc;

const ROWS: usize = 1_000_000;

struct Case {
    name: &'static str,
    encoding: String,
    plain_bytes: usize,
    packed_bytes: usize,
    plain_ns: u128,
    packed_ns: u128,
    plain_scalar_ns: u128,
    packed_scalar_ns: u128,
}

/// Build plain and auto-encoded single-column tables over the same values.
fn tables(values: Vec<i64>) -> (Arc<Table>, Arc<Table>, String) {
    let plain = Table::builder()
        .column(
            "X",
            ColumnKind::Int,
            Column::Int(I64Column::plain(values.clone(), NullMask::none())),
        )
        .build()
        .unwrap();
    let packed = Table::builder()
        .column(
            "X",
            ColumnKind::Int,
            Column::Int(I64Column::new(values, NullMask::none())),
        )
        .build()
        .unwrap();
    let encoding = packed
        .column(0)
        .as_i64_col()
        .unwrap()
        .storage()
        .kind()
        .to_string();
    (Arc::new(plain), Arc::new(packed), encoding)
}

fn run_case(
    c: &mut Criterion,
    cases: &mut Vec<Case>,
    name: &'static str,
    values: Vec<i64>,
    spec: BucketSpec,
) {
    let (plain, packed, encoding) = tables(values);
    let plain_bytes = plain.heap_bytes();
    let packed_bytes = packed.heap_bytes();
    let hist = HistogramSketch::streaming("X", spec);
    let vp = TableView::full(plain);
    let vk = TableView::full(packed);
    // The kernels must agree exactly before we time them.
    assert_eq!(
        hist.summarize(&vp, 0).unwrap(),
        hist.summarize(&vk, 0).unwrap(),
        "packed and plain histograms diverge in {name}"
    );
    // The vector and scalar codegens must also agree exactly.
    simd::set_force_scalar(true);
    assert_eq!(
        hist.summarize(&vp, 0).unwrap(),
        hist.summarize(&vk, 0).unwrap(),
        "scalar packed and plain histograms diverge in {name}"
    );
    simd::set_force_scalar(false);
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.bench_function("plain", |b| {
        b.iter(|| hist.summarize(&vp, 0).unwrap());
    });
    g.bench_function("packed", |b| {
        b.iter(|| hist.summarize(&vk, 0).unwrap());
    });
    simd::set_force_scalar(true);
    g.bench_function("plain_scalar", |b| {
        b.iter(|| hist.summarize(&vp, 0).unwrap());
    });
    g.bench_function("packed_scalar", |b| {
        b.iter(|| hist.summarize(&vk, 0).unwrap());
    });
    simd::set_force_scalar(false);
    g.finish();
    let ms = c.measurements();
    cases.push(Case {
        name,
        encoding,
        plain_bytes,
        packed_bytes,
        plain_ns: ms[ms.len() - 4].median.as_nanos(),
        packed_ns: ms[ms.len() - 3].median.as_nanos(),
        plain_scalar_ns: ms[ms.len() - 2].median.as_nanos(),
        packed_scalar_ns: ms[ms.len() - 1].median.as_nanos(),
    });
}

fn main() {
    let mut c = Criterion::default();
    let mut cases = Vec::new();

    // Sorted, low-cardinality: the acceptance-criteria column. Runs of 128
    // identical values → run-length encoding.
    run_case(
        &mut c,
        &mut cases,
        "sorted_lowcard_1M",
        (0..ROWS as i64).map(|i| i / 128).collect(),
        BucketSpec::numeric(0.0, (ROWS / 128 + 1) as f64, 100),
    );

    // Shuffled small-range values (ports/buckets/categories as ints): no
    // run structure, 12-bit range → frame-of-reference bit-packing.
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    run_case(
        &mut c,
        &mut cases,
        "shuffled_u12_1M",
        (0..ROWS).map(|_| (next() % 4096) as i64).collect(),
        BucketSpec::numeric(0.0, 4096.0, 100),
    );

    // Sequential ids with jitter (timestamps, auto-increment keys): no run
    // structure, ~31-bit value range, tiny adjacent deltas → per-block
    // delta coding.
    run_case(
        &mut c,
        &mut cases,
        "sequential_ids_1M",
        (0..ROWS as i64)
            .map(|i| i * 1000 + (i * 7919) % 613)
            .collect(),
        BucketSpec::numeric(0.0, (ROWS as f64) * 1000.0, 100),
    );

    write_json(&cases);
    println!(
        "\n{:<20} {:>12} {:>10} {:>10} {:>9} {:>11} {:>11}",
        "case", "encoding", "plain_B", "packed_B", "ratio", "plain_ns", "packed_ns"
    );
    for case in &cases {
        println!(
            "{:<20} {:>12} {:>10} {:>10} {:>8.1}x {:>11} {:>11}",
            case.name,
            case.encoding,
            case.plain_bytes,
            case.packed_bytes,
            case.plain_bytes as f64 / case.packed_bytes.max(1) as f64,
            case.plain_ns,
            case.packed_ns,
        );
    }
}

fn write_json(cases: &[Case]) {
    let mut out = String::from(
        "{\n  \"rows\": 1000000,\n  \"bench\": \"packed vs plain integer columns: heap bytes and block histogram median ns (simd + forced-scalar)\",\n",
    );
    out.push_str(&format!("  \"simd_available\": {},\n", simd::active()));
    out.push_str("  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let footprint = case.plain_bytes as f64 / case.packed_bytes.max(1) as f64;
        let slowdown = case.packed_ns as f64 / case.plain_ns.max(1) as f64;
        let packed_simd_speedup = case.packed_scalar_ns as f64 / case.packed_ns.max(1) as f64;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"encoding\": \"{}\", \"plain_bytes\": {}, \"packed_bytes\": {}, \"footprint_ratio\": {:.2}, \"plain_ns\": {}, \"packed_ns\": {}, \"throughput_ratio\": {:.3}, \"plain_scalar_ns\": {}, \"packed_scalar_ns\": {}, \"packed_simd_speedup\": {:.2}}}{}\n",
            case.name,
            case.encoding,
            case.plain_bytes,
            case.packed_bytes,
            footprint,
            case.plain_ns,
            case.packed_ns,
            slowdown,
            case.plain_scalar_ns,
            case.packed_scalar_ns,
            packed_simd_speedup,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_encoding.json");
    std::fs::write(path, out).expect("write BENCH_encoding.json");
    println!("wrote {path}");
}
