//! # hillview-bench
//!
//! Shared harness for regenerating every table and figure of the paper's
//! evaluation (§7). See DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for measured-vs-paper results.
//!
//! Scales: the paper's testbed is 8 servers × 28 cores over 130M–13B rows;
//! this harness runs one machine and divides row counts by 1000 (1x =
//! 130k rows, 100x = 13M rows). Sampled vizketches are insensitive to this
//! by construction; scan-bound operations scale linearly, so the *shapes*
//! of all comparisons are preserved (DESIGN.md §1).

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod setup;
pub mod table;

pub use setup::{BenchCluster, FLIGHTS_1X_ROWS};
pub use table::TableWriter;
