//! Markdown table emission for the figure harness.

use std::fmt::Write as _;

/// Accumulates rows and prints an aligned markdown table.
#[derive(Debug, Default)]
pub struct TableWriter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TableWriter {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render as aligned markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            out.push('|');
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(out, " {c:<w$} |");
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Format a duration as fractional seconds with 3 decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Format bytes as KB with one decimal.
pub fn kb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = TableWriter::new(&["op", "time"]);
        t.row(&["O1".into(), "1.234".into()]);
        t.row(&["O10".into(), "0.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| op "));
        assert!(lines[1].starts_with("|--"));
        assert!(lines[2].contains("O1 "));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TableWriter::new(&["a"]);
        t.row(&["x".into(), "y".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
        assert_eq!(kb(2048), "2.0");
    }
}
