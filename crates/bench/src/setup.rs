//! Cluster construction for benchmarks: warm (generated in memory) and
//! cold (read from HVC files on disk) flight datasets at several scales.

use hillview_columnar::udf::UdfRegistry;
use hillview_core::dataset::{FnSource, SourceRegistry};
use hillview_core::{Cluster, ClusterConfig, DatasetId, Engine};
use hillview_data::{generate_flights, FlightsConfig};
use hillview_storage::partition_table;
use std::path::PathBuf;
use std::sync::Arc;

/// Rows of the 1x flights dataset (paper: 130M; scaled ÷1000 — DESIGN.md).
pub const FLIGHTS_1X_ROWS: usize = 130_000;

/// A cluster + engine wired with flight-data sources for benchmarking.
pub struct BenchCluster {
    /// The engine (root node).
    pub engine: Arc<Engine>,
    /// Directory holding HVC files for the cold-read source.
    pub hvc_dir: PathBuf,
}

impl BenchCluster {
    /// Build a cluster with `workers`×`threads` topology. Registers:
    ///
    /// * `flights` — generated in memory per worker; snapshot = scale
    ///   factor K (worker rows = 1x rows × K / workers).
    /// * `flights-hvc` — same data read back from `.hvc` files on disk
    ///   (written lazily on first load), for the cold experiments.
    pub fn new(workers: usize, threads: usize, micropartition_rows: usize) -> Self {
        let hvc_dir =
            std::env::temp_dir().join(format!("hillview-bench-{}-{}", std::process::id(), workers));
        std::fs::create_dir_all(&hvc_dir).expect("create hvc dir");

        let mut sources = SourceRegistry::new();
        let w_total = workers;
        sources.register(Arc::new(FnSource::new(
            "flights",
            move |w, _n, mp, scale| {
                let rows = FLIGHTS_1X_ROWS * (scale.max(1) as usize) / w_total;
                let t = generate_flights(&FlightsConfig::new(rows, 0xF11 ^ w as u64));
                Ok(partition_table(&t, mp))
            },
        )));

        let dir = hvc_dir.clone();
        sources.register(Arc::new(FnSource::new(
            "flights-hvc",
            move |w, _n, mp, scale| {
                let rows = FLIGHTS_1X_ROWS * (scale.max(1) as usize) / w_total;
                let path = dir.join(format!("flights-{scale}x-w{w}.hvc"));
                if !path.exists() {
                    let t = generate_flights(&FlightsConfig::new(rows, 0xF11 ^ w as u64));
                    hillview_storage::hvc::write_file(&t, &path)
                        .map_err(|e| hillview_core::EngineError::Source(e.to_string()))?;
                }
                let t = hillview_storage::hvc::read_file(&path)
                    .map_err(|e| hillview_core::EngineError::Source(e.to_string()))?;
                Ok(partition_table(&t, mp))
            },
        )));

        let mut udfs = UdfRegistry::with_builtins();
        udfs.register_ratio("Speed", "Distance", "AirTime");
        udfs.register_sum("TotalDelay", "DepDelay", "ArrDelay");

        let cfg = ClusterConfig {
            workers,
            threads_per_worker: threads,
            micropartition_rows,
            batch_interval: std::time::Duration::from_millis(100),
            link: hillview_net::LinkConfig::instant(),
            worker_timeout: std::time::Duration::from_secs(30),
            leaf_grain_rows: 65_536,
            cache_budget_bytes: 32 << 20,
            block_cache_bytes: 256 << 20,
        };
        let cluster = Cluster::new(cfg, sources, udfs);
        BenchCluster {
            engine: Arc::new(Engine::new(cluster)),
            hvc_dir,
        }
    }

    /// Standard Figure 5/6 topology: 4 workers × 4 threads.
    pub fn standard() -> Self {
        Self::new(4, 4, 100_000)
    }

    /// Load the warm flights dataset at scale `k` (memory-resident).
    pub fn load_warm(&self, k: u64) -> DatasetId {
        self.engine.load("flights", k).expect("load warm flights")
    }

    /// Load the cold flights dataset at scale `k` (from HVC files; call
    /// [`BenchCluster::make_cold`] before each measured op to force
    /// re-reads).
    pub fn load_cold(&self, k: u64) -> DatasetId {
        self.engine
            .load("flights-hvc", k)
            .expect("load cold flights")
    }

    /// Evict everything so the next query re-reads from disk.
    pub fn make_cold(&self) {
        self.engine.cluster().evict_all();
    }
}

impl Drop for BenchCluster {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.hvc_dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_and_cold_sources_agree() {
        let b = BenchCluster::new(2, 2, 10_000);
        let warm = b.load_warm(1);
        let cold = b.load_cold(1);
        let rows_warm = b.engine.cluster().dataset_rows(warm);
        let rows_cold = b.engine.cluster().dataset_rows(cold);
        assert_eq!(rows_warm, rows_cold);
        assert_eq!(rows_warm, FLIGHTS_1X_ROWS / 2 * 2);
    }

    #[test]
    fn cold_reload_recovers_from_eviction() {
        let b = BenchCluster::new(2, 2, 10_000);
        let cold = b.load_cold(1);
        b.make_cold();
        use hillview_core::QueryOptions;
        use hillview_sketch::count::CountSketch;
        let (sum, _) = b
            .engine
            .run(cold, CountSketch::rows(), &QueryOptions::default())
            .unwrap();
        assert_eq!(sum.rows as usize, FLIGHTS_1X_ROWS / 2 * 2);
    }
}
