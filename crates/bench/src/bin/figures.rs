//! Regenerates every table and figure of the paper's evaluation (§7).
//!
//! ```text
//! figures fig5       # end-to-end warm: Spark-like GP engine vs Hillview
//! figures fig6       # cold data from HVC files on disk
//! figures micro      # §7.2.1 single-thread histogram: streaming/sampled/DB
//! figures fig7       # leaf scalability (1..64 leaves, data grows with leaves)
//! figures fig8       # server scalability (1..8 workers)
//! figures loc        # Fig. 9: vizketch implementation sizes
//! figures casestudy  # Fig. 11: the 20 analyst questions
//! figures accuracy   # Fig. 3/13: pixel/shade error guarantees
//! figures all        # everything above
//! ```
//!
//! Scales are divided by 1000 relative to the paper (DESIGN.md §1);
//! EXPERIMENTS.md records measured-vs-paper shapes.

use hillview_baseline::GpEngine;
use hillview_bench::setup::BenchCluster;
use hillview_bench::table::{kb, secs, TableWriter};
use hillview_columnar::udf::UdfRegistry;
use hillview_columnar::Predicate;
use hillview_core::dataset::{FnSource, SourceRegistry};
use hillview_core::spreadsheet::{OpStats, Spreadsheet};
use hillview_core::{Cluster, ClusterConfig, Engine, QueryOptions};
use hillview_data::{generate_flights, FlightsConfig};
use hillview_sketch::histogram::HistogramSketch;
use hillview_sketch::BucketSpec;
use hillview_viz::display::DisplaySpec;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DISPLAY: DisplaySpec = DisplaySpec {
    width_px: 600,
    height_px: 200,
};

/// The Figure 4 operation list.
const OPS: &[&str] = &[
    "O1", "O2", "O3", "O4", "O5", "O6", "O7", "O8", "O9", "O10", "O11",
];

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "fig5" => fig5(),
        "fig6" => fig6(),
        "micro" => micro(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "loc" => loc(),
        "casestudy" => casestudy(),
        "accuracy" => accuracy(),
        "all" => {
            fig5();
            fig6();
            micro();
            fig7();
            fig8();
            loc();
            casestudy();
            accuracy();
        }
        other => {
            eprintln!("unknown figure {other:?}; try fig5|fig6|micro|fig7|fig8|loc|casestudy|accuracy|all");
            std::process::exit(2);
        }
    }
}

/// Run one Figure 4 operation on a spreadsheet, returning its stats.
fn run_op(sheet: &Spreadsheet, op: &str) -> OpStats {
    match op {
        "O1" => sheet.sort_view(&["DepDelay"], 20).unwrap().1,
        "O2" => {
            sheet
                .sort_view(
                    &["Year", "Month", "DayOfMonth", "CRSDepTime", "FlightNum"],
                    20,
                )
                .unwrap()
                .1
        }
        "O3" => sheet.sort_view(&["TailNum"], 20).unwrap().1,
        "O4" => {
            sheet
                .scroll_to(
                    &["Year", "Month", "DayOfMonth", "CRSDepTime", "FlightNum"],
                    50,
                    20,
                )
                .unwrap()
                .1
        }
        "O5" => sheet.histogram_with_cdf("DepDelay", None).unwrap().2,
        "O6" => {
            // Filter + range + (histogram & cdf): the derivation is part of
            // the measured operation.
            let started = Instant::now();
            let filtered = sheet.filtered(Predicate::equals("Carrier", "UA")).unwrap();
            let mut stats = filtered.histogram_with_cdf("DepDelay", None).unwrap().2;
            stats.duration = started.elapsed();
            stats
        }
        "O7" => sheet.string_histogram("Origin").unwrap().1,
        "O8" => sheet.heavy_hitters_sampling("Carrier", 10).unwrap().1,
        "O9" => sheet.distinct_count("FlightNum").unwrap().1,
        "O10" => {
            sheet
                .stacked_histogram_with_cdf("CRSDepTime", "Carrier")
                .unwrap()
                .2
        }
        "O11" => sheet.heatmap("Distance", "AirTime").unwrap().1,
        other => panic!("unknown op {other}"),
    }
}

/// Run one operation's GP-engine (Spark-like) equivalent.
fn run_gp_op(
    gp: &GpEngine,
    engine: &Arc<Engine>,
    ds: hillview_core::DatasetId,
    op: &str,
) -> (Duration, u64) {
    match op {
        "O1" => {
            let o = gp.sort_first_k(ds, &["DepDelay"], 20).unwrap();
            (o.duration, o.driver_bytes)
        }
        "O2" => {
            let o = gp
                .sort_first_k(
                    ds,
                    &["Year", "Month", "DayOfMonth", "CRSDepTime", "FlightNum"],
                    20,
                )
                .unwrap();
            (o.duration, o.driver_bytes)
        }
        "O3" => {
            let o = gp.sort_first_k(ds, &["TailNum"], 20).unwrap();
            (o.duration, o.driver_bytes)
        }
        "O4" => {
            let q = gp
                .quantile(
                    ds,
                    &["Year", "Month", "DayOfMonth", "CRSDepTime", "FlightNum"],
                    0.5,
                )
                .unwrap();
            (q.duration, q.driver_bytes)
        }
        "O5" => {
            let o = gp.group_count(ds, "DepDelay").unwrap();
            (o.duration, o.driver_bytes)
        }
        "O6" => {
            let started = Instant::now();
            let filtered = engine
                .filter(ds, Predicate::equals("Carrier", "UA"))
                .unwrap();
            let o = gp.group_count(filtered, "DepDelay").unwrap();
            (started.elapsed(), o.driver_bytes)
        }
        "O7" => {
            let o = gp.group_count(ds, "Origin").unwrap();
            (o.duration, o.driver_bytes)
        }
        "O8" => {
            let o = gp.top_k(ds, "Carrier", 10).unwrap();
            (o.duration, o.driver_bytes)
        }
        "O9" => {
            let o = gp.distinct(ds, "FlightNum").unwrap();
            (o.duration, o.driver_bytes)
        }
        "O10" => {
            let o = gp.group_count_2d(ds, "CRSDepTime", "Carrier").unwrap();
            (o.duration, o.driver_bytes)
        }
        "O11" => {
            let o = gp.group_count_2d(ds, "Distance", "AirTime").unwrap();
            (o.duration, o.driver_bytes)
        }
        other => panic!("unknown op {other}"),
    }
}

/// Figure 5: end-to-end warm performance, Spark-like vs Hillview.
fn fig5() {
    println!("\n## Figure 5 — end-to-end warm performance (time s / root KB)\n");
    let bench = BenchCluster::standard();

    let mut time = TableWriter::new(&[
        "op",
        "GP5x(s)",
        "HV5x(s)",
        "HV10x(s)",
        "HV100x(s)",
        "HV100xFirst(s)",
    ]);
    let mut bytes = TableWriter::new(&["op", "GP5x(KB)", "HV5x(KB)", "HV10x(KB)", "HV100x(KB)"]);

    // Load datasets once per scale.
    let ds5 = bench.load_warm(5);
    let ds10 = bench.load_warm(10);
    let ds100 = bench.load_warm(100);
    let gp = GpEngine::new(bench.engine.cluster().clone());

    for op in OPS {
        let (gp_t, gp_b) = run_gp_op(&gp, &bench.engine, ds5, op);
        let mut hv = Vec::new();
        for ds in [ds5, ds10, ds100] {
            let sheet = Spreadsheet::new(bench.engine.clone(), ds, DISPLAY);
            sheet.set_seed(42);
            hv.push(run_op(&sheet, op));
        }
        let first = hv[2]
            .first_partial
            .map(secs)
            .unwrap_or_else(|| "-".to_string());
        time.row(&[
            op.to_string(),
            secs(gp_t),
            secs(hv[0].duration),
            secs(hv[1].duration),
            secs(hv[2].duration),
            first,
        ]);
        bytes.row(&[
            op.to_string(),
            kb(gp_b),
            kb(hv[0].root_bytes),
            kb(hv[1].root_bytes),
            kb(hv[2].root_bytes),
        ]);
    }
    time.print();
    bytes.print();
}

/// Figure 6: cold data read from HVC files on disk.
fn fig6() {
    println!("\n## Figure 6 — cold-data performance (s; first partial in parentheses)\n");
    let bench = BenchCluster::standard();
    let mut t = TableWriter::new(&["op", "5xCold(s)", "10xCold(s)", "100xCold(s)"]);
    // O4 and O6 are omitted as in the paper (they never run on cold data).
    let cold_ops: Vec<&str> = OPS
        .iter()
        .copied()
        .filter(|o| *o != "O4" && *o != "O6")
        .collect();
    let ds5 = bench.load_cold(5);
    let ds10 = bench.load_cold(10);
    let ds100 = bench.load_cold(100);
    for op in cold_ops {
        let mut cells = vec![op.to_string()];
        for ds in [ds5, ds10, ds100] {
            bench.make_cold();
            let sheet = Spreadsheet::new(bench.engine.clone(), ds, DISPLAY);
            sheet.set_seed(42);
            let stats = run_op(&sheet, op);
            let first = stats
                .first_partial
                .map(secs)
                .unwrap_or_else(|| "-".to_string());
            cells.push(format!("{} ({first})", secs(stats.duration)));
        }
        t.row(&cells);
    }
    t.print();
}

/// §7.2.1: single-thread histogram microbenchmark.
fn micro() {
    println!("\n## §7.2.1 — single-thread histogram, 10M rows (paper: 100M)\n");
    let rows = 10_000_000usize;
    let t = {
        use hillview_columnar::column::{Column, F64Column};
        use hillview_columnar::{ColumnKind, Table};
        let mut rng_state = 0x12345u64;
        let vals: Vec<Option<f64>> = (0..rows)
            .map(|_| {
                rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                Some((rng_state >> 40) as f64 % 1000.0)
            })
            .collect();
        Table::builder()
            .column(
                "X",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(vals)),
            )
            .build()
            .unwrap()
    };
    let view = hillview_sketch::TableView::full(Arc::new(t.clone()));
    let spec = BucketSpec::numeric(0.0, 1000.0, 100);
    use hillview_sketch::traits::Sketch;

    // Streaming vizketch.
    let sk = HistogramSketch::streaming("X", spec.clone());
    let started = Instant::now();
    let exact = sk.summarize(&view, 0).unwrap();
    let streaming_ms = started.elapsed().as_millis();

    // Sampled vizketch: the display-derived target (V=200px).
    let target = hillview_viz::samples::histogram(200, 0.01);
    let rate = hillview_viz::samples::rate_for(target, rows as u64);
    let sk = HistogramSketch::sampled("X", spec, rate);
    let started = Instant::now();
    let sampled = sk.summarize(&view, 7).unwrap();
    let sampling_ms = started.elapsed().as_millis();

    // Row-store database.
    let mut db = hillview_baseline::RowDb::create(&["X"]);
    db.insert_table(&t);
    let started = Instant::now();
    let db_hist = db.histogram("X", 0.0, 1000.0, 100);
    let db_ms = started.elapsed().as_millis();

    assert_eq!(exact.buckets, db_hist, "systems agree on the exact answer");
    assert!(sampled.rows_inspected < rows as u64 / 2);

    let mut table = TableWriter::new(&["method", "time (ms)", "paper (ms)"]);
    table.row(&["streaming".into(), streaming_ms.to_string(), "527".into()]);
    table.row(&["sampling".into(), sampling_ms.to_string(), "197".into()]);
    table.row(&["database system".into(), db_ms.to_string(), "5830".into()]);
    table.print();
    println!(
        "db/streaming ratio: {:.1}x (paper: 11.1x); sampling speedup: {:.1}x (paper: 2.7x)\n",
        db_ms as f64 / streaming_ms.max(1) as f64,
        streaming_ms as f64 / sampling_ms.max(1) as f64,
    );
}

/// A cluster whose dataset grows with the leaf count (Figures 7/8).
fn sweep_cluster(workers: usize, threads: usize, leaves_per_worker: usize) -> Arc<Engine> {
    const ROWS_PER_LEAF: usize = 400_000;
    let mut sources = SourceRegistry::new();
    sources.register(Arc::new(FnSource::new("sweep", move |w, _n, _mp, _s| {
        let mut out = Vec::with_capacity(leaves_per_worker);
        for l in 0..leaves_per_worker {
            let t = generate_flights(&FlightsConfig::new(ROWS_PER_LEAF, (w * 1000 + l) as u64));
            out.push(t.project(&["DepDelay"]).unwrap());
        }
        Ok(out)
    })));
    let cfg = ClusterConfig {
        workers,
        threads_per_worker: threads,
        micropartition_rows: ROWS_PER_LEAF,
        batch_interval: Duration::from_millis(100),
        link: hillview_net::LinkConfig::instant(),
        worker_timeout: std::time::Duration::from_secs(30),
        leaf_grain_rows: 65_536,
        cache_budget_bytes: 32 << 20,
        block_cache_bytes: 256 << 20,
    };
    Arc::new(Engine::new(Cluster::new(cfg, sources, UdfRegistry::new())))
}

fn histogram_latency(engine: &Arc<Engine>, ds: hillview_core::DatasetId, rate: f64) -> Duration {
    let spec = BucketSpec::numeric(-100.0, 500.0, 100);
    let sk = if rate >= 1.0 {
        HistogramSketch::streaming("DepDelay", spec)
    } else {
        HistogramSketch::sampled("DepDelay", spec, rate)
    };
    // Best-of-3 to suppress scheduler noise.
    let mut best = Duration::MAX;
    for seed in 0..3u64 {
        let opts = QueryOptions {
            seed,
            ..Default::default()
        };
        let (_, o) = engine.run(ds, sk.clone(), &opts).unwrap();
        best = best.min(o.duration);
    }
    best
}

/// Figure 7: scalability with leaf count on one server.
fn fig7() {
    println!("\n## Figure 7 — leaf scalability on one server (ms; constant = ideal)\n");
    println!("(data grows with leaves: 400k rows/leaf; 24 physical cores — the");
    println!("paper's hyper-threading knee appears past the physical core count)\n");
    let mut t = TableWriter::new(&["leaves", "streaming (ms)", "sampled (ms)"]);
    for leaves in [1usize, 2, 4, 8, 16, 32, 64] {
        let engine = sweep_cluster(1, leaves.min(22), leaves);
        let ds = engine.load("sweep", 0).unwrap();
        let total_rows = engine.cluster().dataset_rows(ds) as u64;
        let streaming = histogram_latency(&engine, ds, 1.0);
        // Sampled: fixed target sample size regardless of data size.
        let target = hillview_viz::samples::histogram(200, 0.01);
        let rate = hillview_viz::samples::rate_for(target, total_rows);
        let sampled = histogram_latency(&engine, ds, rate);
        t.row(&[
            leaves.to_string(),
            streaming.as_millis().to_string(),
            sampled.as_millis().to_string(),
        ]);
    }
    t.print();
}

/// Figure 8: scalability with server count.
fn fig8() {
    println!("\n## Figure 8 — server scalability (ms; constant = ideal)\n");
    println!("(8 leaves per server, 400k rows/leaf; servers share 24 cores)\n");
    let mut t = TableWriter::new(&["servers", "streaming (ms)", "sampled (ms)"]);
    for servers in 1usize..=8 {
        let engine = sweep_cluster(servers, 2, 8);
        let ds = engine.load("sweep", 0).unwrap();
        let total_rows = engine.cluster().dataset_rows(ds) as u64;
        let streaming = histogram_latency(&engine, ds, 1.0);
        let target = hillview_viz::samples::histogram(200, 0.01);
        let rate = hillview_viz::samples::rate_for(target, total_rows);
        let sampled = histogram_latency(&engine, ds, rate);
        t.row(&[
            servers.to_string(),
            streaming.as_millis().to_string(),
            sampled.as_millis().to_string(),
        ]);
    }
    t.print();
}

/// Figure 9: lines of back-end code per vizketch.
fn loc() {
    println!("\n## Figure 9 — vizketch implementation sizes (lines of code)\n");
    // Count non-blank, non-test lines of the module implementing each
    // vizketch (the paper counts back-end Java; we count the Rust kernel).
    fn count(src: &str) -> usize {
        let body = src.split("#[cfg(test)]").next().unwrap_or(src);
        body.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("//"))
            .count()
    }
    let entries: &[(&str, usize, usize)] = &[
        (
            "Histogram",
            count(include_str!("../../../sketch/src/histogram.rs")),
            114,
        ),
        ("CDF", count(include_str!("../../../viz/src/cdf.rs")), 114),
        (
            "Stacked histogram",
            count(include_str!("../../../sketch/src/stacked.rs")),
            130,
        ),
        (
            "Heatmap",
            count(include_str!("../../../sketch/src/heatmap.rs")),
            130,
        ),
        (
            "Heatmap trellis",
            count(include_str!("../../../viz/src/trellis.rs")),
            127,
        ),
        (
            "Quantile",
            count(include_str!("../../../sketch/src/quantile.rs")),
            79,
        ),
        (
            "Next items",
            count(include_str!("../../../sketch/src/nextk.rs")),
            191,
        ),
        (
            "Find text",
            count(include_str!("../../../sketch/src/find.rs")),
            108,
        ),
        (
            "Heavy hitters",
            count(include_str!("../../../sketch/src/heavy.rs")),
            35,
        ),
        (
            "Range",
            count(include_str!("../../../sketch/src/range.rs")),
            156,
        ),
        (
            "Number distinct",
            count(include_str!("../../../sketch/src/distinct.rs")),
            117,
        ),
    ];
    let mut t = TableWriter::new(&["vizketch", "LoC (this repo)", "LoC (paper, Java)"]);
    for (name, ours, paper) in entries {
        t.row(&[name.to_string(), ours.to_string(), paper.to_string()]);
    }
    t.print();
}

/// Figure 11: the §7.5 case-study questions, scripted.
fn casestudy() {
    println!("\n## Figure 11 — case study: 20 analyst questions on flights-1x\n");
    let bench = BenchCluster::new(2, 4, 50_000);
    let ds = bench.load_warm(1);
    let sheet = Spreadsheet::new(bench.engine.clone(), ds, DISPLAY);
    sheet.set_seed(7);
    let mut t = TableWriter::new(&["question", "actions", "time (s)", "answer"]);
    for (q, f) in questions() {
        let started = Instant::now();
        let (actions, answer) = f(&sheet);
        t.row(&[
            q.to_string(),
            actions.to_string(),
            secs(started.elapsed()),
            answer,
        ]);
    }
    t.print();
}

type Question = fn(&Spreadsheet) -> (usize, String);

/// Late-flight share of one carrier (helper for Q1).
fn late_share(sheet: &Spreadsheet, carrier: &str) -> f64 {
    let filtered = sheet
        .filtered(Predicate::equals("Carrier", carrier))
        .unwrap();
    let (total, _) = filtered.row_count().unwrap();
    let late = filtered
        .filtered(Predicate::range("DepDelay", 15.0, 1e9))
        .unwrap();
    let (late_n, _) = late.row_count().unwrap();
    late_n as f64 / total.max(1) as f64
}

/// Mean of a column under a filter (helper for several questions).
fn mean_where(sheet: &Spreadsheet, pred: Predicate, column: &str) -> f64 {
    let f = sheet.filtered(pred).unwrap();
    let (m, _) = f.moments(column, 2).unwrap();
    m.mean().unwrap_or(f64::NAN)
}

fn questions() -> Vec<(&'static str, Question)> {
    vec![
        ("Q1 late flights UA vs AA", |s| {
            let ua = late_share(s, "UA");
            let aa = late_share(s, "AA");
            (5, format!("UA {:.1}% vs AA {:.1}%", ua * 100.0, aa * 100.0))
        }),
        ("Q2 least dep delay by airline", |s| {
            let (hh, _) = s.heavy_hitters_streaming("Carrier", 14).unwrap();
            let best = hh
                .items
                .iter()
                .map(|(v, _, _)| {
                    let c = v.to_string();
                    (
                        c.clone(),
                        mean_where(s, Predicate::equals("Carrier", c.as_str()), "DepDelay"),
                    )
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            (3, format!("{} ({:.1} min)", best.0, best.1))
        }),
        ("Q3 typical delay of AA flight 11", |s| {
            let f = s
                .filtered(
                    Predicate::equals("Carrier", "AA").and(Predicate::equals("FlightNum", 11i64)),
                )
                .unwrap();
            let (m, _) = f.moments("DepDelay", 2).unwrap();
            (
                4,
                format!(
                    "mean {:.1} min over {} flights",
                    m.mean().unwrap_or(0.0),
                    m.present
                ),
            )
        }),
        ("Q4 flights leaving NY each day", |s| {
            let f = s.filtered(Predicate::equals("OriginState", "NY")).unwrap();
            let (n, _) = f.row_count().unwrap();
            (5, format!("{:.0}/day", n as f64 / 730.0))
        }),
        ("Q5 SFO->JFK vs SFO->EWR", |s| {
            let jfk = mean_where(
                s,
                Predicate::equals("Origin", "SFO").and(Predicate::equals("Dest", "JFK")),
                "ArrDelay",
            );
            let ewr = mean_where(
                s,
                Predicate::equals("Origin", "SFO").and(Predicate::equals("Dest", "EWR")),
                "ArrDelay",
            );
            (5, format!("JFK {jfk:.1} vs EWR {ewr:.1} min arr delay"))
        }),
        ("Q6 destinations from both SFO and SJC", |s| {
            let (from_sfo, _) = s
                .filtered(Predicate::equals("Origin", "SFO"))
                .unwrap()
                .distinct_count("Dest")
                .unwrap();
            let (from_sjc, _) = s
                .filtered(Predicate::equals("Origin", "SJC"))
                .unwrap()
                .distinct_count("Dest")
                .unwrap();
            (
                4,
                format!(
                    "~{:.0} (SFO) / ~{:.0} (SJC) destinations",
                    from_sfo, from_sjc
                ),
            )
        }),
        ("Q7 best hour of day to fly", |s| {
            let (chart, _, _) = s.histogram_with_cdf("DepDelay", Some(24)).unwrap();
            let _ = chart;
            // Stacked histogram of delay by hour: find hour bucket with the
            // lowest mean delay via filters on three candidate windows.
            let morning = mean_where(s, Predicate::range("CRSDepTime", 500.0, 900.0), "DepDelay");
            let midday = mean_where(
                s,
                Predicate::range("CRSDepTime", 1100.0, 1500.0),
                "DepDelay",
            );
            let evening = mean_where(
                s,
                Predicate::range("CRSDepTime", 1700.0, 2100.0),
                "DepDelay",
            );
            let best = [
                ("morning", morning),
                ("midday", midday),
                ("evening", evening),
            ]
            .into_iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
            (2, format!("{} ({:.1} min)", best.0, best.1))
        }),
        ("Q8 state with worst dep delay", |s| {
            let (hh, _) = s.heavy_hitters_streaming("OriginState", 50).unwrap();
            let worst = hh
                .items
                .iter()
                .take(8)
                .map(|(v, _, _)| {
                    let st = v.to_string();
                    (
                        st.clone(),
                        mean_where(s, Predicate::equals("OriginState", st.as_str()), "DepDelay"),
                    )
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            (5, format!("{} ({:.1} min)", worst.0, worst.1))
        }),
        ("Q9 airline with most cancellations", |s| {
            let f = s.filtered(Predicate::equals("Cancelled", 1i64)).unwrap();
            let (hh, _) = f.heavy_hitters_streaming("Carrier", 14).unwrap();
            let top = hh
                .items
                .first()
                .map(|(v, _, _)| v.to_string())
                .unwrap_or_else(|| "none".into());
            (1, top)
        }),
        ("Q10 date with most flights", |s| {
            let (chart, _, _) = s.histogram_with_cdf("FlightDate", Some(100)).unwrap();
            let max_bar = chart
                .heights_px
                .iter()
                .enumerate()
                .max_by_key(|(_, &h)| h)
                .unwrap()
                .0;
            (1, format!("bucket {} of 100 (~week granularity)", max_bar))
        }),
        ("Q11 longest flight by distance", |s| {
            let (range, _) = s.range_of("Distance").unwrap();
            (3, format!("{:.0} miles", range.max.unwrap_or(0.0)))
        }),
        ("Q12 taxi times UA vs AA same airport", |s| {
            let ua = mean_where(
                s,
                Predicate::equals("Carrier", "UA").and(Predicate::equals("Origin", "ORD")),
                "TaxiOut",
            );
            let aa = mean_where(
                s,
                Predicate::equals("Carrier", "AA").and(Predicate::equals("Origin", "ORD")),
                "TaxiOut",
            );
            (5, format!("ORD taxi-out: UA {ua:.1} vs AA {aa:.1} min"))
        }),
        ("Q13 best/worst weather delays by city", |s| {
            let (hh, _) = s.heavy_hitters_streaming("Origin", 60).unwrap();
            let mut pairs: Vec<(String, f64)> = hh
                .items
                .iter()
                .take(6)
                .map(|(v, _, _)| {
                    let a = v.to_string();
                    (
                        a.clone(),
                        mean_where(s, Predicate::equals("Origin", a.as_str()), "WeatherDelay"),
                    )
                })
                .collect();
            pairs.retain(|(_, m)| m.is_finite());
            pairs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let answer = match (pairs.first(), pairs.last()) {
                (Some(best), Some(worst)) => format!(
                    "best {} ({:.1}), worst {} ({:.1})",
                    best.0, best.1, worst.0, worst.1
                ),
                _ => "insufficient data".into(),
            };
            (6, answer)
        }),
        ("Q14 airlines flying to Hawaii", |s| {
            let f = s.filtered(Predicate::equals("DestState", "HI")).unwrap();
            let (est, _) = f.distinct_count("Carrier").unwrap();
            (2, format!("{:.0} airlines", est))
        }),
        ("Q15 Hawaii airport with best dep delays", |s| {
            let best = ["HNL", "OGG", "LIH", "KOA"]
                .iter()
                .map(|a| {
                    (
                        *a,
                        mean_where(s, Predicate::equals("Origin", *a), "DepDelay"),
                    )
                })
                .filter(|(_, m)| m.is_finite())
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .map(|(a, m)| format!("{a} ({m:.1} min)"))
                .unwrap_or_else(|| "no data".into());
            (4, best)
        }),
        ("Q16 flights per day LAX-SFO", |s| {
            let f = s
                .filtered(Predicate::equals("Origin", "LAX").and(Predicate::equals("Dest", "SFO")))
                .unwrap();
            let (n, _) = f.row_count().unwrap();
            (3, format!("{:.1}/day", n as f64 / 730.0))
        }),
        ("Q17 best weekday ORD-EWR", |s| {
            let route = Predicate::equals("Origin", "ORD").and(Predicate::equals("Dest", "EWR"));
            let best = (1..=7i64)
                .map(|d| {
                    (
                        d,
                        mean_where(
                            s,
                            route.clone().and(Predicate::equals("DayOfWeek", d)),
                            "DepDelay",
                        ),
                    )
                })
                .filter(|(_, m)| m.is_finite())
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            (
                3,
                best.map(|(d, m)| format!("weekday {d} ({m:.1} min)"))
                    .unwrap_or_else(|| "insufficient data".into()),
            )
        }),
        ("Q18 December day with most/least flights", |s| {
            let dec = s.filtered(Predicate::equals("Month", 12i64)).unwrap();
            let (chart, _, _) = dec.histogram_with_cdf("DayOfMonth", Some(31)).unwrap();
            let most = chart
                .heights_px
                .iter()
                .enumerate()
                .max_by_key(|(_, &h)| h)
                .unwrap()
                .0
                + 1;
            let least = chart
                .heights_px
                .iter()
                .enumerate()
                .filter(|(_, &h)| h > 0)
                .min_by_key(|(_, &h)| h)
                .unwrap()
                .0
                + 1;
            (2, format!("most: day {most}, least: day {least}"))
        }),
        ("Q19 airlines that stopped flying", |s| {
            // Compare carriers present in the first vs last year.
            let y2016 = s.filtered(Predicate::equals("Year", 2016i64)).unwrap();
            let y2017 = s.filtered(Predicate::equals("Year", 2017i64)).unwrap();
            let (a, _) = y2016.distinct_count("Carrier").unwrap();
            let (b, _) = y2017.distinct_count("Carrier").unwrap();
            (2, format!("{:.0} → {:.0} carriers (none stopped)", a, b))
        }),
        ("Q20 flights that took off but never landed", |s| {
            // As in the paper: determine the data cannot answer this.
            let f = s
                .filtered(
                    Predicate::IsMissing {
                        column: "ArrTime".into(),
                    }
                    .and(Predicate::equals("Cancelled", 0i64))
                    .and(Predicate::equals("Diverted", 0i64)),
                )
                .unwrap();
            let (n, _) = f.row_count().unwrap();
            (
                3,
                format!("{n} candidate rows — dataset lacks the information"),
            )
        }),
    ]
}

/// Figure 3/13: verify the ½-pixel / one-shade accuracy guarantees.
fn accuracy() {
    println!("\n## Figure 3/13 — rendering accuracy of sampled vizketches\n");
    use hillview_sketch::range::RangeSketch;
    use hillview_sketch::traits::Sketch;
    use hillview_viz::accuracy::{max_bar_pixel_error, max_cdf_pixel_error};
    use hillview_viz::cdf::CdfViz;
    use hillview_viz::histogram::HistogramViz;

    let t = generate_flights(&FlightsConfig::new(1_000_000, 99));
    let view = hillview_sketch::TableView::full(Arc::new(t));
    let display = DisplaySpec::new(200, 100);
    let range = RangeSketch::new("DepDelay").summarize(&view, 0).unwrap();

    // Exact references.
    let hviz = HistogramViz::new("DepDelay", display)
        .with_buckets(50)
        .exact();
    let hsk = hviz.prepare_numeric(&range).unwrap();
    let exact_chart = hviz.render(&hsk, &hsk.summarize(&view, 0).unwrap());
    let cviz = CdfViz::new("DepDelay", display).exact();
    let exact_cdf = cviz.render(&cviz.prepare(&range).unwrap().summarize(&view, 0).unwrap());

    // Sampled, over 10 seeds.
    let sviz = HistogramViz::new("DepDelay", display).with_buckets(50);
    let ssk = sviz.prepare_numeric(&range).unwrap();
    let scviz = CdfViz::new("DepDelay", display);
    let scsk = scviz.prepare(&range).unwrap();
    let mut worst_bar = 0u32;
    let mut worst_cdf = 0u32;
    for seed in 0..10 {
        let chart = sviz.render(&ssk, &ssk.summarize(&view, seed).unwrap());
        worst_bar = worst_bar.max(max_bar_pixel_error(&exact_chart, &chart));
        let cdf = scviz.render(&scsk.summarize(&view, seed).unwrap());
        worst_cdf = worst_cdf.max(max_cdf_pixel_error(&exact_cdf, &cdf));
    }
    let mut t = TableWriter::new(&["rendering", "worst error (10 seeds)", "paper bound"]);
    t.row(&[
        "histogram bars".into(),
        format!("{worst_bar} px"),
        "~1 px".into(),
    ]);
    t.row(&[
        "CDF curve".into(),
        format!("{worst_cdf} px"),
        "~1 px".into(),
    ]);
    t.row(&[
        format!("histogram sampling rate {:.4}", ssk.rate),
        format!("{} of 1M rows", (ssk.rate * 1e6) as u64),
        "O(V²) rows".into(),
    ]);
    t.print();
}
