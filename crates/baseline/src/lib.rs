//! # hillview-baseline
//!
//! The two comparison systems of the paper's evaluation, built from scratch
//! (DESIGN.md §1):
//!
//! * [`gp`] — a **general-purpose analytics engine** standing in for the
//!   Spark back-end of §7.1. It computes *exact, complete* results with no
//!   display-driven reduction: sorts ship every key, group-bys ship every
//!   group, distinct-counts ship every distinct value. This reproduces the
//!   structural reason the visualization-front-end-plus-general-back-end
//!   architecture loses: "their queries could produce large results that
//!   take longer to visualize than to compute" (§1).
//! * [`rowdb`] — a **row-store in-memory database** standing in for the
//!   unnamed commercial system of §7.2.1. Rows are boxed value tuples
//!   processed through a Volcano-style iterator pipeline with per-row
//!   expression interpretation, visibility checks, and optional B-tree
//!   indexes — the classic overheads ("data structures must support
//!   indexes, transactions, integrity constraints, logging, queries of many
//!   types") that a specialized columnar scan avoids.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod gp;
pub mod rowdb;

pub use gp::GpEngine;
pub use rowdb::{Expr, RowDb};
