//! A row-store in-memory mini-database (the §7.2.1 comparison system).
//!
//! "We see that the database system is an order of magnitude worse, because
//! it has overheads that vizketches avoid: data structures must support
//! indexes, transactions, integrity constraints, logging, queries of many
//! types." This module reproduces those overheads honestly rather than as a
//! strawman:
//!
//! * rows are boxed tuples of dynamically-typed [`Value`]s (row-at-a-time
//!   layout, no columnar locality);
//! * queries execute through a Volcano-style iterator pipeline with
//!   per-row expression interpretation;
//! * every row carries an MVCC-style transaction-visibility word that each
//!   scan checks;
//! * inserts maintain a B-tree secondary index per indexed column and an
//!   append-only logical log.

use hillview_columnar::{Table, Value};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A dynamically-interpreted scalar expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Column by position.
    Col(usize),
    /// Constant.
    Const(Value),
    /// Histogram-bucket assignment: `floor((x - lo) / width)` clamped to
    /// `count`, Missing if out of range — what a GROUP BY over a bucket
    /// expression evaluates per row.
    Bucket {
        /// Input expression.
        input: Box<Expr>,
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
        /// Bucket count.
        count: usize,
    },
    /// Comparison yielding Int 0/1: `lhs < rhs`.
    Lt(Box<Expr>, Box<Expr>),
    /// Addition over numerics; Missing propagates.
    Add(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Evaluate against one row.
    pub fn eval(&self, row: &[Value]) -> Value {
        match self {
            Expr::Col(i) => row.get(*i).cloned().unwrap_or(Value::Missing),
            Expr::Const(v) => v.clone(),
            Expr::Bucket {
                input,
                lo,
                hi,
                count,
            } => match input.eval(row).as_f64() {
                Some(x) if x >= *lo && x < *hi => {
                    let idx = ((x - lo) / (hi - lo) * *count as f64) as usize;
                    Value::Int(idx.min(count - 1) as i64)
                }
                _ => Value::Missing,
            },
            Expr::Lt(a, b) => {
                let (a, b) = (a.eval(row), b.eval(row));
                if a.is_missing() || b.is_missing() {
                    Value::Missing
                } else {
                    Value::Int((a < b) as i64)
                }
            }
            Expr::Add(a, b) => match (a.eval(row).as_f64(), b.eval(row).as_f64()) {
                (Some(x), Some(y)) => Value::Double(x + y),
                _ => Value::Missing,
            },
        }
    }
}

/// A key wrapper giving `Value` a total order usable in B-trees.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct IndexKey(Value);

/// One stored row: values plus the transaction id that created it.
struct StoredRow {
    xmin: u64,
    values: Box<[Value]>,
}

/// The row-store database.
pub struct RowDb {
    column_names: Vec<String>,
    rows: Vec<StoredRow>,
    indexes: HashMap<usize, BTreeMap<IndexKey, Vec<u32>>>,
    /// Current "transaction" horizon; rows with `xmin <= txn` are visible.
    txn: u64,
    /// Logical write-ahead log length (entries, not bytes).
    log_entries: u64,
}

impl RowDb {
    /// Create an empty database with the given column names.
    pub fn create(column_names: &[&str]) -> Self {
        RowDb {
            column_names: column_names.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            indexes: HashMap::new(),
            txn: 1,
            log_entries: 0,
        }
    }

    /// Declare a secondary B-tree index on a column (before or after load).
    pub fn create_index(&mut self, column: &str) {
        let c = self.column_index(column).expect("column exists");
        let mut tree: BTreeMap<IndexKey, Vec<u32>> = BTreeMap::new();
        for (i, row) in self.rows.iter().enumerate() {
            tree.entry(IndexKey(row.values[c].clone()))
                .or_default()
                .push(i as u32);
        }
        self.indexes.insert(c, tree);
    }

    /// Position of a named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.column_names.iter().position(|n| n == name)
    }

    /// Bulk-insert from a columnar table (the ETL step a real DB needs and
    /// Hillview explicitly avoids, §5.4). Maintains indexes and the log.
    pub fn insert_table(&mut self, table: &Table) {
        let cols: Vec<usize> = self
            .column_names
            .iter()
            .map(|n| {
                table
                    .schema()
                    .index_of(n)
                    .expect("table provides every DB column")
            })
            .collect();
        self.txn += 1;
        for r in 0..table.num_rows() {
            let values: Box<[Value]> = cols.iter().map(|&c| table.column(c).value(r)).collect();
            let row_id = self.rows.len() as u32;
            for (&c, tree) in self.indexes.iter_mut() {
                tree.entry(IndexKey(values[c].clone()))
                    .or_default()
                    .push(row_id);
            }
            self.rows.push(StoredRow {
                xmin: self.txn,
                values,
            });
            self.log_entries += 1;
        }
    }

    /// Number of visible rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Logical log length.
    pub fn log_entries(&self) -> u64 {
        self.log_entries
    }

    /// Execute `SELECT expr, COUNT(*) GROUP BY expr` through the Volcano
    /// pipeline: sequential scan → visibility check → expression
    /// interpretation → hash aggregation.
    pub fn group_count(&self, expr: &Expr) -> HashMap<Value, u64> {
        let horizon = self.txn;
        let mut agg: HashMap<Value, u64> = HashMap::new();
        for row in &self.rows {
            // MVCC visibility check, per row.
            if row.xmin > horizon {
                continue;
            }
            let key = expr.eval(&row.values);
            *agg.entry(key).or_insert(0) += 1;
        }
        agg
    }

    /// The §7.2.1 workload: a B-bucket histogram over a numeric column,
    /// expressed as GROUP BY bucket(x).
    pub fn histogram(&self, column: &str, lo: f64, hi: f64, buckets: usize) -> Vec<u64> {
        let c = self.column_index(column).expect("column exists");
        let expr = Expr::Bucket {
            input: Box::new(Expr::Col(c)),
            lo,
            hi,
            count: buckets,
        };
        let agg = self.group_count(&expr);
        let mut out = vec![0u64; buckets];
        for (k, count) in agg {
            if let Value::Int(b) = k {
                out[b as usize] += count;
            }
        }
        out
    }

    /// Index-assisted histogram: walks the B-tree in key order. Avoids the
    /// full scan but pays pointer-chasing and per-entry overhead — DBs
    /// don't win here either way.
    pub fn histogram_via_index(
        &self,
        column: &str,
        lo: f64,
        hi: f64,
        buckets: usize,
    ) -> Option<Vec<u64>> {
        let c = self.column_index(column)?;
        let tree = self.indexes.get(&c)?;
        let mut out = vec![0u64; buckets];
        for (key, rows) in tree {
            if let Some(x) = key.0.as_f64() {
                if x >= lo && x < hi {
                    let idx = (((x - lo) / (hi - lo)) * buckets as f64) as usize;
                    out[idx.min(buckets - 1)] += rows.len() as u64;
                }
            }
        }
        Some(out)
    }

    /// Point lookup through an index (sanity check that indexes work).
    pub fn lookup(&self, column: &str, value: &Value) -> Vec<u32> {
        match self.column_index(column).and_then(|c| self.indexes.get(&c)) {
            Some(tree) => tree
                .get(&IndexKey(value.clone()))
                .cloned()
                .unwrap_or_default(),
            None => Vec::new(),
        }
    }
}

impl fmt::Debug for RowDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RowDb({} cols, {} rows, {} indexes)",
            self.column_names.len(),
            self.rows.len(),
            self.indexes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, F64Column};
    use hillview_columnar::ColumnKind;

    fn table(n: usize) -> Table {
        Table::builder()
            .column(
                "X",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(
                    (0..n).map(|i| Some((i % 100) as f64)),
                )),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn histogram_matches_ground_truth() {
        let mut db = RowDb::create(&["X"]);
        db.insert_table(&table(10_000));
        let h = db.histogram("X", 0.0, 100.0, 10);
        assert_eq!(h, vec![1000; 10]);
    }

    #[test]
    fn histogram_agrees_with_vizketch_kernel() {
        use hillview_sketch::histogram::HistogramSketch;
        use hillview_sketch::traits::Sketch;
        use hillview_sketch::{BucketSpec, TableView};
        let t = table(5_000);
        let mut db = RowDb::create(&["X"]);
        db.insert_table(&t);
        let db_hist = db.histogram("X", 0.0, 100.0, 20);
        let sk = HistogramSketch::streaming("X", BucketSpec::numeric(0.0, 100.0, 20));
        let hv = sk
            .summarize(&TableView::full(std::sync::Arc::new(t)), 0)
            .unwrap();
        assert_eq!(db_hist, hv.buckets, "two systems, one answer");
    }

    #[test]
    fn index_assisted_histogram_agrees() {
        let mut db = RowDb::create(&["X"]);
        db.insert_table(&table(3_000));
        db.create_index("X");
        let seq = db.histogram("X", 0.0, 100.0, 10);
        let idx = db.histogram_via_index("X", 0.0, 100.0, 10).unwrap();
        assert_eq!(seq, idx);
    }

    #[test]
    fn index_point_lookup() {
        let mut db = RowDb::create(&["X"]);
        db.insert_table(&table(1_000));
        db.create_index("X");
        let hits = db.lookup("X", &Value::Double(42.0));
        assert_eq!(hits.len(), 10);
        assert!(db.lookup("X", &Value::Double(4242.0)).is_empty());
    }

    #[test]
    fn index_maintained_on_later_inserts() {
        let mut db = RowDb::create(&["X"]);
        db.create_index("X");
        db.insert_table(&table(100));
        db.insert_table(&table(100));
        assert_eq!(db.lookup("X", &Value::Double(1.0)).len(), 2);
        assert_eq!(db.row_count(), 200);
        assert_eq!(db.log_entries(), 200);
    }

    #[test]
    fn expression_interpreter() {
        let row = vec![Value::Int(3), Value::Double(4.5)];
        assert_eq!(Expr::Col(0).eval(&row), Value::Int(3));
        assert_eq!(Expr::Col(9).eval(&row), Value::Missing);
        let add = Expr::Add(Box::new(Expr::Col(0)), Box::new(Expr::Col(1)));
        assert_eq!(add.eval(&row), Value::Double(7.5));
        let lt = Expr::Lt(Box::new(Expr::Col(0)), Box::new(Expr::Col(1)));
        assert_eq!(lt.eval(&row), Value::Int(1));
        let b = Expr::Bucket {
            input: Box::new(Expr::Col(1)),
            lo: 0.0,
            hi: 10.0,
            count: 5,
        };
        assert_eq!(b.eval(&row), Value::Int(2));
    }

    #[test]
    fn out_of_range_rows_fall_out_of_histogram() {
        let mut db = RowDb::create(&["X"]);
        db.insert_table(&table(1_000));
        let h = db.histogram("X", 0.0, 50.0, 5);
        let total: u64 = h.iter().sum();
        assert_eq!(total, 500);
    }
}
