//! A general-purpose analytics engine (the Spark stand-in).
//!
//! Runs against the same loaded cluster datasets as Hillview, with the same
//! per-worker parallelism, but follows the general-engine contract: every
//! operator produces its *full, exact* result and ships it to the driver
//! through the same byte-counted links. No sampling, no display-resolution
//! truncation, no partial results. Per §7.1 the baseline is even given an
//! advantage: results are not rendered, only collected.

use bytes::Bytes;
use hillview_columnar::{RowKey, SortOrder, Value};
use hillview_core::dataset::DatasetId;
use hillview_core::error::{EngineError, EngineResult};
use hillview_core::Cluster;
use hillview_net::{link_pair, LinkSender, Wire, WireReader, WireWriter};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of one general-purpose query.
#[derive(Debug, Clone)]
pub struct GpOutcome<T> {
    /// The exact result.
    pub result: T,
    /// Wall-clock duration.
    pub duration: Duration,
    /// Bytes the driver received from executors.
    pub driver_bytes: u64,
}

/// The general-purpose engine over a Hillview cluster's datasets.
pub struct GpEngine {
    cluster: Arc<Cluster>,
}

/// A value→count table shipped in full (the shape of an exact group-by).
type CountMap = Vec<(Value, u64)>;
/// Exact 2-D group-by result: `((x, y), count)` pairs.
pub type PairCounts = Vec<((Value, Value), u64)>;

fn encode_counts(counts: &CountMap) -> Bytes {
    let mut w = WireWriter::new();
    w.put_varint(counts.len() as u64);
    for (v, c) in counts {
        v.encode(&mut w);
        w.put_varint(*c);
    }
    w.finish()
}

fn decode_counts(bytes: Bytes) -> EngineResult<CountMap> {
    let mut r = WireReader::new(bytes);
    let n = r.get_len("gp counts")?;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let v = Value::decode(&mut r)?;
        let c = r.get_varint()?;
        out.push((v, c));
    }
    Ok(out)
}

impl GpEngine {
    /// Wrap a cluster whose datasets this engine will query.
    pub fn new(cluster: Arc<Cluster>) -> Self {
        GpEngine { cluster }
    }

    /// Run `per_worker` on every worker's partitions in parallel; each
    /// worker ships its full result bytes to the driver, which folds with
    /// `combine`. This is the generic "shuffle to driver" skeleton.
    fn collect<T: Send>(
        &self,
        per_worker: impl Fn(usize) -> EngineResult<Bytes> + Send + Sync,
        decode: impl Fn(Bytes) -> EngineResult<T>,
        combine: impl Fn(Vec<T>) -> T,
    ) -> EngineResult<GpOutcome<T>> {
        let started = Instant::now();
        let (tx, rx) = link_pair(self.cluster.config().link);
        let n = self.cluster.num_workers();
        std::thread::scope(|scope| -> EngineResult<()> {
            let mut handles = Vec::new();
            for w in 0..n {
                let per_worker = &per_worker;
                let tx: LinkSender = tx.clone();
                handles.push(scope.spawn(move || -> EngineResult<()> {
                    let bytes = per_worker(w)?;
                    tx.send(bytes).map_err(EngineError::from)
                }));
            }
            let mut result = Ok(());
            for h in handles {
                let r = h.join().expect("gp worker panicked");
                if result.is_ok() {
                    result = r;
                }
            }
            result
        })?;
        drop(tx);
        let mut parts = Vec::with_capacity(n);
        for _ in 0..n {
            let frame = rx.recv()?;
            parts.push(decode(frame)?);
        }
        let driver_bytes = rx.metrics().bytes();
        let result = combine(parts);
        Ok(GpOutcome {
            result,
            duration: started.elapsed(),
            driver_bytes,
        })
    }

    fn partitions_of(
        &self,
        worker: usize,
        dataset: DatasetId,
    ) -> EngineResult<Arc<Vec<hillview_sketch::TableView>>> {
        self.cluster
            .worker(worker)
            .partitions(dataset)
            .ok_or(EngineError::DatasetMissing { worker, dataset })
    }

    /// Exact sort: every worker sorts *all* of its keys and ships them; the
    /// driver merges and returns the first `k` (O1–O3 shape). The shipped
    /// volume is proportional to the data — the general-engine hallmark.
    pub fn sort_first_k(
        &self,
        dataset: DatasetId,
        columns: &[&str],
        k: usize,
    ) -> EngineResult<GpOutcome<Vec<RowKey>>> {
        let order = SortOrder::ascending(columns);
        self.collect(
            |w| {
                let parts = self.partitions_of(w, dataset)?;
                let mut keys: Vec<RowKey> = Vec::new();
                for view in parts.iter() {
                    let resolved = order.resolve(view.table()).map_err(EngineError::from)?;
                    for row in view.iter_rows() {
                        keys.push(resolved.key(view.table(), row));
                    }
                }
                keys.sort();
                Ok(keys.to_bytes())
            },
            |b| Vec::<RowKey>::from_bytes(b).map_err(EngineError::from),
            |parts| {
                let mut all: Vec<RowKey> = parts.into_iter().flatten().collect();
                all.sort();
                all.truncate(k);
                all
            },
        )
    }

    /// Exact quantile: full sort shipped, driver indexes the rank (O4).
    pub fn quantile(
        &self,
        dataset: DatasetId,
        columns: &[&str],
        q: f64,
    ) -> EngineResult<GpOutcome<Option<RowKey>>> {
        let order = SortOrder::ascending(columns);
        let sorted = self.collect(
            |w| {
                let parts = self.partitions_of(w, dataset)?;
                let mut keys: Vec<RowKey> = Vec::new();
                for view in parts.iter() {
                    let resolved = order.resolve(view.table()).map_err(EngineError::from)?;
                    for row in view.iter_rows() {
                        keys.push(resolved.key(view.table(), row));
                    }
                }
                keys.sort();
                Ok(keys.to_bytes())
            },
            |b| Vec::<RowKey>::from_bytes(b).map_err(EngineError::from),
            |parts| {
                let mut all: Vec<RowKey> = parts.into_iter().flatten().collect();
                all.sort();
                all
            },
        )?;
        let result = if sorted.result.is_empty() {
            None
        } else {
            let idx = ((q.clamp(0.0, 1.0)) * (sorted.result.len() - 1) as f64).round() as usize;
            Some(sorted.result[idx].clone())
        };
        Ok(GpOutcome {
            result,
            duration: sorted.duration,
            driver_bytes: sorted.driver_bytes,
        })
    }

    /// Exact group-by-value counts (the general engine's "histogram": it
    /// does not know about buckets or pixels, so it groups by raw value and
    /// ships every group — O5/O7's comparison point).
    pub fn group_count(
        &self,
        dataset: DatasetId,
        column: &str,
    ) -> EngineResult<GpOutcome<CountMap>> {
        self.collect(
            |w| {
                let parts = self.partitions_of(w, dataset)?;
                let mut counts: HashMap<Value, u64> = HashMap::new();
                for view in parts.iter() {
                    let col = view
                        .table()
                        .column_by_name(column)
                        .map_err(EngineError::from)?;
                    for row in view.iter_rows() {
                        *counts.entry(col.value(row)).or_insert(0) += 1;
                    }
                }
                let vec: CountMap = counts.into_iter().collect();
                Ok(encode_counts(&vec))
            },
            decode_counts,
            |parts| {
                let mut all: HashMap<Value, u64> = HashMap::new();
                for part in parts {
                    for (v, c) in part {
                        *all.entry(v).or_insert(0) += c;
                    }
                }
                let mut vec: CountMap = all.into_iter().collect();
                vec.sort_by(|a, b| a.0.cmp(&b.0));
                vec
            },
        )
    }

    /// Exact 2-D group-by (the heat-map comparison, O11).
    pub fn group_count_2d(
        &self,
        dataset: DatasetId,
        col_x: &str,
        col_y: &str,
    ) -> EngineResult<GpOutcome<PairCounts>> {
        self.collect(
            |w| {
                let parts = self.partitions_of(w, dataset)?;
                let mut counts: HashMap<(Value, Value), u64> = HashMap::new();
                for view in parts.iter() {
                    let cx = view
                        .table()
                        .column_by_name(col_x)
                        .map_err(EngineError::from)?;
                    let cy = view
                        .table()
                        .column_by_name(col_y)
                        .map_err(EngineError::from)?;
                    for row in view.iter_rows() {
                        *counts.entry((cx.value(row), cy.value(row))).or_insert(0) += 1;
                    }
                }
                let mut w2 = WireWriter::new();
                w2.put_varint(counts.len() as u64);
                for ((x, y), c) in counts {
                    x.encode(&mut w2);
                    y.encode(&mut w2);
                    w2.put_varint(c);
                }
                Ok(w2.finish())
            },
            |b| {
                let mut r = WireReader::new(b);
                let n = r.get_len("gp 2d")?;
                let mut out = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let x = Value::decode(&mut r)?;
                    let y = Value::decode(&mut r)?;
                    let c = r.get_varint()?;
                    out.push(((x, y), c));
                }
                Ok(out)
            },
            |parts| {
                let mut all: HashMap<(Value, Value), u64> = HashMap::new();
                for part in parts {
                    for (k, c) in part {
                        *all.entry(k).or_insert(0) += c;
                    }
                }
                all.into_iter().collect()
            },
        )
    }

    /// Exact distinct values: ships the whole distinct set (O9's shape).
    pub fn distinct(&self, dataset: DatasetId, column: &str) -> EngineResult<GpOutcome<u64>> {
        let counted = self.group_count(dataset, column)?;
        Ok(GpOutcome {
            result: counted
                .result
                .iter()
                .filter(|(v, _)| !v.is_missing())
                .count() as u64,
            duration: counted.duration,
            driver_bytes: counted.driver_bytes,
        })
    }

    /// Exact top-k by frequency (O8's comparison): full group-by, then the
    /// driver sorts the complete group table.
    pub fn top_k(
        &self,
        dataset: DatasetId,
        column: &str,
        k: usize,
    ) -> EngineResult<GpOutcome<CountMap>> {
        let mut counted = self.group_count(dataset, column)?;
        counted
            .result
            .sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        counted.result.truncate(k);
        Ok(counted)
    }
}

impl std::fmt::Debug for GpEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GpEngine({:?})", self.cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, I64Column};
    use hillview_columnar::udf::UdfRegistry;
    use hillview_columnar::{ColumnKind, Table};
    use hillview_core::dataset::{FnSource, SourceRegistry, SourceSpec};
    use hillview_core::ClusterConfig;

    fn setup() -> (Arc<Cluster>, DatasetId) {
        let mut sources = SourceRegistry::new();
        sources.register(Arc::new(FnSource::new("nums", |w, _n, _mp, _s| {
            let t = Table::builder()
                .column(
                    "X",
                    ColumnKind::Int,
                    Column::Int(I64Column::from_options(
                        (0..5_000).map(|i| Some((i + w as i64 * 5_000) % 100)),
                    )),
                )
                .build()
                .unwrap();
            Ok(vec![t])
        })));
        let c = Cluster::new(ClusterConfig::test(), sources, UdfRegistry::new());
        let ds = DatasetId(1);
        c.load(
            ds,
            &SourceSpec {
                source: Arc::from("nums"),
                snapshot: 0,
            },
        )
        .unwrap();
        (c, ds)
    }

    #[test]
    fn exact_sort_returns_smallest_keys() {
        let (c, ds) = setup();
        let gp = GpEngine::new(c);
        let o = gp.sort_first_k(ds, &["X"], 5).unwrap();
        let got: Vec<i64> = o
            .result
            .iter()
            .map(|k| k.values()[0].as_i64().unwrap())
            .collect();
        assert_eq!(got, vec![0, 0, 0, 0, 0], "100 copies of each value");
        // Shipped every key: 10_000 keys ≫ the 5 returned.
        assert!(o.driver_bytes > 10_000, "bytes {}", o.driver_bytes);
    }

    #[test]
    fn exact_quantile() {
        let (c, ds) = setup();
        let gp = GpEngine::new(c);
        let o = gp.quantile(ds, &["X"], 0.5).unwrap();
        let v = o.result.unwrap().values()[0].as_i64().unwrap();
        assert!((45..=55).contains(&v), "median {v}");
    }

    #[test]
    fn group_count_is_exact() {
        let (c, ds) = setup();
        let gp = GpEngine::new(c);
        let o = gp.group_count(ds, "X").unwrap();
        assert_eq!(o.result.len(), 100);
        assert!(o.result.iter().all(|(_, c)| *c == 100));
    }

    #[test]
    fn distinct_and_topk() {
        let (c, ds) = setup();
        let gp = GpEngine::new(c);
        assert_eq!(gp.distinct(ds, "X").unwrap().result, 100);
        let o = gp.top_k(ds, "X", 3).unwrap();
        assert_eq!(o.result.len(), 3);
        assert!(o.result.iter().all(|(_, c)| *c == 100));
    }

    #[test]
    fn gp_ships_more_bytes_than_hillview() {
        use hillview_core::erased::erase;
        use hillview_core::QueryOptions;
        use hillview_sketch::histogram::HistogramSketch;
        use hillview_sketch::BucketSpec;
        let (c, ds) = setup();
        // Hillview: 10-bucket histogram summary.
        let hv = c
            .run_erased(
                ds,
                &erase(HistogramSketch::streaming(
                    "X",
                    BucketSpec::numeric(0.0, 100.0, 10),
                )),
                &QueryOptions::default(),
            )
            .unwrap();
        // GP: exact group-by of all 100 values.
        let gp = GpEngine::new(c).group_count(ds, "X").unwrap();
        assert!(
            gp.driver_bytes > 2 * hv.root_bytes,
            "gp {} vs hillview {}",
            gp.driver_bytes,
            hv.root_bytes
        );
    }

    #[test]
    fn missing_dataset_errors() {
        let (c, _) = setup();
        let gp = GpEngine::new(c);
        assert!(matches!(
            gp.group_count(DatasetId(42), "X"),
            Err(EngineError::DatasetMissing { .. })
        ));
    }

    #[test]
    fn heatmap_2d_group() {
        let (c, ds) = setup();
        let gp = GpEngine::new(c);
        let o = gp.group_count_2d(ds, "X", "X").unwrap();
        assert_eq!(o.result.len(), 100, "diagonal pairs only");
    }
}
