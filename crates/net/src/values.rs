//! [`Wire`] implementations for columnar cell values and rows.
//!
//! Tabular-view summaries (next items, quantiles, find) ship small numbers
//! of materialized rows between tree nodes; these encoders define their
//! on-wire representation.

use crate::error::{Error, Result};
use crate::wire::{Wire, WireReader, WireWriter};
use hillview_columnar::{Row, RowKey, Value};

impl Wire for Value {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Value::Missing => w.put_u8(0),
            Value::Int(v) => {
                w.put_u8(1);
                w.put_i64(*v);
            }
            Value::Double(v) => {
                w.put_u8(2);
                w.put_f64(*v);
            }
            Value::Date(v) => {
                w.put_u8(3);
                w.put_i64(*v);
            }
            Value::Str(s) => {
                w.put_u8(4);
                w.put_str(s);
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self> {
        Ok(match r.get_u8()? {
            0 => Value::Missing,
            1 => Value::Int(r.get_i64()?),
            2 => Value::Double(r.get_f64()?),
            3 => Value::Date(r.get_i64()?),
            4 => Value::Str(r.get_str()?.into()),
            tag => {
                return Err(Error::BadTag {
                    context: "Value",
                    tag,
                })
            }
        })
    }
}

impl Wire for Row {
    fn encode(&self, w: &mut WireWriter) {
        self.values.encode(w);
    }

    fn decode(r: &mut WireReader) -> Result<Self> {
        Ok(Row::new(Vec::<Value>::decode(r)?))
    }
}

impl Wire for RowKey {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.values().len() as u64);
        for (v, d) in self.values().iter().zip(self.descending()) {
            v.encode(w);
            w.put_u8(*d as u8);
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self> {
        let len = r.get_len("RowKey")?;
        let mut values = Vec::with_capacity(len.min(64));
        let mut desc = Vec::with_capacity(len.min(64));
        for _ in 0..len {
            values.push(Value::decode(r)?);
            desc.push(match r.get_u8()? {
                0 => false,
                1 => true,
                tag => {
                    return Err(Error::BadTag {
                        context: "RowKey direction",
                        tag,
                    })
                }
            });
        }
        Ok(RowKey::new(values, desc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(T::from_bytes(v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn value_variants_roundtrip() {
        roundtrip(Value::Missing);
        roundtrip(Value::Int(-42));
        roundtrip(Value::Double(2.5));
        roundtrip(Value::Date(1_700_000_000_000));
        roundtrip(Value::str("Gandalf"));
        roundtrip(Value::str(""));
    }

    #[test]
    fn row_roundtrip() {
        roundtrip(Row::new(vec![
            Value::str("SFO"),
            Value::Int(42),
            Value::Missing,
        ]));
        roundtrip(Row::new(vec![]));
    }

    #[test]
    fn rowkey_roundtrip_preserves_direction() {
        let k = RowKey::new(vec![Value::str("AA"), Value::Int(10)], vec![false, true]);
        let k2 = RowKey::from_bytes(k.to_bytes()).unwrap();
        assert_eq!(k2.descending(), &[false, true]);
        assert_eq!(k, k2);
    }

    #[test]
    fn rowkey_ordering_survives_wire() {
        let a = RowKey::new(vec![Value::Int(1)], vec![true]);
        let b = RowKey::new(vec![Value::Int(2)], vec![true]);
        let a2 = RowKey::from_bytes(a.to_bytes()).unwrap();
        let b2 = RowKey::from_bytes(b.to_bytes()).unwrap();
        assert_eq!(a.cmp(&b), a2.cmp(&b2));
    }

    #[test]
    fn bad_value_tag_rejected() {
        let mut w = WireWriter::new();
        w.put_u8(99);
        assert!(matches!(
            Value::from_bytes(w.finish()),
            Err(Error::BadTag { .. })
        ));
    }
}
