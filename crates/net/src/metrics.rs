//! Shared traffic counters.
//!
//! Figure 5 (bottom) of the paper plots "how many bytes the root node
//! received" per operation; these counters are incremented by every link
//! send so the benchmark harness reads real measurements.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cumulative byte/message counters for one endpoint (cheaply cloneable).
#[derive(Debug, Clone, Default)]
pub struct NetMetrics {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    bytes: AtomicU64,
    messages: AtomicU64,
    faults: AtomicU64,
}

impl NetMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one message of `bytes` payload (plus 4-byte frame header).
    pub fn record(&self, bytes: u64) {
        self.inner.bytes.fetch_add(bytes + 4, Ordering::Relaxed);
        self.inner.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Total bytes recorded (payload + headers).
    pub fn bytes(&self) -> u64 {
        self.inner.bytes.load(Ordering::Relaxed)
    }

    /// Total messages recorded.
    pub fn messages(&self) -> u64 {
        self.inner.messages.load(Ordering::Relaxed)
    }

    /// Record one injected link fault (drop/duplicate/corrupt/delay).
    pub fn record_fault(&self) {
        self.inner.faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Total link faults injected on this endpoint — lets tests assert a
    /// fault schedule actually fired.
    pub fn faults(&self) -> u64 {
        self.inner.faults.load(Ordering::Relaxed)
    }

    /// Reset to zero (between benchmark operations).
    pub fn reset(&self) {
        self.inner.bytes.store(0, Ordering::Relaxed);
        self.inner.messages.store(0, Ordering::Relaxed);
        self.inner.faults.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_with_header_overhead() {
        let m = NetMetrics::new();
        m.record(100);
        m.record(50);
        assert_eq!(m.bytes(), 158, "2 × 4-byte headers included");
        assert_eq!(m.messages(), 2);
    }

    #[test]
    fn clones_share_state() {
        let m = NetMetrics::new();
        let m2 = m.clone();
        m2.record(10);
        assert_eq!(m.bytes(), 14);
    }

    #[test]
    fn reset_zeroes() {
        let m = NetMetrics::new();
        m.record(10);
        m.reset();
        assert_eq!(m.bytes(), 0);
        assert_eq!(m.messages(), 0);
    }

    #[test]
    fn concurrent_records_are_counted() {
        let m = NetMetrics::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.record(1);
                    }
                });
            }
        });
        assert_eq!(m.messages(), 8000);
        assert_eq!(m.bytes(), 8000 * 5);
    }
}
