//! Compact binary wire format.
//!
//! Summaries are "small by construction" (paper §5.3) and their size is the
//! quantity plotted in Figure 5 (bottom), so serialization is hand-rolled
//! rather than delegated to an opaque framework: integers are varint-encoded,
//! floats are fixed 8 bytes, collections carry a varint length prefix. The
//! [`Wire`] trait is implemented here for primitives and containers; summary
//! types in higher crates compose these.

use crate::error::{Error, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Sanity cap on decoded collection lengths (defends against corrupt
/// frames; no legitimate summary is anywhere near this).
const MAX_LEN: u64 = 1 << 28;

/// Streaming writer over a growable byte buffer.
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Start an empty buffer.
    pub fn new() -> Self {
        WireWriter {
            buf: BytesMut::with_capacity(64),
        }
    }

    /// Finish and take the bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write an unsigned varint (LEB128).
    pub fn put_varint(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.put_u8((v as u8 & 0x7F) | 0x80);
            v >>= 7;
        }
        self.buf.put_u8(v as u8);
    }

    /// Write a signed integer with zigzag + varint.
    pub fn put_i64(&mut self, v: i64) {
        self.put_varint(zigzag(v));
    }

    /// Write a fixed 8-byte little-endian float.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Write a fixed 8-byte little-endian unsigned word (bit-packed column
    /// payloads, where varints would inflate high-entropy words).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_varint(s.len() as u64);
        self.buf.put_slice(s.as_bytes());
    }

    /// Write raw bytes with a length prefix.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_varint(b.len() as u64);
        self.buf.put_slice(b);
    }
}

impl Default for WireWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Streaming reader over a byte slice.
pub struct WireReader {
    buf: Bytes,
}

impl WireReader {
    /// Wrap bytes for reading.
    pub fn new(buf: Bytes) -> Self {
        WireReader { buf }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// Read an unsigned varint.
    pub fn get_varint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            if !self.buf.has_remaining() {
                return Err(Error::Truncated { context: "varint" });
            }
            let b = self.buf.get_u8();
            if shift >= 64 {
                return Err(Error::BadLength {
                    context: "varint overflow",
                    len: v,
                });
            }
            v |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read a zigzag-varint signed integer.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(unzigzag(self.get_varint()?))
    }

    /// Read a fixed 8-byte float.
    pub fn get_f64(&mut self) -> Result<f64> {
        if self.buf.remaining() < 8 {
            return Err(Error::Truncated { context: "f64" });
        }
        Ok(self.buf.get_f64_le())
    }

    /// Read a fixed 8-byte little-endian unsigned word.
    pub fn get_u64(&mut self) -> Result<u64> {
        if self.buf.remaining() < 8 {
            return Err(Error::Truncated { context: "u64" });
        }
        Ok(self.buf.get_u64_le())
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        if !self.buf.has_remaining() {
            return Err(Error::Truncated { context: "u8" });
        }
        Ok(self.buf.get_u8())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_len("string")?;
        if self.buf.remaining() < len {
            return Err(Error::Truncated { context: "string" });
        }
        let raw = self.buf.copy_to_bytes(len);
        String::from_utf8(raw.to_vec()).map_err(|_| Error::BadUtf8)
    }

    /// Read length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.get_len("bytes")?;
        if self.buf.remaining() < len {
            return Err(Error::Truncated { context: "bytes" });
        }
        Ok(self.buf.copy_to_bytes(len).to_vec())
    }

    /// Read a collection length prefix with the sanity cap applied.
    pub fn get_len(&mut self, context: &'static str) -> Result<usize> {
        let len = self.get_varint()?;
        if len > MAX_LEN {
            return Err(Error::BadLength {
                context: "length prefix",
                len,
            });
        }
        let _ = context;
        Ok(len as usize)
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Types that can be serialized to / deserialized from the wire format.
///
/// Every summary the execution tree transports implements `Wire`; the byte
/// length of the encoding is what the bandwidth experiments measure.
pub trait Wire: Sized {
    /// Append this value to the writer.
    fn encode(&self, w: &mut WireWriter);
    /// Decode one value from the reader.
    fn decode(r: &mut WireReader) -> Result<Self>;

    /// Convenience: encode to a fresh byte buffer.
    fn to_bytes(&self) -> Bytes {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.finish()
    }

    /// Convenience: decode from a byte buffer, requiring full consumption.
    fn from_bytes(bytes: Bytes) -> Result<Self> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(Error::BadLength {
                context: "trailing bytes",
                len: r.remaining() as u64,
            });
        }
        Ok(v)
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(*self);
    }
    fn decode(r: &mut WireReader) -> Result<Self> {
        r.get_varint()
    }
}

impl Wire for u32 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(*self as u64);
    }
    fn decode(r: &mut WireReader) -> Result<Self> {
        let v = r.get_varint()?;
        u32::try_from(v).map_err(|_| Error::BadLength {
            context: "u32",
            len: v,
        })
    }
}

impl Wire for usize {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(*self as u64);
    }
    fn decode(r: &mut WireReader) -> Result<Self> {
        let v = r.get_varint()?;
        usize::try_from(v).map_err(|_| Error::BadLength {
            context: "usize",
            len: v,
        })
    }
}

impl Wire for i64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_i64(*self);
    }
    fn decode(r: &mut WireReader) -> Result<Self> {
        r.get_i64()
    }
}

impl Wire for f64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_f64(*self);
    }
    fn decode(r: &mut WireReader) -> Result<Self> {
        r.get_f64()
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(*self as u8);
    }
    fn decode(r: &mut WireReader) -> Result<Self> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(Error::BadTag {
                context: "bool",
                tag,
            }),
        }
    }
}

impl Wire for String {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(self);
    }
    fn decode(r: &mut WireReader) -> Result<Self> {
        r.get_str()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut WireReader) -> Result<Self> {
        let len = r.get_len("Vec")?;
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader) -> Result<Self> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(Error::BadTag {
                context: "Option",
                tag,
            }),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut WireReader) -> Result<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut WireReader) -> Result<Self> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let b = v.to_bytes();
        let d = T::from_bytes(b).unwrap();
        assert_eq!(v, d);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(127u64);
        roundtrip(128u64);
        roundtrip(-1i64);
        roundtrip(i64::MIN);
        roundtrip(i64::MAX);
        roundtrip(std::f64::consts::PI);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(true);
        roundtrip(false);
        roundtrip("hello world".to_string());
        roundtrip(String::new());
        roundtrip("日本語テキスト".to_string());
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(42i64));
        roundtrip(Option::<i64>::None);
        roundtrip((1u64, "x".to_string()));
        roundtrip((1u64, 2i64, 3.5f64));
        roundtrip(vec![Some("a".to_string()), None]);
    }

    #[test]
    fn varint_is_compact_for_small_values() {
        let mut w = WireWriter::new();
        w.put_varint(5);
        assert_eq!(w.len(), 1);
        let mut w = WireWriter::new();
        w.put_varint(300);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn truncated_input_errors() {
        let b = 123456789u64.to_bytes();
        let cut = b.slice(0..b.len() - 1);
        assert!(matches!(u64::from_bytes(cut), Err(Error::Truncated { .. })));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = WireWriter::new();
        w.put_varint(1);
        w.put_varint(2);
        assert!(matches!(
            u64::from_bytes(w.finish()),
            Err(Error::BadLength { .. })
        ));
    }

    #[test]
    fn bad_tags_rejected() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        assert!(matches!(
            bool::from_bytes(w.finish()),
            Err(Error::BadTag { .. })
        ));
        let mut w = WireWriter::new();
        w.put_u8(9);
        assert!(matches!(
            Option::<u64>::from_bytes(w.finish()),
            Err(Error::BadTag { .. })
        ));
    }

    #[test]
    fn implausible_length_rejected() {
        let mut w = WireWriter::new();
        w.put_varint(u64::MAX / 2);
        assert!(matches!(
            Vec::<u64>::from_bytes(w.finish()),
            Err(Error::BadLength { .. })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = WireWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        assert_eq!(String::from_bytes(w.finish()), Err(Error::BadUtf8));
    }

    #[test]
    fn zigzag_properties() {
        for v in [-2i64, -1, 0, 1, 2, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes encode small.
        assert!(zigzag(-1) < 10);
        assert!(zigzag(1) < 10);
    }
}
