//! Errors for the simulated network layer.

use std::fmt;

/// Errors produced by wire (de)serialization and link operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Ran out of bytes while decoding.
    Truncated {
        /// What was being decoded.
        context: &'static str,
    },
    /// An enum tag or framing byte had an unexpected value.
    BadTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A length prefix exceeded sanity limits.
    BadLength {
        /// What was being decoded.
        context: &'static str,
        /// The claimed length.
        len: u64,
    },
    /// A UTF-8 string payload was invalid.
    BadUtf8,
    /// The peer endpoint has disconnected.
    Disconnected,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated { context } => write!(f, "truncated input decoding {context}"),
            Error::BadTag { context, tag } => write!(f, "bad tag {tag} decoding {context}"),
            Error::BadLength { context, len } => {
                write!(f, "implausible length {len} decoding {context}")
            }
            Error::BadUtf8 => write!(f, "invalid UTF-8 in wire string"),
            Error::Disconnected => write!(f, "link peer disconnected"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_context() {
        let e = Error::Truncated { context: "u64" };
        assert!(e.to_string().contains("u64"));
        let e = Error::BadTag {
            context: "Value",
            tag: 9,
        };
        assert!(e.to_string().contains("Value"));
        assert!(e.to_string().contains('9'));
    }
}
