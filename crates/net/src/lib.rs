//! # hillview-net
//!
//! Simulated RPC substrate for Hillview-RS.
//!
//! The paper's deployment runs gRPC between servers and streams partial
//! results to a web client (§6). Here the whole cluster lives in one process
//! (DESIGN.md §1), but the *communication discipline* is preserved: every
//! summary that crosses a tree edge is serialized into a length-prefixed
//! frame with a hand-rolled wire format, byte counts are recorded per edge
//! (Figure 5's "data received by the root node" is measured, not estimated),
//! and links can inject latency/bandwidth delays to model a 10 Gbps LAN.
//!
//! * [`wire`] — compact binary serialization ([`Wire`] trait) for all
//!   summary payloads, with property-tested round-trips.
//! * [`link`] — simulated point-to-point links over crossbeam channels with
//!   byte accounting and optional delay injection.
//! * [`metrics`] — shared atomic counters for bytes/messages per endpoint.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod link;
pub mod metrics;
pub mod values;
pub mod wire;

pub use error::{Error, Result};
pub use link::{link_pair, FrameFault, FrameFaultHook, LinkConfig, LinkReceiver, LinkSender};
pub use metrics::NetMetrics;
pub use wire::{Wire, WireReader, WireWriter};
