//! Simulated point-to-point links.
//!
//! A link is a unidirectional, framed byte channel between two tree nodes
//! (paper Fig. 1: "communication happens only along the edges of the tree").
//! Frames carry opaque payloads produced by [`Wire`](crate::wire::Wire)
//! encoders. Each send records traffic in the receiver-side [`NetMetrics`]
//! and can stall to model link latency and bandwidth.

use crate::error::{Error, Result};
use crate::metrics::NetMetrics;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// Delay model for a link.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkConfig {
    /// Fixed per-message latency applied on send.
    pub latency: Duration,
    /// Optional bandwidth cap in bytes/second; adds size-proportional delay.
    pub bandwidth: Option<u64>,
}

impl LinkConfig {
    /// No injected delay (the default for unit tests).
    pub fn instant() -> Self {
        Self::default()
    }

    /// Roughly a 10 Gbps LAN with 0.1 ms latency — the paper's testbed.
    pub fn lan_10gbps() -> Self {
        LinkConfig {
            latency: Duration::from_micros(100),
            bandwidth: Some(1_250_000_000),
        }
    }

    fn delay_for(&self, len: usize) -> Duration {
        let bw = match self.bandwidth {
            Some(b) if b > 0 => Duration::from_secs_f64(len as f64 / b as f64),
            _ => Duration::ZERO,
        };
        self.latency + bw
    }
}

/// Sending half of a link.
#[derive(Debug, Clone)]
pub struct LinkSender {
    tx: Sender<Bytes>,
    cfg: LinkConfig,
    metrics: NetMetrics,
}

/// Receiving half of a link.
#[derive(Debug)]
pub struct LinkReceiver {
    rx: Receiver<Bytes>,
    metrics: NetMetrics,
}

/// Create a connected link pair. Traffic is recorded in the returned
/// receiver's metrics (readable via [`LinkReceiver::metrics`]).
pub fn link_pair(cfg: LinkConfig) -> (LinkSender, LinkReceiver) {
    let (tx, rx) = unbounded();
    let metrics = NetMetrics::new();
    (
        LinkSender {
            tx,
            cfg,
            metrics: metrics.clone(),
        },
        LinkReceiver { rx, metrics },
    )
}

impl LinkSender {
    /// Send one frame; blocks for the modeled transmission delay.
    pub fn send(&self, payload: Bytes) -> Result<()> {
        let delay = self.cfg.delay_for(payload.len());
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        self.metrics.record(payload.len() as u64);
        self.tx.send(payload).map_err(|_| Error::Disconnected)
    }

    /// The metrics this link reports into.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }
}

impl LinkReceiver {
    /// Block until a frame arrives or the sender disconnects.
    pub fn recv(&self) -> Result<Bytes> {
        self.rx.recv().map_err(|_| Error::Disconnected)
    }

    /// Block with a timeout; `Ok(None)` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>> {
        match self.rx.recv_timeout(timeout) {
            Ok(b) => Ok(Some(b)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(Error::Disconnected),
        }
    }

    /// Non-blocking poll; `Ok(None)` when no frame is waiting.
    pub fn try_recv(&self) -> Result<Option<Bytes>> {
        match self.rx.try_recv() {
            Ok(b) => Ok(Some(b)),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(Error::Disconnected),
        }
    }

    /// Traffic counters for this endpoint.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn frames_arrive_in_order() {
        let (tx, rx) = link_pair(LinkConfig::instant());
        for i in 0u8..10 {
            tx.send(Bytes::from(vec![i])).unwrap();
        }
        for i in 0u8..10 {
            assert_eq!(rx.recv().unwrap(), Bytes::from(vec![i]));
        }
    }

    #[test]
    fn metrics_count_traffic() {
        let (tx, rx) = link_pair(LinkConfig::instant());
        tx.send(Bytes::from(vec![0; 100])).unwrap();
        tx.send(Bytes::from(vec![0; 20])).unwrap();
        assert_eq!(rx.metrics().messages(), 2);
        assert_eq!(rx.metrics().bytes(), 128);
    }

    #[test]
    fn disconnection_detected() {
        let (tx, rx) = link_pair(LinkConfig::instant());
        drop(tx);
        assert_eq!(rx.recv(), Err(Error::Disconnected));
        let (tx, rx) = link_pair(LinkConfig::instant());
        drop(rx);
        assert_eq!(tx.send(Bytes::new()), Err(Error::Disconnected));
    }

    #[test]
    fn timeout_and_try_recv() {
        let (tx, rx) = link_pair(LinkConfig::instant());
        assert_eq!(rx.try_recv().unwrap(), None);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)).unwrap(), None);
        tx.send(Bytes::from_static(b"x")).unwrap();
        assert_eq!(rx.try_recv().unwrap(), Some(Bytes::from_static(b"x")));
    }

    #[test]
    fn latency_injection_delays_sends() {
        let cfg = LinkConfig {
            latency: Duration::from_millis(20),
            bandwidth: None,
        };
        let (tx, rx) = link_pair(cfg);
        let start = Instant::now();
        tx.send(Bytes::from_static(b"slow")).unwrap();
        rx.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn bandwidth_cap_scales_with_size() {
        let cfg = LinkConfig {
            latency: Duration::ZERO,
            bandwidth: Some(1_000_000), // 1 MB/s
        };
        let (tx, _rx) = link_pair(cfg);
        let start = Instant::now();
        tx.send(Bytes::from(vec![0u8; 50_000])).unwrap(); // 50 ms at 1 MB/s
        assert!(start.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    fn cross_thread_usage() {
        let (tx, rx) = link_pair(LinkConfig::instant());
        let h = std::thread::spawn(move || {
            for i in 0u64..100 {
                tx.send(Bytes::copy_from_slice(&i.to_le_bytes())).unwrap();
            }
        });
        let mut sum = 0u64;
        for _ in 0..100 {
            let b = rx.recv().unwrap();
            sum += u64::from_le_bytes(b.as_ref().try_into().unwrap());
        }
        h.join().unwrap();
        assert_eq!(sum, 4950);
    }
}
