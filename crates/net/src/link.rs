//! Simulated point-to-point links.
//!
//! A link is a unidirectional, framed byte channel between two tree nodes
//! (paper Fig. 1: "communication happens only along the edges of the tree").
//! Frames carry opaque payloads produced by [`Wire`](crate::wire::Wire)
//! encoders. Each send records traffic in the receiver-side [`NetMetrics`]
//! and can stall to model link latency and bandwidth.
//!
//! ## Fault injection
//!
//! A sender can be armed with a [`FrameFaultHook`]: a pure decision
//! function consulted once per outgoing frame with the frame's sequence
//! number and length. The hook chooses a [`FrameFault`] — deliver, drop,
//! duplicate, corrupt one bit, or delay — and the link applies it before
//! (or instead of) the real send. Faults are invisible to the sending
//! code: `send` still reports success for a dropped frame, exactly like a
//! lossy network. Injected faults are counted in the link's [`NetMetrics`]
//! so tests can assert a schedule actually fired.

use crate::error::{Error, Result};
use crate::metrics::NetMetrics;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Delay model for a link.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkConfig {
    /// Fixed per-message latency applied on send.
    pub latency: Duration,
    /// Optional bandwidth cap in bytes/second; adds size-proportional delay.
    pub bandwidth: Option<u64>,
}

impl LinkConfig {
    /// No injected delay (the default for unit tests).
    pub fn instant() -> Self {
        Self::default()
    }

    /// Roughly a 10 Gbps LAN with 0.1 ms latency — the paper's testbed.
    pub fn lan_10gbps() -> Self {
        LinkConfig {
            latency: Duration::from_micros(100),
            bandwidth: Some(1_250_000_000),
        }
    }

    fn delay_for(&self, len: usize) -> Duration {
        let bw = match self.bandwidth {
            Some(b) if b > 0 => Duration::from_secs_f64(len as f64 / b as f64),
            _ => Duration::ZERO,
        };
        self.latency + bw
    }
}

/// What a fault hook decides for one outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// Send the frame normally.
    Deliver,
    /// Silently discard the frame; the sender still observes success.
    Drop,
    /// Send the frame twice back to back.
    Duplicate,
    /// Flip one bit of the payload before sending. The bit index is
    /// `seed % (len * 8)`, so the corruption site is a pure function of
    /// the hook's decision and the frame length (replayable).
    Corrupt {
        /// Seed selecting which bit to flip.
        seed: u64,
    },
    /// Stall the sending thread before delivering (a straggler frame).
    Delay(Duration),
}

/// Per-frame fault decision function: `(frame sequence number, payload
/// length) → fault`. Must be pure in its inputs so a failing schedule
/// replays identically.
pub type FrameFaultHook = Arc<dyn Fn(u64, usize) -> FrameFault + Send + Sync>;

/// Sending half of a link.
#[derive(Clone)]
pub struct LinkSender {
    tx: Sender<Bytes>,
    cfg: LinkConfig,
    metrics: NetMetrics,
    faults: Option<FrameFaultHook>,
    /// Outgoing frame sequence number fed to the fault hook. Shared by
    /// clones made *after* arming, so one logical endpoint numbers its
    /// frames consecutively.
    frame_seq: Arc<AtomicU64>,
}

impl std::fmt::Debug for LinkSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LinkSender(faults={}, frames={})",
            self.faults.is_some(),
            // lint: allow(relaxed, Debug-format snapshot of a diagnostics counter)
            self.frame_seq.load(Ordering::Relaxed)
        )
    }
}

/// Receiving half of a link.
#[derive(Debug)]
pub struct LinkReceiver {
    rx: Receiver<Bytes>,
    metrics: NetMetrics,
}

/// Create a connected link pair. Traffic is recorded in the returned
/// receiver's metrics (readable via [`LinkReceiver::metrics`]).
pub fn link_pair(cfg: LinkConfig) -> (LinkSender, LinkReceiver) {
    let (tx, rx) = unbounded();
    let metrics = NetMetrics::new();
    (
        LinkSender {
            tx,
            cfg,
            metrics: metrics.clone(),
            faults: None,
            frame_seq: Arc::new(AtomicU64::new(0)),
        },
        LinkReceiver { rx, metrics },
    )
}

impl LinkSender {
    /// Arm this sender with a fault hook and a fresh frame counter.
    /// Clones made from the armed sender share the counter.
    #[must_use]
    pub fn with_faults(mut self, hook: FrameFaultHook) -> Self {
        self.faults = Some(hook);
        self.frame_seq = Arc::new(AtomicU64::new(0));
        self
    }

    /// Send one frame; blocks for the modeled transmission delay, applying
    /// any armed fault decision first.
    pub fn send(&self, payload: Bytes) -> Result<()> {
        let fault = match &self.faults {
            Some(hook) => hook(self.frame_seq.fetch_add(1, Ordering::SeqCst), payload.len()),
            None => FrameFault::Deliver,
        };
        match fault {
            FrameFault::Deliver => self.send_frame(payload),
            FrameFault::Drop => {
                // The frame vanishes on the wire; the sender cannot tell.
                self.metrics.record_fault();
                Ok(())
            }
            FrameFault::Duplicate => {
                self.metrics.record_fault();
                self.send_frame(payload.clone())?;
                self.send_frame(payload)
            }
            FrameFault::Corrupt { seed } => {
                self.metrics.record_fault();
                let mut bytes = payload.to_vec();
                if !bytes.is_empty() {
                    let bit = (seed % (bytes.len() as u64 * 8)) as usize;
                    bytes[bit / 8] ^= 1 << (bit % 8);
                }
                self.send_frame(Bytes::from(bytes))
            }
            FrameFault::Delay(d) => {
                self.metrics.record_fault();
                std::thread::sleep(d);
                self.send_frame(payload)
            }
        }
    }

    fn send_frame(&self, payload: Bytes) -> Result<()> {
        let delay = self.cfg.delay_for(payload.len());
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        self.metrics.record(payload.len() as u64);
        self.tx.send(payload).map_err(|_| Error::Disconnected)
    }

    /// The metrics this link reports into.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }
}

impl LinkReceiver {
    /// Block until a frame arrives or the sender disconnects.
    pub fn recv(&self) -> Result<Bytes> {
        self.rx.recv().map_err(|_| Error::Disconnected)
    }

    /// Block with a timeout; `Ok(None)` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>> {
        match self.rx.recv_timeout(timeout) {
            Ok(b) => Ok(Some(b)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(Error::Disconnected),
        }
    }

    /// Non-blocking poll; `Ok(None)` when no frame is waiting.
    pub fn try_recv(&self) -> Result<Option<Bytes>> {
        match self.rx.try_recv() {
            Ok(b) => Ok(Some(b)),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(Error::Disconnected),
        }
    }

    /// Traffic counters for this endpoint.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn frames_arrive_in_order() {
        let (tx, rx) = link_pair(LinkConfig::instant());
        for i in 0u8..10 {
            tx.send(Bytes::from(vec![i])).unwrap();
        }
        for i in 0u8..10 {
            assert_eq!(rx.recv().unwrap(), Bytes::from(vec![i]));
        }
    }

    #[test]
    fn metrics_count_traffic() {
        let (tx, rx) = link_pair(LinkConfig::instant());
        tx.send(Bytes::from(vec![0; 100])).unwrap();
        tx.send(Bytes::from(vec![0; 20])).unwrap();
        assert_eq!(rx.metrics().messages(), 2);
        assert_eq!(rx.metrics().bytes(), 128);
    }

    #[test]
    fn disconnection_detected() {
        let (tx, rx) = link_pair(LinkConfig::instant());
        drop(tx);
        assert_eq!(rx.recv(), Err(Error::Disconnected));
        let (tx, rx) = link_pair(LinkConfig::instant());
        drop(rx);
        assert_eq!(tx.send(Bytes::new()), Err(Error::Disconnected));
    }

    #[test]
    fn timeout_and_try_recv() {
        let (tx, rx) = link_pair(LinkConfig::instant());
        assert_eq!(rx.try_recv().unwrap(), None);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)).unwrap(), None);
        tx.send(Bytes::from_static(b"x")).unwrap();
        assert_eq!(rx.try_recv().unwrap(), Some(Bytes::from_static(b"x")));
    }

    #[test]
    fn latency_injection_delays_sends() {
        let cfg = LinkConfig {
            latency: Duration::from_millis(20),
            bandwidth: None,
        };
        let (tx, rx) = link_pair(cfg);
        let start = Instant::now();
        tx.send(Bytes::from_static(b"slow")).unwrap();
        rx.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn bandwidth_cap_scales_with_size() {
        let cfg = LinkConfig {
            latency: Duration::ZERO,
            bandwidth: Some(1_000_000), // 1 MB/s
        };
        let (tx, _rx) = link_pair(cfg);
        let start = Instant::now();
        tx.send(Bytes::from(vec![0u8; 50_000])).unwrap(); // 50 ms at 1 MB/s
        assert!(start.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    fn fault_drop_loses_frame_silently() {
        let (tx, rx) = link_pair(LinkConfig::instant());
        let tx = tx.with_faults(Arc::new(|seq, _len| {
            if seq == 0 {
                FrameFault::Drop
            } else {
                FrameFault::Deliver
            }
        }));
        tx.send(Bytes::from_static(b"lost")).unwrap();
        tx.send(Bytes::from_static(b"kept")).unwrap();
        assert_eq!(rx.recv().unwrap(), Bytes::from_static(b"kept"));
        assert_eq!(rx.metrics().messages(), 1, "dropped frame never recorded");
        assert_eq!(rx.metrics().faults(), 1);
    }

    #[test]
    fn fault_duplicate_delivers_twice() {
        let (tx, rx) = link_pair(LinkConfig::instant());
        let tx = tx.with_faults(Arc::new(|_, _| FrameFault::Duplicate));
        tx.send(Bytes::from_static(b"x")).unwrap();
        assert_eq!(rx.recv().unwrap(), Bytes::from_static(b"x"));
        assert_eq!(rx.recv().unwrap(), Bytes::from_static(b"x"));
        assert_eq!(rx.metrics().faults(), 1);
    }

    #[test]
    fn fault_corrupt_flips_exactly_one_bit() {
        let (tx, rx) = link_pair(LinkConfig::instant());
        let tx = tx.with_faults(Arc::new(|_, _| FrameFault::Corrupt { seed: 11 }));
        tx.send(Bytes::from_static(&[0u8; 4])).unwrap();
        let got = rx.recv().unwrap();
        let ones: u32 = got.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit flipped: {got:?}");
        // Bit 11 = byte 1, bit 3.
        assert_eq!(got[1], 1 << 3);
    }

    #[test]
    fn fault_corrupt_empty_frame_is_safe() {
        let (tx, rx) = link_pair(LinkConfig::instant());
        let tx = tx.with_faults(Arc::new(|_, _| FrameFault::Corrupt { seed: 7 }));
        tx.send(Bytes::new()).unwrap();
        assert_eq!(rx.recv().unwrap(), Bytes::new());
    }

    #[test]
    fn fault_delay_stalls_delivery() {
        let (tx, rx) = link_pair(LinkConfig::instant());
        let tx = tx.with_faults(Arc::new(|_, _| {
            FrameFault::Delay(Duration::from_millis(20))
        }));
        let start = Instant::now();
        tx.send(Bytes::from_static(b"slow")).unwrap();
        rx.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn fault_hook_sees_consecutive_sequence_numbers() {
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let (tx, _rx) = link_pair(LinkConfig::instant());
        let tx = tx.with_faults(Arc::new(move |seq, len| {
            seen2.lock().unwrap().push((seq, len));
            FrameFault::Deliver
        }));
        for i in 0..4usize {
            tx.send(Bytes::from(vec![0u8; i])).unwrap();
        }
        assert_eq!(*seen.lock().unwrap(), vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn cross_thread_usage() {
        let (tx, rx) = link_pair(LinkConfig::instant());
        let h = std::thread::spawn(move || {
            for i in 0u64..100 {
                tx.send(Bytes::copy_from_slice(&i.to_le_bytes())).unwrap();
            }
        });
        let mut sum = 0u64;
        for _ in 0..100 {
            let b = rx.recv().unwrap();
            sum += u64::from_le_bytes(b.as_ref().try_into().unwrap());
        }
        h.join().unwrap();
        assert_eq!(sum, 4950);
    }
}
