//! Property tests for the wire format: decode(encode(x)) == x, and corrupt
//! frames never panic.

use hillview_columnar::{Row, RowKey, Value};
use hillview_net::{Wire, WireReader, WireWriter};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Missing),
        any::<i64>().prop_map(Value::Int),
        (-1e15f64..1e15).prop_map(Value::Double),
        any::<i64>().prop_map(Value::Date),
        "\\PC{0,24}".prop_map(Value::str),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn primitives_roundtrip(u in any::<u64>(), i in any::<i64>(), f in any::<f64>(), s in "\\PC{0,64}") {
        prop_assert_eq!(u64::from_bytes(u.to_bytes()).unwrap(), u);
        prop_assert_eq!(i64::from_bytes(i.to_bytes()).unwrap(), i);
        let f2 = f64::from_bytes(f.to_bytes()).unwrap();
        prop_assert!(f2 == f || (f.is_nan() && f2.is_nan()));
        prop_assert_eq!(String::from_bytes(s.clone().to_bytes()).unwrap(), s);
    }

    #[test]
    fn values_roundtrip(v in value_strategy()) {
        prop_assert_eq!(Value::from_bytes(v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn rows_roundtrip(vals in proptest::collection::vec(value_strategy(), 0..12)) {
        let row = Row::new(vals);
        prop_assert_eq!(Row::from_bytes(row.to_bytes()).unwrap(), row);
    }

    #[test]
    fn rowkeys_roundtrip_with_order(
        vals in proptest::collection::vec((value_strategy(), any::<bool>()), 1..6),
        other in proptest::collection::vec((value_strategy(), any::<bool>()), 1..6),
    ) {
        let k1 = RowKey::new(
            vals.iter().map(|(v, _)| v.clone()).collect(),
            vals.iter().map(|(_, d)| *d).collect(),
        );
        let k2 = RowKey::from_bytes(k1.to_bytes()).unwrap();
        prop_assert_eq!(&k1, &k2);
        // Ordering is preserved through the wire when widths match.
        if other.len() == vals.len() {
            let o1 = RowKey::new(
                other.iter().map(|(v, _)| v.clone()).collect(),
                vals.iter().map(|(_, d)| *d).collect(),
            );
            let o2 = RowKey::from_bytes(o1.to_bytes()).unwrap();
            prop_assert_eq!(k1.cmp(&o1), k2.cmp(&o2));
        }
    }

    /// Corrupt bytes must produce errors, never panics or hangs.
    #[test]
    fn corrupt_frames_fail_cleanly(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let b = bytes::Bytes::from(bytes);
        let _ = Value::from_bytes(b.clone());
        let _ = Row::from_bytes(b.clone());
        let _ = RowKey::from_bytes(b.clone());
        let _ = Vec::<u64>::from_bytes(b.clone());
        let _ = String::from_bytes(b);
    }

    /// Truncating a valid frame anywhere must fail cleanly (no partial
    /// values silently accepted as complete).
    #[test]
    fn truncation_never_roundtrips(v in value_strategy(), cut_frac in 0.0f64..1.0) {
        let full = v.to_bytes();
        if full.len() > 1 {
            let cut = ((full.len() - 1) as f64 * cut_frac) as usize;
            let sliced = full.slice(0..cut);
            if let Ok(decoded) = Value::from_bytes(sliced) {
                // Only acceptable if the truncation point was a no-op
                // (impossible for our formats, so this must not happen).
                prop_assert_eq!(decoded, v, "truncated decode produced a different value");
                prop_assert_eq!(cut, full.len());
            }
        }
    }

    /// Truncating a row encoding anywhere must also fail cleanly — rows
    /// carry a leading arity, so a clean prefix must not parse as a
    /// shorter row.
    #[test]
    fn row_truncation_never_roundtrips(
        vals in proptest::collection::vec(value_strategy(), 1..8),
        cut_frac in 0.0f64..1.0,
    ) {
        let row = Row::new(vals);
        let full = row.to_bytes();
        let cut = ((full.len() - 1) as f64 * cut_frac) as usize;
        if let Ok(decoded) = Row::from_bytes(full.slice(0..cut)) {
            prop_assert_eq!(decoded, row, "truncated decode produced a different row");
            prop_assert_eq!(cut, full.len());
        }
    }

    /// Flipping any single bit of a valid encoding must either fail with a
    /// structured [`hillview_net::Error`] or decode to a self-consistent
    /// value (one that re-encodes canonically) — never panic, and never
    /// decode to something that cannot survive its own round trip.
    #[test]
    fn single_bit_flips_decode_structurally(
        vals in proptest::collection::vec(value_strategy(), 0..6),
        flip in any::<usize>(),
    ) {
        let row = Row::new(vals);
        let full = row.to_bytes();
        if !full.is_empty() {
            let mut mutated = full.to_vec();
            let bit = flip % (mutated.len() * 8);
            mutated[bit / 8] ^= 1 << (bit % 8);
            if let Ok(decoded) = Row::from_bytes(bytes::Bytes::from(mutated)) {
                let reencoded = decoded.to_bytes();
                prop_assert_eq!(
                    Row::from_bytes(reencoded).unwrap(),
                    decoded,
                    "bit-flipped decode is not round-trip stable"
                );
            }
        }
    }

    /// Inflating a length prefix far beyond the actual payload must fail
    /// with a structured error — no panic, hang, or absurd allocation.
    /// [`WireReader::get_len`] bounds every length by the bytes remaining.
    #[test]
    fn inflated_length_fields_fail_cleanly(
        payload in proptest::collection::vec(any::<u8>(), 0..32),
        excess in 1u64..u64::MAX / 2,
    ) {
        let mut w = WireWriter::new();
        w.put_varint(payload.len() as u64 + excess);
        for &b in &payload {
            w.put_u8(b);
        }
        let frame = w.finish();
        let mut r = WireReader::new(frame.clone());
        prop_assert!(r.get_bytes().is_err(), "oversized byte-length accepted");
        let mut r = WireReader::new(frame.clone());
        prop_assert!(r.get_str().is_err(), "oversized string-length accepted");
        prop_assert!(String::from_bytes(frame.clone()).is_err());
        prop_assert!(Vec::<u64>::from_bytes(frame).is_err());
    }

    /// Varint decoding tolerates any byte soup: it either yields a value
    /// consuming at most 10 bytes or errors — never panics or reads past
    /// the buffer.
    #[test]
    fn varint_decoding_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..16)) {
        let len = bytes.len();
        let mut r = WireReader::new(bytes::Bytes::from(bytes));
        if let Ok(v) = r.get_varint() {
            let consumed = len - r.remaining();
            prop_assert!(consumed <= 10, "varint consumed {consumed} bytes");
            // Canonical re-encoding is never longer than what was read.
            let mut w = WireWriter::new();
            w.put_varint(v);
            prop_assert!(w.len() <= consumed);
        }
    }
}
