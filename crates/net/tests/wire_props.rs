//! Property tests for the wire format: decode(encode(x)) == x, and corrupt
//! frames never panic.

use hillview_columnar::{Row, RowKey, Value};
use hillview_net::Wire;
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Missing),
        any::<i64>().prop_map(Value::Int),
        (-1e15f64..1e15).prop_map(Value::Double),
        any::<i64>().prop_map(Value::Date),
        "\\PC{0,24}".prop_map(Value::str),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn primitives_roundtrip(u in any::<u64>(), i in any::<i64>(), f in any::<f64>(), s in "\\PC{0,64}") {
        prop_assert_eq!(u64::from_bytes(u.to_bytes()).unwrap(), u);
        prop_assert_eq!(i64::from_bytes(i.to_bytes()).unwrap(), i);
        let f2 = f64::from_bytes(f.to_bytes()).unwrap();
        prop_assert!(f2 == f || (f.is_nan() && f2.is_nan()));
        prop_assert_eq!(String::from_bytes(s.clone().to_bytes()).unwrap(), s);
    }

    #[test]
    fn values_roundtrip(v in value_strategy()) {
        prop_assert_eq!(Value::from_bytes(v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn rows_roundtrip(vals in proptest::collection::vec(value_strategy(), 0..12)) {
        let row = Row::new(vals);
        prop_assert_eq!(Row::from_bytes(row.to_bytes()).unwrap(), row);
    }

    #[test]
    fn rowkeys_roundtrip_with_order(
        vals in proptest::collection::vec((value_strategy(), any::<bool>()), 1..6),
        other in proptest::collection::vec((value_strategy(), any::<bool>()), 1..6),
    ) {
        let k1 = RowKey::new(
            vals.iter().map(|(v, _)| v.clone()).collect(),
            vals.iter().map(|(_, d)| *d).collect(),
        );
        let k2 = RowKey::from_bytes(k1.to_bytes()).unwrap();
        prop_assert_eq!(&k1, &k2);
        // Ordering is preserved through the wire when widths match.
        if other.len() == vals.len() {
            let o1 = RowKey::new(
                other.iter().map(|(v, _)| v.clone()).collect(),
                vals.iter().map(|(_, d)| *d).collect(),
            );
            let o2 = RowKey::from_bytes(o1.to_bytes()).unwrap();
            prop_assert_eq!(k1.cmp(&o1), k2.cmp(&o2));
        }
    }

    /// Corrupt bytes must produce errors, never panics or hangs.
    #[test]
    fn corrupt_frames_fail_cleanly(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let b = bytes::Bytes::from(bytes);
        let _ = Value::from_bytes(b.clone());
        let _ = Row::from_bytes(b.clone());
        let _ = RowKey::from_bytes(b.clone());
        let _ = Vec::<u64>::from_bytes(b.clone());
        let _ = String::from_bytes(b);
    }

    /// Truncating a valid frame anywhere must fail cleanly (no partial
    /// values silently accepted as complete).
    #[test]
    fn truncation_never_roundtrips(v in value_strategy(), cut_frac in 0.0f64..1.0) {
        let full = v.to_bytes();
        if full.len() > 1 {
            let cut = ((full.len() - 1) as f64 * cut_frac) as usize;
            let sliced = full.slice(0..cut);
            if let Ok(decoded) = Value::from_bytes(sliced) {
                // Only acceptable if the truncation point was a no-op
                // (impossible for our formats, so this must not happen).
                prop_assert_eq!(decoded, v, "truncated decode produced a different value");
                prop_assert_eq!(cut, full.len());
            }
        }
    }
}
