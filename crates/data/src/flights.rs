//! Synthetic airline on-time performance dataset.
//!
//! Reproduces the statistical character of the paper's evaluation dataset
//! (§7 "Dataset"): flights with origin, destination, flight time, departure
//! and arrival delays; numerical, categorical, text, and undefined values.
//! With `wide = true`, the table is padded to 110 columns like the original
//! so cell-count figures are comparable.

use crate::dist::{Lognormal, TruncNormal, Zipf};
use hillview_columnar::column::{Column, DictColumn, F64Column, I64Column};
use hillview_columnar::{ColumnKind, Table};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Airports (code, state), ordered roughly by real-world traffic so a Zipf
/// over ranks produces a realistic popularity skew.
pub const AIRPORTS: &[(&str, &str)] = &[
    ("ATL", "GA"),
    ("ORD", "IL"),
    ("DFW", "TX"),
    ("DEN", "CO"),
    ("LAX", "CA"),
    ("SFO", "CA"),
    ("PHX", "AZ"),
    ("IAH", "TX"),
    ("LAS", "NV"),
    ("DTW", "MI"),
    ("MSP", "MN"),
    ("SEA", "WA"),
    ("MCO", "FL"),
    ("EWR", "NJ"),
    ("CLT", "NC"),
    ("JFK", "NY"),
    ("LGA", "NY"),
    ("BOS", "MA"),
    ("SLC", "UT"),
    ("BWI", "MD"),
    ("MIA", "FL"),
    ("DCA", "VA"),
    ("MDW", "IL"),
    ("SAN", "CA"),
    ("TPA", "FL"),
    ("PHL", "PA"),
    ("STL", "MO"),
    ("HOU", "TX"),
    ("PDX", "OR"),
    ("OAK", "CA"),
    ("MCI", "MO"),
    ("SJC", "CA"),
    ("AUS", "TX"),
    ("SMF", "CA"),
    ("SNA", "CA"),
    ("MSY", "LA"),
    ("RDU", "NC"),
    ("CLE", "OH"),
    ("SAT", "TX"),
    ("PIT", "PA"),
    ("IND", "IN"),
    ("CMH", "OH"),
    ("MKE", "WI"),
    ("BNA", "TN"),
    ("ABQ", "NM"),
    ("HNL", "HI"),
    ("OGG", "HI"),
    ("LIH", "HI"),
    ("KOA", "HI"),
    ("ANC", "AK"),
    ("BUR", "CA"),
    ("ONT", "CA"),
    ("JAX", "FL"),
    ("BUF", "NY"),
    ("OMA", "NE"),
    ("TUS", "AZ"),
    ("OKC", "OK"),
    ("MEM", "TN"),
    ("RIC", "VA"),
    ("BDL", "CT"),
];

/// Carrier codes, ordered by rough market share.
pub const CARRIERS: &[&str] = &[
    "WN", "AA", "DL", "UA", "US", "OO", "EV", "MQ", "B6", "AS", "NK", "F9", "HA", "VX",
];

/// Cancellation reason codes (BTS convention).
pub const CANCELLATION_CODES: &[&str] = &["A", "B", "C", "D"];

/// Milliseconds per day.
const DAY_MS: i64 = 86_400_000;
/// Epoch millis of 2016-01-01 (start of the synthetic period).
const PERIOD_START_MS: i64 = 1_451_606_400_000;
/// Days in the synthetic period (~2 years).
const PERIOD_DAYS: i64 = 730;

/// Configuration for the flights generator.
#[derive(Debug, Clone)]
pub struct FlightsConfig {
    /// Number of rows to generate.
    pub rows: usize,
    /// RNG seed; same seed ⇒ identical table.
    pub seed: u64,
    /// Pad with extra metric columns up to 110 total, like the paper's
    /// dataset. Leave false for fast unit tests.
    pub wide: bool,
}

impl Default for FlightsConfig {
    fn default() -> Self {
        FlightsConfig {
            rows: 10_000,
            seed: 0xF11_687,
            wide: false,
        }
    }
}

impl FlightsConfig {
    /// Convenience constructor.
    pub fn new(rows: usize, seed: u64) -> Self {
        FlightsConfig {
            rows,
            seed,
            wide: false,
        }
    }

    /// Enable 110-column padding.
    pub fn wide(mut self) -> Self {
        self.wide = true;
        self
    }
}

/// Column-major accumulation buffers for one generation pass.
struct Buffers {
    year: Vec<i64>,
    month: Vec<i64>,
    day_of_month: Vec<i64>,
    day_of_week: Vec<i64>,
    flight_date: Vec<i64>,
    carrier: Vec<u32>,
    flight_num: Vec<i64>,
    tail_num: Vec<Option<String>>,
    origin: Vec<u32>,
    origin_state: Vec<u32>,
    dest: Vec<u32>,
    dest_state: Vec<u32>,
    crs_dep_time: Vec<i64>,
    dep_time: Vec<Option<i64>>,
    dep_delay: Vec<Option<f64>>,
    taxi_out: Vec<Option<f64>>,
    taxi_in: Vec<Option<f64>>,
    arr_time: Vec<Option<i64>>,
    arr_delay: Vec<Option<f64>>,
    cancelled: Vec<i64>,
    cancellation_code: Vec<Option<u32>>,
    diverted: Vec<i64>,
    air_time: Vec<Option<f64>>,
    distance: Vec<i64>,
    carrier_delay: Vec<Option<f64>>,
    weather_delay: Vec<Option<f64>>,
    nas_delay: Vec<Option<f64>>,
    security_delay: Vec<Option<f64>>,
    late_aircraft_delay: Vec<Option<f64>>,
}

impl Buffers {
    fn with_capacity(n: usize) -> Self {
        Buffers {
            year: Vec::with_capacity(n),
            month: Vec::with_capacity(n),
            day_of_month: Vec::with_capacity(n),
            day_of_week: Vec::with_capacity(n),
            flight_date: Vec::with_capacity(n),
            carrier: Vec::with_capacity(n),
            flight_num: Vec::with_capacity(n),
            tail_num: Vec::with_capacity(n),
            origin: Vec::with_capacity(n),
            origin_state: Vec::with_capacity(n),
            dest: Vec::with_capacity(n),
            dest_state: Vec::with_capacity(n),
            crs_dep_time: Vec::with_capacity(n),
            dep_time: Vec::with_capacity(n),
            dep_delay: Vec::with_capacity(n),
            taxi_out: Vec::with_capacity(n),
            taxi_in: Vec::with_capacity(n),
            arr_time: Vec::with_capacity(n),
            arr_delay: Vec::with_capacity(n),
            cancelled: Vec::with_capacity(n),
            cancellation_code: Vec::with_capacity(n),
            diverted: Vec::with_capacity(n),
            air_time: Vec::with_capacity(n),
            distance: Vec::with_capacity(n),
            carrier_delay: Vec::with_capacity(n),
            weather_delay: Vec::with_capacity(n),
            nas_delay: Vec::with_capacity(n),
            security_delay: Vec::with_capacity(n),
            late_aircraft_delay: Vec::with_capacity(n),
        }
    }
}

/// Great-circle-ish distance proxy between two airport ranks: deterministic
/// pseudo-distance in miles, stable across runs so route distances are
/// consistent (same route ⇒ same distance).
fn route_distance(origin: usize, dest: usize) -> i64 {
    let a = origin.min(dest) as u64;
    let b = origin.max(dest) as u64;
    let mix = a
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(b.wrapping_mul(0x85EB_CA6B));
    100 + (mix % 2_600) as i64
}

/// Generate the flights table.
pub fn generate_flights(cfg: &FlightsConfig) -> Table {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let airport_zipf = Zipf::new(AIRPORTS.len(), 0.9);
    let carrier_zipf = Zipf::new(CARRIERS.len(), 1.0);
    let delay_tail = Lognormal::new(2.2, 1.1);
    let taxi_dist = TruncNormal::new(14.0, 6.0, 1.0, 60.0);
    let n = cfg.rows;
    let mut b = Buffers::with_capacity(n);

    for _ in 0..n {
        let day = rng.gen_range(0..PERIOD_DAYS);
        let date_ms = PERIOD_START_MS + day * DAY_MS;
        // Approximate calendar without a time library: 365-day years and
        // 30.44-day months are fine for a synthetic benchmark dataset.
        let year = 2016 + (day / 365);
        let day_of_year = day % 365;
        let month = (day_of_year as f64 / 30.44).floor() as i64 + 1;
        let day_of_month = (day_of_year as f64 % 30.44).floor() as i64 + 1;
        let day_of_week = (day % 7) + 1;

        let carrier = carrier_zipf.sample(&mut rng);
        let origin = airport_zipf.sample(&mut rng);
        let mut dest = airport_zipf.sample(&mut rng);
        while dest == origin {
            dest = airport_zipf.sample(&mut rng);
        }
        let distance = route_distance(origin, dest);

        // Departures cluster in daytime hours; delays worsen late in the day
        // (the real dataset's strongest pattern, exercised by case-study Q7).
        let hour = {
            let h = TruncNormal::new(13.0, 4.5, 0.0, 23.99).sample(&mut rng);
            h as i64
        };
        let minute = rng.gen_range(0..60i64);
        let crs_dep = hour * 100 + minute;

        let cancelled = rng.gen_bool(0.018);
        let diverted = !cancelled && rng.gen_bool(0.002);

        b.year.push(year);
        b.month.push(month.min(12));
        b.day_of_month.push(day_of_month);
        b.day_of_week.push(day_of_week);
        b.flight_date.push(date_ms);
        b.carrier.push(carrier as u32);
        b.flight_num.push(rng.gen_range(1..6000));
        // ~1% missing tail numbers (the real data has undefined values).
        b.tail_num.push(if rng.gen_bool(0.01) {
            None
        } else {
            Some(format!("N{:05}", rng.gen_range(100..99_999)))
        });
        b.origin.push(origin as u32);
        b.origin_state.push(origin as u32);
        b.dest.push(dest as u32);
        b.dest_state.push(dest as u32);
        b.crs_dep_time.push(crs_dep);
        b.cancelled.push(cancelled as i64);
        b.diverted.push(diverted as i64);
        b.distance.push(distance);

        if cancelled {
            let code = rng.gen_range(0..CANCELLATION_CODES.len() as u32);
            b.cancellation_code.push(Some(code));
            b.dep_time.push(None);
            b.dep_delay.push(None);
            b.taxi_out.push(None);
            b.taxi_in.push(None);
            b.arr_time.push(None);
            b.arr_delay.push(None);
            b.air_time.push(None);
            b.carrier_delay.push(None);
            b.weather_delay.push(None);
            b.nas_delay.push(None);
            b.security_delay.push(None);
            b.late_aircraft_delay.push(None);
            continue;
        }
        b.cancellation_code.push(None);

        // Departure delay: mostly slightly early/on-time, heavy right tail,
        // worse later in the day, worse for low-rank (busy) airports.
        let base = TruncNormal::new(-3.0, 6.0, -25.0, 30.0).sample(&mut rng);
        let tail = if rng.gen_bool(0.18 + 0.01 * (hour as f64 - 6.0).max(0.0) / 2.0) {
            delay_tail.sample(&mut rng)
        } else {
            0.0
        };
        let congestion = if origin < 5 { 2.0 } else { 0.0 };
        let dep_delay = (base + tail + congestion).round();
        let dep_time = (crs_dep + dep_delay as i64).rem_euclid(2400);
        let taxi_out = taxi_dist.sample(&mut rng).round();
        let taxi_in = (taxi_dist.sample(&mut rng) / 2.0).round().max(1.0);
        let air_time = (distance as f64 / 7.5
            + 20.0
            + TruncNormal::new(0.0, 8.0, -25.0, 25.0).sample(&mut rng))
        .round()
        .max(15.0);
        // Arrival delay regresses toward the departure delay with en-route
        // noise (pilots make up some time).
        let arr_delay =
            (dep_delay * 0.9 + TruncNormal::new(-2.0, 10.0, -40.0, 40.0).sample(&mut rng)).round();
        let arr_time = (crs_dep + air_time as i64 + arr_delay as i64).rem_euclid(2400);

        b.dep_time.push(Some(dep_time));
        b.dep_delay.push(Some(dep_delay));
        b.taxi_out.push(Some(taxi_out));
        b.taxi_in.push(Some(taxi_in));
        b.arr_time.push(Some(arr_time));
        b.arr_delay.push(Some(arr_delay));
        b.air_time.push(Some(air_time));

        // Delay attribution columns: present only when the flight is late
        // (mirrors the real dataset, where they are mostly undefined).
        if arr_delay >= 15.0 {
            let mut remaining = arr_delay;
            let carrier_d = (remaining * rng.gen_range(0.0..0.6)).round();
            remaining -= carrier_d;
            let weather_d = if rng.gen_bool(0.15) {
                (remaining * rng.gen_range(0.0..0.8)).round()
            } else {
                0.0
            };
            remaining -= weather_d;
            let nas_d = (remaining * rng.gen_range(0.0..0.7)).round();
            remaining -= nas_d;
            let security_d = if rng.gen_bool(0.01) { 5.0 } else { 0.0 };
            let late_aircraft = (remaining - security_d).max(0.0).round();
            b.carrier_delay.push(Some(carrier_d));
            b.weather_delay.push(Some(weather_d));
            b.nas_delay.push(Some(nas_d));
            b.security_delay.push(Some(security_d));
            b.late_aircraft_delay.push(Some(late_aircraft));
        } else {
            b.carrier_delay.push(None);
            b.weather_delay.push(None);
            b.nas_delay.push(None);
            b.security_delay.push(None);
            b.late_aircraft_delay.push(None);
        }
    }

    let airport_code = |ranks: &[u32]| -> DictColumn {
        DictColumn::from_strings(ranks.iter().map(|&r| Some(AIRPORTS[r as usize].0)))
    };
    let airport_state = |ranks: &[u32]| -> DictColumn {
        DictColumn::from_strings(ranks.iter().map(|&r| Some(AIRPORTS[r as usize].1)))
    };

    let mut t = Table::builder()
        .column("Year", ColumnKind::Int, Column::Int(int(b.year)))
        .column("Month", ColumnKind::Int, Column::Int(int(b.month)))
        .column(
            "DayOfMonth",
            ColumnKind::Int,
            Column::Int(int(b.day_of_month)),
        )
        .column(
            "DayOfWeek",
            ColumnKind::Int,
            Column::Int(int(b.day_of_week)),
        )
        .column(
            "FlightDate",
            ColumnKind::Date,
            Column::Date(int(b.flight_date)),
        )
        .column(
            "Carrier",
            ColumnKind::Category,
            Column::Cat(DictColumn::from_strings(
                b.carrier.iter().map(|&r| Some(CARRIERS[r as usize])),
            )),
        )
        .column("FlightNum", ColumnKind::Int, Column::Int(int(b.flight_num)))
        .column(
            "TailNum",
            ColumnKind::String,
            Column::Str(DictColumn::from_strings(
                b.tail_num.iter().map(|v| v.as_deref()),
            )),
        )
        .column(
            "Origin",
            ColumnKind::Category,
            Column::Cat(airport_code(&b.origin)),
        )
        .column(
            "OriginState",
            ColumnKind::Category,
            Column::Cat(airport_state(&b.origin_state)),
        )
        .column(
            "Dest",
            ColumnKind::Category,
            Column::Cat(airport_code(&b.dest)),
        )
        .column(
            "DestState",
            ColumnKind::Category,
            Column::Cat(airport_state(&b.dest_state)),
        )
        .column(
            "CRSDepTime",
            ColumnKind::Int,
            Column::Int(int(b.crs_dep_time)),
        )
        .column(
            "DepTime",
            ColumnKind::Int,
            Column::Int(I64Column::from_options(b.dep_time)),
        )
        .column(
            "DepDelay",
            ColumnKind::Double,
            Column::Double(F64Column::from_options(b.dep_delay)),
        )
        .column(
            "TaxiOut",
            ColumnKind::Double,
            Column::Double(F64Column::from_options(b.taxi_out)),
        )
        .column(
            "TaxiIn",
            ColumnKind::Double,
            Column::Double(F64Column::from_options(b.taxi_in)),
        )
        .column(
            "ArrTime",
            ColumnKind::Int,
            Column::Int(I64Column::from_options(b.arr_time)),
        )
        .column(
            "ArrDelay",
            ColumnKind::Double,
            Column::Double(F64Column::from_options(b.arr_delay)),
        )
        .column("Cancelled", ColumnKind::Int, Column::Int(int(b.cancelled)))
        .column(
            "CancellationCode",
            ColumnKind::Category,
            Column::Cat(DictColumn::from_strings(
                b.cancellation_code
                    .iter()
                    .map(|v| v.map(|c| CANCELLATION_CODES[c as usize])),
            )),
        )
        .column("Diverted", ColumnKind::Int, Column::Int(int(b.diverted)))
        .column(
            "AirTime",
            ColumnKind::Double,
            Column::Double(F64Column::from_options(b.air_time)),
        )
        .column("Distance", ColumnKind::Int, Column::Int(int(b.distance)))
        .column(
            "CarrierDelay",
            ColumnKind::Double,
            Column::Double(F64Column::from_options(b.carrier_delay)),
        )
        .column(
            "WeatherDelay",
            ColumnKind::Double,
            Column::Double(F64Column::from_options(b.weather_delay)),
        )
        .column(
            "NASDelay",
            ColumnKind::Double,
            Column::Double(F64Column::from_options(b.nas_delay)),
        )
        .column(
            "SecurityDelay",
            ColumnKind::Double,
            Column::Double(F64Column::from_options(b.security_delay)),
        )
        .column(
            "LateAircraftDelay",
            ColumnKind::Double,
            Column::Double(F64Column::from_options(b.late_aircraft_delay)),
        )
        .build()
        .expect("flights schema is well-formed");

    if cfg.wide {
        // Pad to 110 columns with derived metrics, as the real dataset has
        // ~110 mostly-numeric columns. Deterministic functions of the row
        // keep generation cheap and compressible.
        let base = t.num_columns();
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xDEAD_BEEF);
        for k in 0..(110 - base) {
            let noise: Vec<i64> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
            t = t
                .with_column(&format!("Metric{k:02}"), Column::Int(int(noise)))
                .expect("metric names unique");
        }
    }
    t
}

fn int(v: Vec<i64>) -> I64Column {
    I64Column::new(v, hillview_columnar::NullMask::none())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::Value;

    #[test]
    fn deterministic_generation() {
        let a = generate_flights(&FlightsConfig::new(500, 1));
        let b = generate_flights(&FlightsConfig::new(500, 1));
        for r in [0usize, 99, 499] {
            assert_eq!(a.full_row(r), b.full_row(r));
        }
        let c = generate_flights(&FlightsConfig::new(500, 2));
        assert_ne!(a.full_row(0), c.full_row(0));
    }

    #[test]
    fn schema_shape() {
        let t = generate_flights(&FlightsConfig::new(100, 1));
        assert_eq!(t.num_rows(), 100);
        assert_eq!(t.num_columns(), 29);
        let wide = generate_flights(&FlightsConfig {
            rows: 50,
            seed: 1,
            wide: true,
        });
        assert_eq!(wide.num_columns(), 110);
        assert_eq!(wide.num_cells(), 50 * 110);
    }

    #[test]
    fn carriers_follow_zipf_skew() {
        let t = generate_flights(&FlightsConfig::new(20_000, 3));
        let col = t.column_by_name("Carrier").unwrap().as_dict_col().unwrap();
        let mut counts = std::collections::HashMap::new();
        for i in 0..t.num_rows() {
            *counts
                .entry(col.get(i).unwrap().to_string())
                .or_insert(0usize) += 1;
        }
        let wn = counts.get("WN").copied().unwrap_or(0);
        let vx = counts.get("VX").copied().unwrap_or(0);
        assert!(wn > vx * 3, "WN={wn} VX={vx}");
    }

    #[test]
    fn cancelled_flights_have_missing_delays() {
        let t = generate_flights(&FlightsConfig::new(20_000, 4));
        let cancelled = t.column_by_name("Cancelled").unwrap();
        let dep_delay = t.column_by_name("DepDelay").unwrap();
        let code = t.column_by_name("CancellationCode").unwrap();
        let mut seen_cancelled = 0;
        for i in 0..t.num_rows() {
            if cancelled.value(i) == Value::Int(1) {
                seen_cancelled += 1;
                assert!(dep_delay.is_null(i), "cancelled flight has a delay");
                assert!(!code.is_null(i), "cancelled flight lacks a code");
            } else {
                assert!(code.is_null(i), "non-cancelled flight has a code");
            }
        }
        assert!(
            seen_cancelled > 100,
            "cancellation rate too low: {seen_cancelled}"
        );
    }

    #[test]
    fn distances_are_route_stable() {
        let t = generate_flights(&FlightsConfig::new(50_000, 5));
        let origin = t.column_by_name("Origin").unwrap();
        let dest = t.column_by_name("Dest").unwrap();
        let dist = t.column_by_name("Distance").unwrap();
        let mut seen: std::collections::HashMap<(String, String), i64> =
            std::collections::HashMap::new();
        for i in 0..t.num_rows() {
            let key = (origin.value(i).to_string(), dest.value(i).to_string());
            let d = dist.value(i).as_i64().unwrap();
            if let Some(&prev) = seen.get(&key) {
                assert_eq!(prev, d, "distance varies for route {key:?}");
            } else {
                seen.insert(key, d);
            }
        }
    }

    #[test]
    fn delays_have_heavy_right_tail() {
        let t = generate_flights(&FlightsConfig::new(50_000, 6));
        let col = t.column_by_name("DepDelay").unwrap().as_f64_col().unwrap();
        let mut vals: Vec<f64> = (0..t.num_rows()).filter_map(|i| col.get(i)).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vals[vals.len() / 2];
        let p99 = vals[vals.len() * 99 / 100];
        assert!(median.abs() < 10.0, "median {median}");
        assert!(p99 > 40.0, "p99 {p99} not heavy-tailed");
    }

    #[test]
    fn hawaii_airports_have_hi_state() {
        let t = generate_flights(&FlightsConfig::new(50_000, 7));
        let dest = t.column_by_name("Dest").unwrap();
        let state = t.column_by_name("DestState").unwrap();
        let mut hawaii_seen = false;
        for i in 0..t.num_rows() {
            let d = dest.value(i).to_string();
            if ["HNL", "OGG", "LIH", "KOA"].contains(&d.as_str()) {
                hawaii_seen = true;
                assert_eq!(state.value(i), Value::str("HI"));
            }
        }
        assert!(hawaii_seen, "no Hawaii flights generated");
    }

    #[test]
    fn dates_fall_in_period() {
        let t = generate_flights(&FlightsConfig::new(5_000, 8));
        let date = t.column_by_name("FlightDate").unwrap();
        for i in 0..t.num_rows() {
            let ms = date.value(i).as_i64().unwrap();
            assert!(ms >= PERIOD_START_MS);
            assert!(ms < PERIOD_START_MS + PERIOD_DAYS * DAY_MS);
        }
    }
}
