//! Small deterministic distribution samplers.
//!
//! Everything takes an explicit `&mut SmallRng` so dataset generation is
//! reproducible from a seed — which the engine's replay-based fault
//! tolerance also relies on in tests.

use rand::rngs::SmallRng;
use rand::Rng;

/// A Zipf(α) sampler over ranks `0..n` via inverse-CDF table lookup.
///
/// Rank 0 is the most frequent. Used for airports, carriers, and servers —
/// real-world popularity follows a power law.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities, ascending to 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `alpha` (> 0).
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(alpha > 0.0, "Zipf exponent must be positive");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(alpha)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against FP drift so binary search always lands.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf: weights }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there are no ranks (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..n`.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// A normal distribution truncated to `[lo, hi]`, sampled by Box–Muller with
/// rejection at the bounds (clamping would pile mass at the edges).
#[derive(Debug, Clone, Copy)]
pub struct TruncNormal {
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub std: f64,
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl TruncNormal {
    /// Construct; panics if the interval is empty.
    pub fn new(mean: f64, std: f64, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "empty truncation interval");
        TruncNormal { mean, std, lo, hi }
    }

    /// Draw one value.
    pub fn sample(&self, rng: &mut SmallRng) -> f64 {
        for _ in 0..64 {
            let v = self.mean + self.std * standard_normal(rng);
            if v >= self.lo && v <= self.hi {
                return v;
            }
        }
        // Pathological parameters: fall back to the clamped mean.
        self.mean.clamp(self.lo, self.hi)
    }
}

/// A lognormal distribution: `exp(N(mu, sigma))`. Heavy right tail — used
/// for delays and latencies.
#[derive(Debug, Clone, Copy)]
pub struct Lognormal {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Std of the underlying normal.
    pub sigma: f64,
}

impl Lognormal {
    /// Construct.
    pub fn new(mu: f64, sigma: f64) -> Self {
        Lognormal { mu, sigma }
    }

    /// Draw one value (always positive).
    pub fn sample(&self, rng: &mut SmallRng) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// One standard-normal draw via Box–Muller.
pub fn standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(50, 1.1);
        let mut r = rng();
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] >= counts[40]);
        // Rank 0 should carry far more than uniform share.
        assert!(counts[0] > 20_000 / 50 * 3, "rank0={}", counts[0]);
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(20, 0.9);
        let total: f64 = (0..20).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_empirical_matches_pmf() {
        let z = Zipf::new(10, 1.0);
        let mut r = rng();
        let n = 100_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let expect = z.pmf(k) * n as f64;
            let got = count as f64;
            assert!(
                (got - expect).abs() < expect * 0.15 + 30.0,
                "rank {k}: got {got} expect {expect}"
            );
        }
    }

    #[test]
    fn trunc_normal_respects_bounds() {
        let d = TruncNormal::new(0.0, 10.0, -5.0, 5.0);
        let mut r = rng();
        for _ in 0..5_000 {
            let v = d.sample(&mut r);
            assert!((-5.0..=5.0).contains(&v));
        }
    }

    #[test]
    fn trunc_normal_mean_near_center() {
        let d = TruncNormal::new(2.0, 1.0, -10.0, 14.0);
        let mut r = rng();
        let mean: f64 = (0..20_000).map(|_| d.sample(&mut r)).sum::<f64>() / 20_000.0;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let d = Lognormal::new(1.0, 1.0);
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&v| v > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(mean > median, "right-skew: mean {mean} median {median}");
    }

    #[test]
    fn samplers_are_deterministic() {
        let z = Zipf::new(100, 1.2);
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        let va: Vec<usize> = (0..100).map(|_| z.sample(&mut a)).collect();
        let vb: Vec<usize> = (0..100).map(|_| z.sample(&mut b)).collect();
        assert_eq!(va, vb);
    }
}
