//! Synthetic server-log dataset.
//!
//! The paper motivates trillion-cell tables with datacenter telemetry
//! (§3.1: "50 servers logging 100 columns at a rate of 100 rows per minute
//! generate in a month 21.6B cells"). This generator produces that kind of
//! table for the examples: timestamps, Zipf-popular servers, log levels,
//! lognormal request latencies, status codes, and free-text messages.

use crate::dist::{Lognormal, Zipf};
use hillview_columnar::column::{Column, DictColumn, F64Column, I64Column};
use hillview_columnar::{ColumnKind, NullMask, Table};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Server host names: popularity follows a Zipf over this list.
pub const SERVERS: &[&str] = &[
    "gandalf",
    "frodo",
    "samwise",
    "aragorn",
    "legolas",
    "gimli",
    "boromir",
    "merry",
    "pippin",
    "sauron",
    "saruman",
    "elrond",
    "galadriel",
    "bilbo",
    "thorin",
    "smaug",
    "beorn",
    "treebeard",
    "eowyn",
    "faramir",
];

/// Log levels with fixed relative frequencies.
const LEVELS: &[(&str, f64)] = &[
    ("DEBUG", 0.30),
    ("INFO", 0.55),
    ("WARN", 0.10),
    ("ERROR", 0.045),
    ("FATAL", 0.005),
];

/// HTTP-ish status codes with fixed relative frequencies.
const STATUS: &[(&str, f64)] = &[
    ("200", 0.86),
    ("204", 0.04),
    ("301", 0.02),
    ("404", 0.05),
    ("500", 0.02),
    ("503", 0.01),
];

/// Message templates for the free-text column.
const MESSAGES: &[&str] = &[
    "request completed",
    "cache miss, fetching from origin",
    "connection reset by peer",
    "slow query detected",
    "retrying upstream call",
    "health check ok",
    "GC pause exceeded budget",
    "TLS handshake failed",
];

/// Configuration for the log generator.
#[derive(Debug, Clone)]
pub struct LogsConfig {
    /// Number of rows.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LogsConfig {
    fn default() -> Self {
        LogsConfig {
            rows: 10_000,
            seed: 0x10C5,
        }
    }
}

impl LogsConfig {
    /// Convenience constructor.
    pub fn new(rows: usize, seed: u64) -> Self {
        LogsConfig { rows, seed }
    }
}

fn weighted_pick(rng: &mut SmallRng, table: &[(&'static str, f64)]) -> &'static str {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (name, w) in table {
        acc += w;
        if u < acc {
            return name;
        }
    }
    table.last().expect("non-empty table").0
}

/// Generate the server-log table.
pub fn generate_logs(cfg: &LogsConfig) -> Table {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let server_zipf = Zipf::new(SERVERS.len(), 1.0);
    let latency = Lognormal::new(3.0, 0.9);
    let start_ms: i64 = 1_700_000_000_000;

    let n = cfg.rows;
    let mut ts = Vec::with_capacity(n);
    let mut server = Vec::with_capacity(n);
    let mut level = Vec::with_capacity(n);
    let mut lat = Vec::with_capacity(n);
    let mut status = Vec::with_capacity(n);
    let mut msg = Vec::with_capacity(n);
    let mut bytes = Vec::with_capacity(n);

    let mut clock = start_ms;
    for _ in 0..n {
        clock += rng.gen_range(1..2_000);
        ts.push(clock);
        server.push(Some(SERVERS[server_zipf.sample(&mut rng)]));
        let lv = weighted_pick(&mut rng, LEVELS);
        level.push(Some(lv));
        // Errors are slower: shift the latency distribution right.
        let mult = if lv == "ERROR" || lv == "FATAL" {
            4.0
        } else {
            1.0
        };
        lat.push(Some(latency.sample(&mut rng) * mult));
        status.push(Some(if lv == "ERROR" || lv == "FATAL" {
            weighted_pick(&mut rng, &STATUS[3..])
        } else {
            weighted_pick(&mut rng, STATUS)
        }));
        msg.push(Some(MESSAGES[rng.gen_range(0..MESSAGES.len())]));
        bytes.push(rng.gen_range(64..1_048_576i64));
    }

    Table::builder()
        .column(
            "Timestamp",
            ColumnKind::Date,
            Column::Date(I64Column::new(ts, NullMask::none())),
        )
        .column(
            "Server",
            ColumnKind::Category,
            Column::Cat(DictColumn::from_strings(server)),
        )
        .column(
            "Level",
            ColumnKind::Category,
            Column::Cat(DictColumn::from_strings(level)),
        )
        .column(
            "LatencyMs",
            ColumnKind::Double,
            Column::Double(F64Column::from_options(lat)),
        )
        .column(
            "Status",
            ColumnKind::Category,
            Column::Cat(DictColumn::from_strings(status)),
        )
        .column(
            "Message",
            ColumnKind::String,
            Column::Str(DictColumn::from_strings(msg)),
        )
        .column(
            "Bytes",
            ColumnKind::Int,
            Column::Int(I64Column::new(bytes, NullMask::none())),
        )
        .build()
        .expect("log schema is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = generate_logs(&LogsConfig::new(1000, 9));
        assert_eq!(a.num_rows(), 1000);
        assert_eq!(a.num_columns(), 7);
        let b = generate_logs(&LogsConfig::new(1000, 9));
        assert_eq!(a.full_row(123), b.full_row(123));
    }

    #[test]
    fn timestamps_monotonic() {
        let t = generate_logs(&LogsConfig::new(2000, 10));
        let c = t.column_by_name("Timestamp").unwrap();
        let mut prev = i64::MIN;
        for i in 0..t.num_rows() {
            let v = c.value(i).as_i64().unwrap();
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn levels_roughly_weighted() {
        let t = generate_logs(&LogsConfig::new(50_000, 11));
        let c = t.column_by_name("Level").unwrap();
        let mut errors = 0usize;
        let mut infos = 0usize;
        for i in 0..t.num_rows() {
            match c.value(i).to_string().as_str() {
                "ERROR" => errors += 1,
                "INFO" => infos += 1,
                _ => {}
            }
        }
        assert!(infos > errors * 5, "INFO={infos} ERROR={errors}");
        assert!(errors > 500, "too few errors: {errors}");
    }

    #[test]
    fn errors_are_slower() {
        let t = generate_logs(&LogsConfig::new(50_000, 12));
        let level = t.column_by_name("Level").unwrap();
        let lat = t.column_by_name("LatencyMs").unwrap();
        let (mut err_sum, mut err_n, mut ok_sum, mut ok_n) = (0.0, 0usize, 0.0, 0usize);
        for i in 0..t.num_rows() {
            let l = lat.as_f64(i).unwrap();
            if level.value(i).to_string() == "ERROR" {
                err_sum += l;
                err_n += 1;
            } else if level.value(i).to_string() == "INFO" {
                ok_sum += l;
                ok_n += 1;
            }
        }
        assert!(err_sum / err_n as f64 > 2.0 * ok_sum / ok_n as f64);
    }
}
