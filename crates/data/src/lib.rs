//! # hillview-data
//!
//! Synthetic dataset generators for Hillview-RS.
//!
//! The paper evaluates on the US DoT airline on-time performance dataset
//! (130M rows × 110 columns, "a real dataset with numerical, categorical,
//! text, and undefined values", §7). That dataset is not available here, so
//! this crate generates a statistically similar substitute (documented in
//! DESIGN.md §1): the same column family, Zipf-distributed airports and
//! carriers, heavy-tailed delays correlated with hour-of-day, missing values,
//! and rare events (cancellations, diversions). All generation is
//! deterministic in an explicit seed.
//!
//! A second generator produces a server-log dataset used by the examples
//! (the paper's §3.1 motivation: servers logging hundreds of columns).

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod dist;
pub mod flights;
pub mod logs;

pub use dist::{Lognormal, TruncNormal, Zipf};
pub use flights::{generate_flights, FlightsConfig};
pub use logs::{generate_logs, LogsConfig};
