//! Chaos suite: seeded fault schedules across a sketch × fault-class grid.
//!
//! This is the enforcement arm of the crate's failure-semantics contract
//! (see `hillview_core` crate docs): under an armed [`FaultPlan`] every
//! query must terminate in bounded time with exactly one of
//!
//! 1. a complete result, bit-identical to the fault-free baseline
//!    (`coverage == 1.0`);
//! 2. a structured [`EngineError`] — never a hang, a panic that escapes
//!    the engine, or a process abort;
//! 3. an honestly-labelled degraded result (`coverage < 1.0` with
//!    non-empty `failed_workers`), and only when the caller opted in.
//!
//! Afterwards the *same* engine — faults disarmed — must heal completely:
//! a re-run with the same cache key returns bytes bit-identical to the
//! clean baseline, proving no partial summary polluted the computation
//! cache.
//!
//! The schedule is a pure function of the plan seed (§5.8 determinism),
//! so every assertion message carries the seed: re-run with
//! `CHAOS_SEED_BASE=<seed> CHAOS_SEEDS=1` to replay a failure exactly.
//! CI sets `CHAOS_SEEDS=64`; the local default keeps the suite quick.

use hillview_columnar::column::{Column, I64Column};
use hillview_columnar::udf::UdfRegistry;
use hillview_columnar::{ColumnKind, Table};
use hillview_core::cluster::ClusterConfig;
use hillview_core::dataset::SourceRegistry;
use hillview_core::erased::erase;
use hillview_core::{
    Cluster, Engine, EngineError, FaultPlan, FaultSpec, FnSource, QueryOptions, RetryPolicy,
};
use hillview_sketch::count::CountSketch;
use hillview_sketch::heavy::MisraGriesSketch;
use hillview_sketch::histogram::HistogramSketch;
use hillview_sketch::moments::MomentsSketch;
use hillview_sketch::BucketSpec;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROWS_PER_WORKER: i64 = 2_000;

/// A fresh 2-worker engine over a deterministic integer shard per worker,
/// with a tight retry budget so even pathological schedules stay fast.
fn chaos_engine() -> Engine {
    let mut sources = SourceRegistry::new();
    sources.register(Arc::new(FnSource::new("chaos", |w, _n, _mp, snap| {
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Int,
                Column::Int(I64Column::from_options(
                    (0..ROWS_PER_WORKER).map(|i| Some((i * 7 + w as i64 * 13 + snap as i64) % 100)),
                )),
            )
            .build()
            .unwrap();
        Ok(vec![t])
    })));
    let cluster = Cluster::new(ClusterConfig::test(), sources, UdfRegistry::with_builtins());
    let mut engine = Engine::new(cluster);
    engine.retry = RetryPolicy {
        attempts: 4,
        base_backoff: Duration::from_micros(200),
        max_backoff: Duration::from_millis(5),
    };
    engine
}

/// The sketch grid: one representative per summary shape (scalar count,
/// bucketed histogram, bounded-size heavy hitters, numeric moments).
fn sketch_grid() -> Vec<(&'static str, Arc<dyn hillview_core::erased::ErasedSketch>)> {
    vec![
        ("count", erase(CountSketch::rows())),
        (
            "histogram",
            erase(HistogramSketch::streaming(
                "X",
                BucketSpec::numeric(0.0, 100.0, 10),
            )),
        ),
        ("misra-gries", erase(MisraGriesSketch::new("X", 8))),
        ("moments", erase(MomentsSketch::new("X", 4))),
    ]
}

fn seed_range() -> impl Iterator<Item = u64> {
    let base: u64 = std::env::var("CHAOS_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    let count: u64 = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    (0..count).map(move |i| base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Every query under chaos terminates with a complete bit-identical
/// result, a structured error, or an opted-in labelled degraded result —
/// and the healed engine always reconverges to the clean baseline.
#[test]
fn seeded_chaos_grid_preserves_failure_semantics() {
    // Hard per-query wall-clock bound: worker_timeout (500ms in the test
    // config) × 4 attempts plus stalls and backoffs sits well under this.
    const QUERY_BOUND: Duration = Duration::from_secs(30);
    // Outcome tallies across the whole grid, printed for CI triage and
    // used to assert the adversary is not a silent no-op.
    let (mut complete, mut degraded, mut errored, mut healed_from_fault) = (0u32, 0u32, 0u32, 0u32);
    for (nth, plan_seed) in seed_range().enumerate() {
        let engine = chaos_engine();
        let data = engine.load("chaos", plan_seed).unwrap();
        // Clean baselines first, before any fault is armed.
        let grid = sketch_grid();
        let baselines: Vec<_> = grid
            .iter()
            .map(|(name, sk)| {
                let opts = QueryOptions {
                    seed: 42,
                    ..Default::default()
                };
                let outcome = engine
                    .run_erased(data, sk, &opts)
                    .unwrap_or_else(|e| panic!("clean baseline {name} failed: {e}"));
                outcome.bytes
            })
            .collect();

        engine
            .cluster()
            .arm_faults(FaultPlan::seeded(plan_seed, FaultSpec::chaos()));
        for (i, (name, sk)) in grid.iter().enumerate() {
            // Alternate the degradation opt-in across the grid so both
            // the strict and the tolerant contract get exercised.
            let allow_degraded = (nth + i) % 2 == 0;
            let cache_key = Some(plan_seed ^ (i as u64) << 32 | 0x5EED);
            let opts = QueryOptions {
                seed: 42,
                cache_key,
                deadline: Some(Duration::from_secs(20)),
                allow_degraded,
                ..Default::default()
            };
            let started = Instant::now();
            let result = engine.run_erased(data, sk, &opts);
            let elapsed = started.elapsed();
            assert!(
                elapsed < QUERY_BOUND,
                "seed {plan_seed:#x} sketch {name}: query took {elapsed:?} — not bounded"
            );
            match result {
                Ok(outcome) if outcome.coverage >= 1.0 => {
                    complete += 1;
                    assert_eq!(
                        outcome.bytes, baselines[i],
                        "seed {plan_seed:#x} sketch {name}: complete result diverged from \
                         fault-free baseline"
                    );
                    assert!(
                        outcome.failed_workers.is_empty(),
                        "seed {plan_seed:#x} sketch {name}: full coverage but failed \
                         workers {:?}",
                        outcome.failed_workers
                    );
                }
                Ok(outcome) => {
                    degraded += 1;
                    assert!(
                        allow_degraded,
                        "seed {plan_seed:#x} sketch {name}: degraded result \
                         (coverage {}) without opt-in",
                        outcome.coverage
                    );
                    assert!(
                        !outcome.failed_workers.is_empty(),
                        "seed {plan_seed:#x} sketch {name}: coverage {} < 1 but no \
                         failed workers named",
                        outcome.coverage
                    );
                    assert!(
                        outcome.coverage > 0.0,
                        "seed {plan_seed:#x} sketch {name}: zero-coverage result \
                         should have been an error"
                    );
                }
                // Any structured error is within contract; specific
                // classes are pinned by unit tests. What must never
                // happen — hangs, escaped panics, aborts — fails the
                // bound above or the harness itself.
                Err(_e) => errored += 1,
            }
        }
        healed_from_fault += engine
            .cluster()
            .fault_plan()
            .map_or(0, |p| u32::from(p.faults_fired() > 0));

        // Heal: disarm and re-run the grid with the *same* cache keys.
        // Whatever the chaos run did — succeeded (cache holds complete
        // folds), failed (cache must hold nothing) — the healed engine
        // must reconverge to the clean baseline bit-for-bit.
        engine.cluster().disarm_faults();
        for (i, (name, sk)) in grid.iter().enumerate() {
            let opts = QueryOptions {
                seed: 42,
                cache_key: Some(plan_seed ^ (i as u64) << 32 | 0x5EED),
                ..Default::default()
            };
            let outcome = engine.run_erased(data, sk, &opts).unwrap_or_else(|e| {
                panic!("seed {plan_seed:#x} sketch {name}: healed engine failed: {e}")
            });
            assert_eq!(
                outcome.bytes, baselines[i],
                "seed {plan_seed:#x} sketch {name}: healed re-run diverged — \
                 a faulted query polluted the computation cache"
            );
            assert!(
                (outcome.coverage - 1.0).abs() < f64::EPSILON,
                "seed {plan_seed:#x} sketch {name}: healed run not full coverage"
            );
        }
    }
    eprintln!(
        "chaos grid: {complete} complete, {degraded} degraded, {errored} errored; \
         faults fired in {healed_from_fault} seed(s)"
    );
    assert!(
        healed_from_fault > 0,
        "the seeded adversary never injected a single fault — the chaos \
         suite is vacuous; check FaultSpec::chaos() rates and site wiring"
    );
}

/// The outcome trichotomy holds on the **fused** filtered-query path too:
/// under an armed plan every one-shot `(predicate, sketch)` query — which
/// runs `summarize_filtered` at the leaves and bypasses the computation
/// cache — completes bit-identical to the fault-free fused baseline,
/// errors structurally, or degrades only with opt-in; and the healed
/// engine reconverges.
#[test]
fn seeded_chaos_fused_queries_preserve_failure_semantics() {
    use hillview_columnar::Predicate;
    const QUERY_BOUND: Duration = Duration::from_secs(30);
    let (mut complete, mut degraded, mut errored, mut fired) = (0u32, 0u32, 0u32, 0u32);
    for (nth, plan_seed) in seed_range().enumerate() {
        let engine = chaos_engine();
        let data = engine.load("chaos", plan_seed).unwrap();
        let grid = sketch_grid();
        let pred = || Predicate::range("X", 20.0, 70.0);
        let baselines: Vec<_> = grid
            .iter()
            .map(|(name, sk)| {
                let opts = QueryOptions {
                    seed: 42,
                    ..Default::default()
                };
                engine
                    .run_filtered_erased(data, pred(), sk, &opts)
                    .unwrap_or_else(|e| panic!("clean fused baseline {name} failed: {e}"))
                    .bytes
            })
            .collect();

        engine
            .cluster()
            .arm_faults(FaultPlan::seeded(plan_seed, FaultSpec::chaos()));
        for (i, (name, sk)) in grid.iter().enumerate() {
            let allow_degraded = (nth + i) % 2 == 0;
            let opts = QueryOptions {
                seed: 42,
                deadline: Some(Duration::from_secs(20)),
                allow_degraded,
                ..Default::default()
            };
            let started = Instant::now();
            let result = engine.run_filtered_erased(data, pred(), sk, &opts);
            let elapsed = started.elapsed();
            assert!(
                elapsed < QUERY_BOUND,
                "seed {plan_seed:#x} fused {name}: query took {elapsed:?} — not bounded"
            );
            match result {
                Ok(outcome) if outcome.coverage >= 1.0 => {
                    complete += 1;
                    assert_eq!(
                        outcome.bytes, baselines[i],
                        "seed {plan_seed:#x} fused {name}: complete result diverged \
                         from fault-free fused baseline"
                    );
                }
                Ok(outcome) => {
                    degraded += 1;
                    assert!(
                        allow_degraded,
                        "seed {plan_seed:#x} fused {name}: degraded result without opt-in"
                    );
                    assert!(
                        !outcome.failed_workers.is_empty(),
                        "seed {plan_seed:#x} fused {name}: coverage {} < 1 but no \
                         failed workers named",
                        outcome.coverage
                    );
                }
                Err(_e) => errored += 1,
            }
        }
        fired += engine
            .cluster()
            .fault_plan()
            .map_or(0, |p| u32::from(p.faults_fired() > 0));

        engine.cluster().disarm_faults();
        for (i, (name, sk)) in grid.iter().enumerate() {
            let opts = QueryOptions {
                seed: 42,
                ..Default::default()
            };
            let outcome = engine
                .run_filtered_erased(data, pred(), sk, &opts)
                .unwrap_or_else(|e| {
                    panic!("seed {plan_seed:#x} fused {name}: healed engine failed: {e}")
                });
            assert_eq!(
                outcome.bytes, baselines[i],
                "seed {plan_seed:#x} fused {name}: healed fused re-run diverged"
            );
        }
    }
    eprintln!(
        "fused chaos grid: {complete} complete, {degraded} degraded, {errored} errored; \
         faults fired in {fired} seed(s)"
    );
    assert!(
        fired > 0,
        "the seeded adversary never injected a fault into a fused query run"
    );
}

/// The scripted (epoch-blind) side of the plan: a persistent kill schedule
/// exhausts the retry budget with a structured, cause-preserving error,
/// and never caches anything under the failing key.
#[test]
fn scripted_persistent_kill_never_caches_partial_state() {
    use hillview_core::{FaultAction, FaultSite};
    let engine = chaos_engine();
    let data = engine.load("chaos", 0).unwrap();
    let sk = erase(CountSketch::rows());
    let key = Some(0xDEAD_CACE);
    let clean = engine
        .run_erased(
            data,
            &sk,
            &QueryOptions {
                ..Default::default()
            },
        )
        .unwrap();

    engine
        .cluster()
        .arm_faults(FaultPlan::scripted((0..100_000).map(|i| {
            (
                FaultSite::WorkerOp {
                    worker: 0,
                    index: i,
                },
                FaultAction::Kill,
            )
        })));
    let err = engine
        .run_erased(
            data,
            &sk,
            &QueryOptions {
                cache_key: key,
                ..Default::default()
            },
        )
        .unwrap_err();
    assert!(
        matches!(err, EngineError::RetriesExhausted { .. }),
        "persistent kill should exhaust the budget, got {err}"
    );

    engine.cluster().disarm_faults();
    let healed = engine
        .run_erased(
            data,
            &sk,
            &QueryOptions {
                cache_key: key,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(
        healed.bytes, clean.bytes,
        "failed query left partial state under its cache key"
    );
}
