//! Chaos suite: seeded fault schedules across a sketch × fault-class grid.
//!
//! This is the enforcement arm of the crate's failure-semantics contract
//! (see `hillview_core` crate docs): under an armed [`FaultPlan`] every
//! query must terminate in bounded time with exactly one of
//!
//! 1. a complete result, bit-identical to the fault-free baseline
//!    (`coverage == 1.0`);
//! 2. a structured [`EngineError`] — never a hang, a panic that escapes
//!    the engine, or a process abort;
//! 3. an honestly-labelled degraded result (`coverage < 1.0` with
//!    non-empty `failed_workers`), and only when the caller opted in.
//!
//! Afterwards the *same* engine — faults disarmed — must heal completely:
//! a re-run with the same cache key returns bytes bit-identical to the
//! clean baseline, proving no partial summary polluted the computation
//! cache.
//!
//! The schedule is a pure function of the plan seed (§5.8 determinism),
//! so every assertion message carries the seed: re-run with
//! `CHAOS_SEED_BASE=<seed> CHAOS_SEEDS=1` to replay a failure exactly.
//! CI sets `CHAOS_SEEDS=64`; the local default keeps the suite quick.

use hillview_columnar::column::{Column, I64Column};
use hillview_columnar::udf::UdfRegistry;
use hillview_columnar::{ColumnKind, Table};
use hillview_core::cluster::ClusterConfig;
use hillview_core::dataset::SourceRegistry;
use hillview_core::erased::erase;
use hillview_core::{
    Cluster, Engine, EngineError, FaultPlan, FaultSpec, FnSource, QueryOptions, RetryPolicy,
};
use hillview_sketch::count::CountSketch;
use hillview_sketch::heavy::MisraGriesSketch;
use hillview_sketch::histogram::HistogramSketch;
use hillview_sketch::moments::MomentsSketch;
use hillview_sketch::BucketSpec;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROWS_PER_WORKER: i64 = 2_000;

/// A fresh 2-worker engine over a deterministic integer shard per worker,
/// with a tight retry budget so even pathological schedules stay fast.
fn chaos_engine() -> Engine {
    chaos_engine_with_cache_budget(ClusterConfig::test().cache_budget_bytes)
}

/// Same fixture with an explicit sketch-cache budget, for churn tests that
/// need evictions to actually happen.
fn chaos_engine_with_cache_budget(cache_budget_bytes: usize) -> Engine {
    let mut sources = SourceRegistry::new();
    sources.register(Arc::new(FnSource::new("chaos", |w, _n, _mp, snap| {
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Int,
                Column::Int(I64Column::from_options(
                    (0..ROWS_PER_WORKER).map(|i| Some((i * 7 + w as i64 * 13 + snap as i64) % 100)),
                )),
            )
            .build()
            .unwrap();
        Ok(vec![t])
    })));
    let mut cfg = ClusterConfig::test();
    cfg.cache_budget_bytes = cache_budget_bytes;
    let cluster = Cluster::new(cfg, sources, UdfRegistry::with_builtins());
    let mut engine = Engine::new(cluster);
    engine.retry = RetryPolicy {
        attempts: 4,
        base_backoff: Duration::from_micros(200),
        max_backoff: Duration::from_millis(5),
    };
    engine
}

/// The sketch grid: one representative per summary shape (scalar count,
/// bucketed histogram, bounded-size heavy hitters, numeric moments).
fn sketch_grid() -> Vec<(&'static str, Arc<dyn hillview_core::erased::ErasedSketch>)> {
    vec![
        ("count", erase(CountSketch::rows())),
        (
            "histogram",
            erase(HistogramSketch::streaming(
                "X",
                BucketSpec::numeric(0.0, 100.0, 10),
            )),
        ),
        ("misra-gries", erase(MisraGriesSketch::new("X", 8))),
        ("moments", erase(MomentsSketch::new("X", 4))),
    ]
}

fn seed_range() -> impl Iterator<Item = u64> {
    let base: u64 = std::env::var("CHAOS_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    let count: u64 = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    (0..count).map(move |i| base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Every query under chaos terminates with a complete bit-identical
/// result, a structured error, or an opted-in labelled degraded result —
/// and the healed engine always reconverges to the clean baseline.
#[test]
fn seeded_chaos_grid_preserves_failure_semantics() {
    // Hard per-query wall-clock bound: worker_timeout (500ms in the test
    // config) × 4 attempts plus stalls and backoffs sits well under this.
    const QUERY_BOUND: Duration = Duration::from_secs(30);
    // Outcome tallies across the whole grid, printed for CI triage and
    // used to assert the adversary is not a silent no-op.
    let (mut complete, mut degraded, mut errored, mut healed_from_fault) = (0u32, 0u32, 0u32, 0u32);
    for (nth, plan_seed) in seed_range().enumerate() {
        let engine = chaos_engine();
        let data = engine.load("chaos", plan_seed).unwrap();
        // Clean baselines first, before any fault is armed.
        let grid = sketch_grid();
        let baselines: Vec<_> = grid
            .iter()
            .map(|(name, sk)| {
                let opts = QueryOptions {
                    seed: 42,
                    ..Default::default()
                };
                let outcome = engine
                    .run_erased(data, sk, &opts)
                    .unwrap_or_else(|e| panic!("clean baseline {name} failed: {e}"));
                outcome.bytes
            })
            .collect();

        engine
            .cluster()
            .arm_faults(FaultPlan::seeded(plan_seed, FaultSpec::chaos()));
        for (i, (name, sk)) in grid.iter().enumerate() {
            // Alternate the degradation opt-in across the grid so both
            // the strict and the tolerant contract get exercised.
            let allow_degraded = (nth + i) % 2 == 0;
            let opts = QueryOptions {
                seed: 42,
                deadline: Some(Duration::from_secs(20)),
                allow_degraded,
                ..Default::default()
            };
            let started = Instant::now();
            let result = engine.run_erased(data, sk, &opts);
            let elapsed = started.elapsed();
            assert!(
                elapsed < QUERY_BOUND,
                "seed {plan_seed:#x} sketch {name}: query took {elapsed:?} — not bounded"
            );
            match result {
                Ok(outcome) if outcome.coverage >= 1.0 => {
                    complete += 1;
                    assert_eq!(
                        outcome.bytes, baselines[i],
                        "seed {plan_seed:#x} sketch {name}: complete result diverged from \
                         fault-free baseline"
                    );
                    assert!(
                        outcome.failed_workers.is_empty(),
                        "seed {plan_seed:#x} sketch {name}: full coverage but failed \
                         workers {:?}",
                        outcome.failed_workers
                    );
                }
                Ok(outcome) => {
                    degraded += 1;
                    assert!(
                        allow_degraded,
                        "seed {plan_seed:#x} sketch {name}: degraded result \
                         (coverage {}) without opt-in",
                        outcome.coverage
                    );
                    assert!(
                        !outcome.failed_workers.is_empty(),
                        "seed {plan_seed:#x} sketch {name}: coverage {} < 1 but no \
                         failed workers named",
                        outcome.coverage
                    );
                    assert!(
                        outcome.coverage > 0.0,
                        "seed {plan_seed:#x} sketch {name}: zero-coverage result \
                         should have been an error"
                    );
                }
                // Any structured error is within contract; specific
                // classes are pinned by unit tests. What must never
                // happen — hangs, escaped panics, aborts — fails the
                // bound above or the harness itself.
                Err(_e) => errored += 1,
            }
        }
        healed_from_fault += engine
            .cluster()
            .fault_plan()
            .map_or(0, |p| u32::from(p.faults_fired() > 0));

        // Heal: disarm and re-run the grid. The cache keys every query
        // structurally, so the healed re-runs address the very entries
        // the chaos runs would have written. Whatever the chaos run did —
        // succeeded (cache holds complete folds), failed (cache must hold
        // nothing) — the healed engine must reconverge to the clean
        // baseline bit-for-bit.
        engine.cluster().disarm_faults();
        for (i, (name, sk)) in grid.iter().enumerate() {
            let opts = QueryOptions {
                seed: 42,
                ..Default::default()
            };
            let outcome = engine.run_erased(data, sk, &opts).unwrap_or_else(|e| {
                panic!("seed {plan_seed:#x} sketch {name}: healed engine failed: {e}")
            });
            assert_eq!(
                outcome.bytes, baselines[i],
                "seed {plan_seed:#x} sketch {name}: healed re-run diverged — \
                 a faulted query polluted the computation cache"
            );
            assert!(
                (outcome.coverage - 1.0).abs() < f64::EPSILON,
                "seed {plan_seed:#x} sketch {name}: healed run not full coverage"
            );
        }
    }
    eprintln!(
        "chaos grid: {complete} complete, {degraded} degraded, {errored} errored; \
         faults fired in {healed_from_fault} seed(s)"
    );
    assert!(
        healed_from_fault > 0,
        "the seeded adversary never injected a single fault — the chaos \
         suite is vacuous; check FaultSpec::chaos() rates and site wiring"
    );
}

/// The outcome trichotomy holds on the **fused** filtered-query path too:
/// under an armed plan every one-shot `(predicate, sketch)` query — which
/// runs `summarize_filtered` at the leaves and bypasses the computation
/// cache — completes bit-identical to the fault-free fused baseline,
/// errors structurally, or degrades only with opt-in; and the healed
/// engine reconverges.
#[test]
fn seeded_chaos_fused_queries_preserve_failure_semantics() {
    use hillview_columnar::Predicate;
    const QUERY_BOUND: Duration = Duration::from_secs(30);
    let (mut complete, mut degraded, mut errored, mut fired) = (0u32, 0u32, 0u32, 0u32);
    for (nth, plan_seed) in seed_range().enumerate() {
        let engine = chaos_engine();
        let data = engine.load("chaos", plan_seed).unwrap();
        let grid = sketch_grid();
        let pred = || Predicate::range("X", 20.0, 70.0);
        let baselines: Vec<_> = grid
            .iter()
            .map(|(name, sk)| {
                let opts = QueryOptions {
                    seed: 42,
                    ..Default::default()
                };
                engine
                    .run_filtered_erased(data, pred(), sk, &opts)
                    .unwrap_or_else(|e| panic!("clean fused baseline {name} failed: {e}"))
                    .bytes
            })
            .collect();

        engine
            .cluster()
            .arm_faults(FaultPlan::seeded(plan_seed, FaultSpec::chaos()));
        for (i, (name, sk)) in grid.iter().enumerate() {
            let allow_degraded = (nth + i) % 2 == 0;
            let opts = QueryOptions {
                seed: 42,
                deadline: Some(Duration::from_secs(20)),
                allow_degraded,
                ..Default::default()
            };
            let started = Instant::now();
            let result = engine.run_filtered_erased(data, pred(), sk, &opts);
            let elapsed = started.elapsed();
            assert!(
                elapsed < QUERY_BOUND,
                "seed {plan_seed:#x} fused {name}: query took {elapsed:?} — not bounded"
            );
            match result {
                Ok(outcome) if outcome.coverage >= 1.0 => {
                    complete += 1;
                    assert_eq!(
                        outcome.bytes, baselines[i],
                        "seed {plan_seed:#x} fused {name}: complete result diverged \
                         from fault-free fused baseline"
                    );
                }
                Ok(outcome) => {
                    degraded += 1;
                    assert!(
                        allow_degraded,
                        "seed {plan_seed:#x} fused {name}: degraded result without opt-in"
                    );
                    assert!(
                        !outcome.failed_workers.is_empty(),
                        "seed {plan_seed:#x} fused {name}: coverage {} < 1 but no \
                         failed workers named",
                        outcome.coverage
                    );
                }
                Err(_e) => errored += 1,
            }
        }
        fired += engine
            .cluster()
            .fault_plan()
            .map_or(0, |p| u32::from(p.faults_fired() > 0));

        engine.cluster().disarm_faults();
        for (i, (name, sk)) in grid.iter().enumerate() {
            let opts = QueryOptions {
                seed: 42,
                ..Default::default()
            };
            let outcome = engine
                .run_filtered_erased(data, pred(), sk, &opts)
                .unwrap_or_else(|e| {
                    panic!("seed {plan_seed:#x} fused {name}: healed engine failed: {e}")
                });
            assert_eq!(
                outcome.bytes, baselines[i],
                "seed {plan_seed:#x} fused {name}: healed fused re-run diverged"
            );
        }
    }
    eprintln!(
        "fused chaos grid: {complete} complete, {degraded} degraded, {errored} errored; \
         faults fired in {fired} seed(s)"
    );
    assert!(
        fired > 0,
        "the seeded adversary never injected a fault into a fused query run"
    );
}

/// The scripted (epoch-blind) side of the plan: a persistent kill schedule
/// exhausts the retry budget with a structured, cause-preserving error,
/// and never caches anything under the failing key.
#[test]
fn scripted_persistent_kill_never_caches_partial_state() {
    use hillview_core::{FaultAction, FaultSite};
    let engine = chaos_engine();
    let data = engine.load("chaos", 0).unwrap();
    let sk = erase(CountSketch::rows());
    let clean = engine
        .run_erased(data, &sk, &QueryOptions::default())
        .unwrap();
    // Forget the clean run's cache entries (and datasets — lineage replay
    // restores them) so the faulted queries below actually execute, and
    // would write the very structural key the healed re-run reads if they
    // ever — wrongly — cached a partial fold.
    engine.cluster().evict_all();

    engine
        .cluster()
        .arm_faults(FaultPlan::scripted((0..100_000).map(|i| {
            (
                FaultSite::WorkerOp {
                    worker: 0,
                    index: i,
                },
                FaultAction::Kill,
            )
        })));
    let err = engine
        .run_erased(data, &sk, &QueryOptions::default())
        .unwrap_err();
    assert!(
        matches!(err, EngineError::RetriesExhausted { .. }),
        "persistent kill should exhaust the budget, got {err}"
    );

    engine.cluster().disarm_faults();
    let healed = engine
        .run_erased(data, &sk, &QueryOptions::default())
        .unwrap();
    assert_eq!(
        healed.bytes, clean.bytes,
        "failed query left partial state under its cache key"
    );
}

/// A degraded or failed tree must never populate a predicate-keyed cache
/// entry on the worker it abandoned. A persistently-killed worker 0 ends
/// the fused query in either an honestly-labelled degraded result or a
/// structured error (both are within the trichotomy; which one is a race
/// between the liveness sweep and the tolerant final attempt) — either
/// way the killed worker's cache must record zero insertions for the
/// whole episode, and the healed engine — reading the *same* structural
/// key — must reconverge to the complete fused baseline.
#[test]
fn degraded_fused_tree_never_populates_predicate_keyed_entries() {
    use hillview_columnar::Predicate;
    use hillview_core::{FaultAction, FaultSite};
    let engine = chaos_engine();
    let data = engine.load("chaos", 7).unwrap();
    let sk = erase(HistogramSketch::streaming(
        "X",
        BucketSpec::numeric(0.0, 100.0, 10),
    ));
    let pred = || Predicate::range("X", 15.0, 85.0);
    let clean = engine
        .run_filtered_erased(data, pred(), &sk, &QueryOptions::default())
        .unwrap();
    // Forget the clean run's entries so the degraded episode below starts
    // cold: any insertion from here on is attributable to a faulted tree.
    engine.cluster().evict_all();
    let w0_insertions = engine.cluster().worker(0).cache_stats().insertions;

    engine
        .cluster()
        .arm_faults(FaultPlan::scripted((0..100_000).map(|i| {
            (
                FaultSite::WorkerOp {
                    worker: 0,
                    index: i,
                },
                FaultAction::Kill,
            )
        })));
    let opts = QueryOptions {
        allow_degraded: true,
        deadline: Some(Duration::from_secs(20)),
        ..Default::default()
    };
    match engine.run_filtered_erased(data, pred(), &sk, &opts) {
        Ok(degraded) => assert!(
            degraded.coverage < 1.0 && degraded.failed_workers.contains(&0),
            "persistent kill of worker 0 should degrade the fused query \
             (coverage {}, failed {:?})",
            degraded.coverage,
            degraded.failed_workers
        ),
        Err(e) => assert!(
            e.is_retryable() || matches!(e, EngineError::RetriesExhausted { .. }),
            "persistent kill should surface a structured retryable/exhausted \
             error, got {e}"
        ),
    }
    assert_eq!(
        engine.cluster().worker(0).cache_stats().insertions,
        w0_insertions,
        "the killed worker cached state under the query's predicate key \
         while its tree was dying"
    );

    engine.cluster().disarm_faults();
    let healed = engine
        .run_filtered_erased(data, pred(), &sk, &QueryOptions::default())
        .unwrap();
    assert!(
        (healed.coverage - 1.0).abs() < f64::EPSILON,
        "healed fused run not full coverage"
    );
    assert_eq!(
        healed.bytes, clean.bytes,
        "healed fused re-run diverged — the degraded tree polluted a \
         predicate-keyed cache entry"
    );
}

/// Churn a deliberately tiny sketch cache with many distinct predicate
/// identities, across seeds. Evictions must actually fire, warm repeats
/// must actually hit, and every answer — fresh fold, cached entry, or
/// re-fold after eviction — must stay bit-identical to an uncached
/// reference of the same query.
#[test]
fn seeded_cache_churn_evicts_without_corrupting_results() {
    use hillview_columnar::Predicate;
    for plan_seed in seed_range().take(4) {
        // ~2 KB per worker: a handful of histogram/moments entries at
        // most, so 16 distinct predicates cycle the LRU several times.
        let engine = chaos_engine_with_cache_budget(2048);
        let data = engine.load("chaos", plan_seed).unwrap();
        let sketches = [
            erase(HistogramSketch::streaming(
                "X",
                BucketSpec::numeric(0.0, 100.0, 10),
            )),
            erase(MomentsSketch::new("X", 4)),
        ];
        let uncached = QueryOptions {
            cache: false,
            ..Default::default()
        };
        let mut state = plan_seed | 1;
        for _ in 0..16 {
            // Splitmix-style step: the predicate sequence is a pure
            // function of the seed, so failures replay exactly.
            state = state
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(27)
                .wrapping_add(0x243F_6A88_85A3_08D3);
            let lo = (state % 60) as f64;
            let hi = lo + 10.0 + (state >> 8 & 0x1F) as f64;
            let pred = Predicate::range("X", lo, hi);
            for sk in &sketches {
                let reference = engine
                    .run_filtered_erased(data, pred.clone(), sk, &uncached)
                    .unwrap();
                let cold = engine
                    .run_filtered_erased(data, pred.clone(), sk, &QueryOptions::default())
                    .unwrap();
                let warm = engine
                    .run_filtered_erased(data, pred.clone(), sk, &QueryOptions::default())
                    .unwrap();
                assert_eq!(
                    reference.bytes, cold.bytes,
                    "seed {plan_seed:#x} pred [{lo}, {hi}): cached fold diverged \
                     from uncached reference under churn"
                );
                assert_eq!(
                    cold.bytes, warm.bytes,
                    "seed {plan_seed:#x} pred [{lo}, {hi}): warm repeat diverged \
                     from the entry its own miss stored"
                );
            }
        }
        let stats = engine.cluster().cache_stats();
        assert!(
            stats.evictions > 0,
            "seed {plan_seed:#x}: churn over a {}-byte budget never evicted \
             (insertions {}, bytes {}) — the budget is not being enforced",
            2048,
            stats.insertions,
            stats.bytes
        );
        assert!(
            stats.hits > 0,
            "seed {plan_seed:#x}: warm repeats never hit the cache"
        );
        assert!(
            stats.bytes <= 2048 * engine.cluster().num_workers() as u64,
            "seed {plan_seed:#x}: cache grew past its budget ({} bytes)",
            stats.bytes
        );
    }
}
