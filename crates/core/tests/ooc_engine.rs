//! End-to-end out-of-core execution: a spilled `hvc` part directory loaded
//! through [`HvcDirSource`] under a deliberately tiny per-worker block
//! cache, queried fused, faulted, recovered — and bit-identical to the
//! heap-resident baseline throughout.
//!
//! What this pins down, beyond the storage-level property tests:
//!
//! * the engine's load path keeps mapped tables mapped (no partitioning
//!   pass that would decode every value),
//! * zone-map pruning reaches the I/O layer: a selective band over the
//!   sorted column faults in a small fraction of the mapped span, and the
//!   untouched second column faults nothing,
//! * lineage replay after evictions/kills re-opens part files and still
//!   reproduces the heap answer exactly,
//! * heap/mapped accounting split: mapped datasets report `mapped_bytes`,
//!   not `heap_bytes`.

use hillview_columnar::column::{Column, I64Column};
use hillview_columnar::udf::UdfRegistry;
use hillview_columnar::{ColumnKind, Predicate, SegmentMode, Table};
use hillview_core::dataset::SourceRegistry;
use hillview_core::{
    Cluster, ClusterConfig, Engine, FaultAction, FaultPlan, FaultSite, HvcDirSource, QueryOptions,
};
use hillview_sketch::histogram::{HistogramSketch, HistogramSummary};
use hillview_sketch::BucketSpec;
use hillview_storage::SpillingWriter;
use std::path::PathBuf;
use std::sync::Arc;

const ROWS: usize = 200_000;
const ROWS_PER_PART: usize = 20_000;

fn mix(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Spill the reference dataset — a sorted ramp `X` (zone-skippable,
/// delta-coded) and a shuffled `Y` (dense plain payload the filter never
/// touches) — into a fresh part directory.
fn spill_dataset(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hv-ooc-engine-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut w = SpillingWriter::new(&dir, ROWS_PER_PART).unwrap();
    let t = Table::builder()
        .column(
            "X",
            ColumnKind::Int,
            Column::Int(I64Column::from_options((0..ROWS).map(|i| Some(i as i64)))),
        )
        .column(
            "Y",
            ColumnKind::Int,
            Column::Int(I64Column::from_options(
                (0..ROWS).map(|i| Some((mix(i as u64) % 4096) as i64)),
            )),
        )
        .build()
        .unwrap();
    w.push(&t).unwrap();
    w.finish().unwrap();
    dir
}

/// An engine whose "mapped" source opens the part directory through the
/// residency tiers and whose "heap" source decodes the same files eagerly.
/// The block cache is tiny relative to the dataset so residency churns.
fn ooc_engine(dir: &PathBuf, block_cache_bytes: usize) -> Engine {
    let mut sources = SourceRegistry::new();
    sources.register(Arc::new(HvcDirSource::new("mapped", dir)));
    sources.register(Arc::new(HvcDirSource::with_mode(
        "heap",
        dir,
        SegmentMode::Heap,
    )));
    let cfg = ClusterConfig {
        micropartition_rows: 25_000,
        block_cache_bytes,
        ..ClusterConfig::test()
    };
    Engine::new(Cluster::new(cfg, sources, UdfRegistry::with_builtins()))
}

fn histogram() -> HistogramSketch {
    HistogramSketch::streaming("X", BucketSpec::numeric(0.0, ROWS as f64, 20))
}

/// The zone-skippable drill-down: a 5% contiguous band of the sorted ramp.
fn band() -> Predicate {
    Predicate::range("X", 10_000.0, 20_000.0)
}

#[test]
fn mapped_scan_is_bit_identical_to_heap_and_prunes_io() {
    let dir = spill_dataset("identity");
    let e = ooc_engine(&dir, 64 << 10);
    let mapped = e.load("mapped", 0).unwrap();
    let heap = e.load("heap", 0).unwrap();

    assert_eq!(e.cluster().dataset_rows(mapped), ROWS);
    // Accounting split: on little-endian hosts the mapped dataset is file
    // windows (headers own a little heap), the heap dataset owns payloads.
    if cfg!(target_endian = "little") {
        let span = e.cluster().dataset_mapped_bytes(mapped);
        assert!(span > 0, "v3 parts did not load mapped");
        assert!(
            e.cluster().dataset_heap_bytes(mapped) < e.cluster().dataset_heap_bytes(heap),
            "mapped columns must not be double-counted as heap"
        );
        assert_eq!(e.cluster().dataset_mapped_bytes(heap), 0);

        let before = e.cluster().block_cache_stats();
        let (m, _) = e
            .run_filtered(mapped, band(), histogram(), &QueryOptions::default())
            .unwrap();
        let after = e.cluster().block_cache_stats();
        let (h, _) = e
            .run_filtered(heap, band(), histogram(), &QueryOptions::default())
            .unwrap();
        assert_eq!(m, h, "mapped result diverged from heap-resident");
        let m: HistogramSummary = m;
        assert_eq!(m.buckets.iter().sum::<u64>(), 10_000, "5% band");

        // I/O pruning: the band covers 5% of sorted X and none of Y, so
        // the query must fault in a small fraction of the mapped span.
        let faulted = after.bytes_faulted - before.bytes_faulted;
        assert!(faulted > 0, "a cold mapped scan must fault something");
        assert!(
            faulted * 5 <= span as u64,
            "zone-skippable band faulted {faulted} of {span} mapped bytes \
             (> 20%) — block pruning is not reaching the I/O layer"
        );
    } else {
        // Big-endian fallback loads heap everywhere; results still match.
        let (m, _) = e
            .run_filtered(mapped, band(), histogram(), &QueryOptions::default())
            .unwrap();
        let (h, _) = e
            .run_filtered(heap, band(), histogram(), &QueryOptions::default())
            .unwrap();
        assert_eq!(m, h);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tiny_block_cache_survives_eviction_and_kill_chaos() {
    let dir = spill_dataset("chaos");
    // 4 KiB per worker: far below one 64 KiB residency chunk, so every
    // fault of a *different* part file must evict the previous one.
    let e = ooc_engine(&dir, 4 << 10);
    let mapped = e.load("mapped", 0).unwrap();
    // Four 5% bands in four different part files, spread across both
    // workers by the round-robin part deal — the drill-down sweep that
    // forces residency churn (one band's chunks cannot stay resident
    // while the next band faults).
    let bands: Vec<Predicate> = (0..4)
        .map(|k| {
            let lo = (k * 50_000 + 10_000) as f64;
            Predicate::range("X", lo, lo + 10_000.0)
        })
        .collect();
    let references: Vec<HistogramSummary> = bands
        .iter()
        .map(|b| {
            e.run_filtered(mapped, b.clone(), histogram(), &QueryOptions::default())
                .unwrap()
                .0
        })
        .collect();
    for r in &references {
        assert_eq!(r.buckets.iter().sum::<u64>(), 10_000);
    }

    // Evict the dataset on worker 0 mid-sequence, then kill worker 1:
    // both heal through lineage replay, which re-opens the part files
    // through the same block cache.
    e.cluster().arm_faults(FaultPlan::scripted([
        (
            FaultSite::WorkerOp {
                worker: 0,
                index: 2,
            },
            FaultAction::Evict,
        ),
        (
            FaultSite::WorkerOp {
                worker: 1,
                index: 3,
            },
            FaultAction::Kill,
        ),
    ]));
    for round in 0..2 {
        for (b, reference) in bands.iter().zip(&references) {
            let (s, _) = e
                .run_filtered(mapped, b.clone(), histogram(), &QueryOptions::default())
                .unwrap();
            assert_eq!(
                &s, reference,
                "round {round}: recovered mapped scan diverged from the \
                 pre-fault answer"
            );
        }
    }
    e.cluster().disarm_faults();

    let stats = e.cluster().block_cache_stats();
    if cfg!(target_endian = "little") {
        assert!(stats.faults > 0, "mapped scans never faulted");
        // Under the mmap tier a 4 KiB budget cannot hold the touched
        // band, so eviction must actually churn. (The pread tier pins
        // resident chunks; eviction needs `ooc`.)
        #[cfg(feature = "ooc")]
        assert!(
            stats.evictions > 0,
            "tiny budget never evicted (resident {} / budget {})",
            stats.resident_bytes,
            stats.budget
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
