//! Property tests for the per-worker sketch-result cache.
//!
//! The contract under test: a cache **hit is bit-identical to the
//! computation it replaced** — across integer encodings (plain /
//! bit-packed / run-length / delta), membership representations (fused
//! full-membership scan vs. materialized narrowed membership), and simd
//! modes (an entry computed with the vector kernels must serve a query
//! running the scalar fallbacks, and vice versa). Each case runs every
//! query shape three ways: uncached reference, cold miss (populates the
//! cache, possibly under the *other* simd mode), and warm hit; all three
//! summaries must agree byte-for-byte, and the counters must prove the
//! hit actually came from the cache.

use hillview_columnar::column::{Column, I64Column};
use hillview_columnar::udf::UdfRegistry;
use hillview_columnar::{simd, ColumnKind, I64Storage, NullMask, Predicate, Table};
use hillview_core::cluster::ClusterConfig;
use hillview_core::dataset::SourceRegistry;
use hillview_core::erased::{erase, ErasedSketch};
use hillview_core::{Cluster, DatasetId, FnSource, QueryOptions, SourceSpec};
use hillview_sketch::histogram::HistogramSketch;
use hillview_sketch::moments::MomentsSketch;
use hillview_sketch::BucketSpec;
use proptest::prelude::*;
use std::sync::Arc;

/// Force one of the representable storages for `data`: every variant that
/// can hold the values, indexed stably so proptest shrinks meaningfully.
fn storage_for(enc: usize, data: &[i64]) -> I64Storage {
    let mut variants = vec![
        I64Storage::plain_of(data.to_vec()),
        I64Storage::encode(data.to_vec()),
    ];
    variants.extend(I64Storage::bit_packed_of(data));
    variants.extend(I64Storage::run_length_of(data));
    variants.extend(I64Storage::delta_of(data));
    let pick = enc % variants.len();
    variants.swap_remove(pick)
}

/// A 2-worker cluster whose source shards `values` per worker (rotated so
/// the workers differ) with the chosen storage encoding, split into two
/// partitions per worker.
fn cluster_with(enc: usize, values: Arc<Vec<i64>>, null_p: u32) -> Arc<Cluster> {
    let mut sources = SourceRegistry::new();
    sources.register(Arc::new(FnSource::new(
        "props",
        move |w, _n, _mp, _snap| {
            let n = values.len();
            let shard: Vec<i64> = (0..n)
                .map(|i| values[(i + w * 17) % n].wrapping_add(w as i64))
                .collect();
            let mid = n / 2;
            let mut parts = Vec::new();
            for chunk in [&shard[..mid], &shard[mid..]] {
                if chunk.is_empty() {
                    continue;
                }
                let nulls = NullMask::from_flags(
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(i, v)| (v.unsigned_abs() ^ i as u64) % 100 < u64::from(null_p)),
                    chunk.len(),
                );
                let t = Table::builder()
                    .column(
                        "X",
                        ColumnKind::Int,
                        Column::Int(I64Column::with_storage(storage_for(enc, chunk), nulls)),
                    )
                    .build()
                    .unwrap();
                parts.push(t);
            }
            Ok(parts)
        },
    )));
    Cluster::new(ClusterConfig::test(), sources, UdfRegistry::with_builtins())
}

fn load(c: &Arc<Cluster>) -> DatasetId {
    let ds = DatasetId(1);
    c.load(
        ds,
        &SourceSpec {
            source: Arc::from("props"),
            snapshot: 0,
        },
    )
    .unwrap();
    ds
}

/// Run one query shape (fused or two-pass) under the reference/miss/hit
/// triple and assert bit-identity plus real cache traffic.
fn assert_hit_equals_miss(
    c: &Arc<Cluster>,
    ds: DatasetId,
    filter: Option<&Predicate>,
    sk: &Arc<dyn ErasedSketch>,
    scalar_first: bool,
    ctx: &str,
) {
    let uncached = QueryOptions {
        cache: false,
        ..Default::default()
    };
    let cached = QueryOptions::default();

    simd::set_force_scalar(scalar_first);
    let reference = c.run_erased_filtered(ds, filter, sk, &uncached).unwrap();

    // Cold miss under the *other* simd mode: whatever lands in the cache
    // was computed by the other kernel path.
    simd::set_force_scalar(!scalar_first);
    let misses_before = c.cache_stats().misses;
    let cold = c.run_erased_filtered(ds, filter, sk, &cached).unwrap();
    let after_cold = c.cache_stats();
    assert!(
        after_cold.misses > misses_before,
        "{ctx}: cold run never consulted the cache"
    );

    // Warm hit back under the first mode.
    simd::set_force_scalar(scalar_first);
    let hits_before = after_cold.hits;
    let warm = c.run_erased_filtered(ds, filter, sk, &cached).unwrap();
    let hits_after = c.cache_stats().hits;
    simd::set_force_scalar(false);

    assert_eq!(
        reference.bytes, cold.bytes,
        "{ctx}: cached computation diverged from uncached reference"
    );
    assert_eq!(
        cold.bytes, warm.bytes,
        "{ctx}: cache hit served different bytes than the miss stored"
    );
    assert_eq!(
        hits_after - hits_before,
        c.num_workers() as u64,
        "{ctx}: warm run was not served from every worker's cache"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Hit ≡ miss ≡ uncached, for a float-fold-sensitive sketch (moments)
    /// and a bucketed histogram, over both the fused and the materialized
    /// two-pass membership representation.
    #[test]
    fn cache_hit_is_bit_identical_to_recomputation(
        values in proptest::collection::vec(-400i64..400, 64..1600),
        enc in 0usize..6,
        null_p in 0u32..30,
        lo in -300.0f64..300.0,
        span in 1.0f64..400.0,
        scalar_first in any::<bool>(),
    ) {
        let c = cluster_with(enc, Arc::new(values), null_p);
        let ds = load(&c);
        let pred = Predicate::range("X", lo, lo + span);
        let sketches: Vec<Arc<dyn ErasedSketch>> = vec![
            erase(MomentsSketch::new("X", 4)),
            erase(HistogramSketch::streaming(
                "X",
                BucketSpec::numeric(-450.0, 450.0, 13),
            )),
        ];

        // Materialized membership for the two-pass representation.
        let narrowed = DatasetId(2);
        c.filter(narrowed, ds, &pred).unwrap();

        for sk in &sketches {
            assert_hit_equals_miss(
                &c, ds, None, sk, scalar_first,
                &format!("{} full", sk.name()),
            );
            assert_hit_equals_miss(
                &c, ds, Some(&pred), sk, scalar_first,
                &format!("{} fused", sk.name()),
            );
            assert_hit_equals_miss(
                &c, narrowed, None, sk, scalar_first,
                &format!("{} two-pass", sk.name()),
            );
        }
    }
}
