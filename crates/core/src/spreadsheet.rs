//! The spreadsheet facade: user actions → vizketch executions.
//!
//! This is Hillview's public API surface. Every operation follows the
//! paper's two-phase structure (§5.3): a *preparation* tree computes
//! data-wide parameters (row counts, ranges, string quantiles — all cached,
//! since they are deterministic and reused), then a *rendering* tree runs
//! the vizketch parameterized for the display. The operation names O1–O11
//! match Figure 4 of the paper and are exercised one-to-one by the
//! benchmark harness.

use crate::cluster::{QueryOptions, QueryOutcome};
use crate::dataset::DatasetId;
use crate::engine::Engine;
use crate::error::EngineResult;
use crate::progress::{CancellationToken, PartialCallback};
use hillview_columnar::{Predicate, RowKey, SortOrder, StrMatchKind};
use hillview_sketch::bottomk::{BottomKSketch, BottomKSummary};
use hillview_sketch::count::CountSketch;
use hillview_sketch::distinct::DistinctSketch;
use hillview_sketch::find::{FindSketch, FindSummary};
use hillview_sketch::heavy::MisraGriesSketch;
use hillview_sketch::moments::MomentsSketch;
use hillview_sketch::nextk::NextKSummary;
use hillview_sketch::pca::{PcaSketch, PcaSummary};
use hillview_sketch::range::{RangeSketch, RangeSummary};
use hillview_viz::cdf::{CdfRendering, CdfViz};
use hillview_viz::display::DisplaySpec;
use hillview_viz::heatmap::{AxisInfo, HeatmapViz};
use hillview_viz::heavyviz::{HeavyHittersRendering, HeavyHittersViz};
use hillview_viz::histogram::HistogramViz;
use hillview_viz::render::{BarChart, ColorGrid};
use hillview_viz::stacked::{StackedRendering, StackedViz};
use hillview_viz::tableview::{TablePage, TableViewViz};
use hillview_viz::trellis::TrellisViz;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Latency/traffic statistics of one spreadsheet operation (possibly
/// spanning several execution trees).
#[derive(Debug, Clone, Default)]
pub struct OpStats {
    /// Total wall-clock time.
    pub duration: Duration,
    /// Bytes the root received.
    pub root_bytes: u64,
    /// Messages the root received.
    pub root_messages: u64,
    /// Time until the first partial visualization, if any arrived.
    pub first_partial: Option<Duration>,
    /// Partial updates delivered to the client.
    pub partials: usize,
    /// Execution trees launched.
    pub trees: usize,
}

impl OpStats {
    fn absorb(&mut self, o: &QueryOutcome) {
        // `first_partial` is relative to its own tree; offset by the time
        // already spent in earlier phases of this operation.
        if self.first_partial.is_none() {
            self.first_partial = o.first_partial.map(|fp| self.duration + fp);
        }
        self.duration += o.duration;
        self.root_bytes += o.root_bytes;
        self.root_messages += o.root_messages;
        self.partials += o.partials;
        self.trees += 1;
    }
}

/// A spreadsheet session over one (possibly derived) dataset.
pub struct Spreadsheet {
    engine: Arc<Engine>,
    dataset: DatasetId,
    display: DisplaySpec,
    seed: AtomicU64,
    /// Partial-result callback applied to rendering-phase queries.
    pub on_partial: Option<PartialCallback>,
    /// Cancellation for long renders.
    pub cancel: CancellationToken,
}

impl Spreadsheet {
    /// Open a spreadsheet on an already-loaded dataset.
    pub fn new(engine: Arc<Engine>, dataset: DatasetId, display: DisplaySpec) -> Self {
        Spreadsheet {
            engine,
            dataset,
            display,
            seed: AtomicU64::new(0x5EED),
            on_partial: None,
            cancel: CancellationToken::new(),
        }
    }

    /// Load `source` and open a spreadsheet on it.
    pub fn open(
        engine: Arc<Engine>,
        source: &str,
        snapshot: u64,
        display: DisplaySpec,
    ) -> EngineResult<Self> {
        let dataset = engine.load(source, snapshot)?;
        Ok(Self::new(engine, dataset, display))
    }

    /// The dataset this sheet views.
    pub fn dataset(&self) -> DatasetId {
        self.dataset
    }

    /// The engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Fix the RNG seed base (tests, replay determinism).
    pub fn set_seed(&self, seed: u64) {
        self.seed.store(seed, Ordering::SeqCst);
    }

    fn next_seed(&self) -> u64 {
        self.seed.fetch_add(0x9E37_79B9, Ordering::SeqCst)
    }

    // Caching needs no per-call-site keys anymore: the worker cache keys
    // every query structurally (dataset version × sketch identity), so
    // deterministic preparation sketches cache automatically and
    // seed-dependent ones are excluded by their own `cache_identity`.
    fn opts(&self, seed: u64) -> QueryOptions {
        QueryOptions {
            seed,
            cancel: self.cancel.clone(),
            on_partial: self.on_partial.clone(),
            ..Default::default()
        }
    }

    // -----------------------------------------------------------------
    // Preparation-phase helpers (cached, deterministic).
    // -----------------------------------------------------------------

    /// Total rows (cached).
    pub fn row_count(&self) -> EngineResult<(u64, OpStats)> {
        let mut stats = OpStats::default();
        let (sum, o) = self
            .engine
            .run(self.dataset, CountSketch::rows(), &self.opts(0))?;
        stats.absorb(&o);
        Ok((sum.rows, stats))
    }

    /// Numeric range of a column (cached).
    pub fn range_of(&self, column: &str) -> EngineResult<(RangeSummary, OpStats)> {
        let mut stats = OpStats::default();
        let (sum, o) = self
            .engine
            .run(self.dataset, RangeSketch::new(column), &self.opts(0))?;
        stats.absorb(&o);
        Ok((sum, stats))
    }

    /// Bottom-k distinct-string quantiles of a column (cached).
    pub fn string_quantiles(&self, column: &str) -> EngineResult<(BottomKSummary, OpStats)> {
        let mut stats = OpStats::default();
        let (sum, o) =
            self.engine
                .run(self.dataset, BottomKSketch::new(column, 512), &self.opts(0))?;
        stats.absorb(&o);
        Ok((sum, stats))
    }

    // -----------------------------------------------------------------
    // Tabular views (O1–O4)
    // -----------------------------------------------------------------

    /// O1/O2/O3: (re)sort the view and show the first page.
    pub fn sort_view(&self, columns: &[&str], rows: usize) -> EngineResult<(TablePage, OpStats)> {
        self.page_after(columns, None, rows)
    }

    /// Scroll/page: the `rows` rows after `start` under the sort order.
    pub fn page_after(
        &self,
        columns: &[&str],
        start: Option<RowKey>,
        rows: usize,
    ) -> EngineResult<(TablePage, OpStats)> {
        let viz = TableViewViz::new(SortOrder::ascending(columns), rows);
        let mut stats = OpStats::default();
        let (summary, o): (NextKSummary, _) =
            self.engine
                .run(self.dataset, viz.page_after(start), &self.opts(0))?;
        stats.absorb(&o);
        Ok((viz.render(&summary), stats))
    }

    /// O4: scroll-bar drag — quantile probe, then the page at that rank.
    pub fn scroll_to(
        &self,
        columns: &[&str],
        scrollbar_pixel: usize,
        rows: usize,
    ) -> EngineResult<(TablePage, OpStats)> {
        let mut stats = OpStats::default();
        let (count, s0) = self.row_count()?;
        stats.duration += s0.duration;
        stats.root_bytes += s0.root_bytes;
        stats.trees += s0.trees;

        let viz = TableViewViz::new(SortOrder::ascending(columns), rows);
        let (q, o1) = self.engine.run(
            self.dataset,
            viz.scrollbar_quantile(count),
            &self.opts(self.next_seed()),
        )?;
        stats.absorb(&o1);
        let start = q.quantile(viz.pixel_to_quantile(scrollbar_pixel));
        let (summary, o2): (NextKSummary, _) =
            self.engine
                .run(self.dataset, viz.page_after(start), &self.opts(0))?;
        stats.absorb(&o2);
        Ok((viz.render(&summary), stats))
    }

    /// Find the next row matching a text query in sort order (§3.3).
    pub fn find_text(
        &self,
        column: &str,
        query: &str,
        kind: StrMatchKind,
        case_insensitive: bool,
        order_columns: &[&str],
        after: Option<RowKey>,
    ) -> EngineResult<(FindSummary, OpStats)> {
        let mut sketch = FindSketch::new(column, query, kind, SortOrder::ascending(order_columns));
        if case_insensitive {
            sketch = sketch.case_insensitive();
        }
        if let Some(k) = after {
            sketch = sketch.after(k);
        }
        let mut stats = OpStats::default();
        let (sum, o) = self.engine.run(self.dataset, sketch, &self.opts(0))?;
        stats.absorb(&o);
        Ok((sum, stats))
    }

    // -----------------------------------------------------------------
    // Charts (O5–O7, O10, O11)
    // -----------------------------------------------------------------

    /// O5: range + (histogram & CDF) on a numeric column.
    pub fn histogram_with_cdf(
        &self,
        column: &str,
        buckets: Option<usize>,
    ) -> EngineResult<(BarChart, CdfRendering, OpStats)> {
        let mut stats = OpStats::default();
        let (range, s0) = self.range_of(column)?;
        stats.duration += s0.duration;
        stats.root_bytes += s0.root_bytes;
        stats.trees += s0.trees;

        let mut viz = HistogramViz::new(column, self.display);
        if let Some(b) = buckets {
            viz = viz.with_buckets(b);
        }
        let sketch = viz.prepare_numeric(&range)?;
        let (summary, o1) =
            self.engine
                .run(self.dataset, sketch.clone(), &self.opts(self.next_seed()))?;
        stats.absorb(&o1);
        let chart = viz.render(&sketch, &summary);

        let cdf_viz = CdfViz::new(column, self.display);
        let cdf_sketch = cdf_viz.prepare(&range)?;
        let (cdf_summary, o2) =
            self.engine
                .run(self.dataset, cdf_sketch, &self.opts(self.next_seed()))?;
        stats.absorb(&o2);
        Ok((chart, cdf_viz.render(&cdf_summary), stats))
    }

    /// O7: distinct-string buckets + histogram on a string column.
    pub fn string_histogram(&self, column: &str) -> EngineResult<(BarChart, OpStats)> {
        let mut stats = OpStats::default();
        let (bk, s0) = self.string_quantiles(column)?;
        stats.duration += s0.duration;
        stats.root_bytes += s0.root_bytes;
        stats.trees += s0.trees;

        let viz = HistogramViz::new(column, self.display).exact();
        let sketch = viz.prepare_strings(&bk)?;
        let (summary, o) =
            self.engine
                .run(self.dataset, sketch.clone(), &self.opts(self.next_seed()))?;
        stats.absorb(&o);
        Ok((viz.render(&sketch, &summary), stats))
    }

    /// O10: ranges + (stacked histogram & CDF).
    pub fn stacked_histogram_with_cdf(
        &self,
        col_x: &str,
        col_y: &str,
    ) -> EngineResult<(StackedRendering, CdfRendering, OpStats)> {
        let mut stats = OpStats::default();
        let (rx, s0) = self.range_of(col_x)?;
        stats.duration += s0.duration;
        stats.root_bytes += s0.root_bytes;
        stats.trees += s0.trees;
        let (y_info, s1) = self.axis_info(col_y)?;
        stats.duration += s1.duration;
        stats.root_bytes += s1.root_bytes;
        stats.trees += s1.trees;

        let viz = StackedViz::new(col_x, col_y, self.display);
        let sketch = viz.prepare(&AxisInfo::Numeric(rx.clone()), &y_info, rx.present)?;
        let (summary, o1) = self
            .engine
            .run(self.dataset, sketch, &self.opts(self.next_seed()))?;
        stats.absorb(&o1);
        let rendering = viz.render(&summary);

        let cdf_viz = CdfViz::new(col_x, self.display);
        let cdf_sketch = cdf_viz.prepare(&rx)?;
        let (cdf_summary, o2) =
            self.engine
                .run(self.dataset, cdf_sketch, &self.opts(self.next_seed()))?;
        stats.absorb(&o2);
        Ok((rendering, cdf_viz.render(&cdf_summary), stats))
    }

    /// O11: heat map of two numeric columns.
    pub fn heatmap(&self, col_x: &str, col_y: &str) -> EngineResult<(ColorGrid, OpStats)> {
        let mut stats = OpStats::default();
        let (x_info, s0) = self.axis_info(col_x)?;
        stats.duration += s0.duration;
        stats.root_bytes += s0.root_bytes;
        stats.trees += s0.trees;
        let (y_info, s1) = self.axis_info(col_y)?;
        stats.duration += s1.duration;
        stats.root_bytes += s1.root_bytes;
        stats.trees += s1.trees;
        let (count, s2) = self.row_count()?;
        stats.duration += s2.duration;
        stats.root_bytes += s2.root_bytes;
        stats.trees += s2.trees;

        let viz = HeatmapViz::new(col_x, col_y, self.display);
        let sketch = viz.prepare(&x_info, &y_info, count)?;
        let (summary, o) = self
            .engine
            .run(self.dataset, sketch, &self.opts(self.next_seed()))?;
        stats.absorb(&o);
        Ok((viz.render(&summary), stats))
    }

    /// Trellis of heat maps grouped by `col_w` (Fig. 2).
    pub fn trellis_heatmap(
        &self,
        col_w: &str,
        col_x: &str,
        col_y: &str,
        groups: usize,
    ) -> EngineResult<(Vec<ColorGrid>, OpStats)> {
        let mut stats = OpStats::default();
        let (w_info, s0) = self.axis_info(col_w)?;
        let (x_info, s1) = self.axis_info(col_x)?;
        let (y_info, s2) = self.axis_info(col_y)?;
        let (count, s3) = self.row_count()?;
        for s in [&s0, &s1, &s2, &s3] {
            stats.duration += s.duration;
            stats.root_bytes += s.root_bytes;
            stats.trees += s.trees;
        }
        let viz = TrellisViz::new(col_w, col_x, col_y, self.display, groups);
        let sketch = viz.prepare(&w_info, &x_info, &y_info, count)?;
        let (summary, o) = self
            .engine
            .run(self.dataset, sketch, &self.opts(self.next_seed()))?;
        stats.absorb(&o);
        Ok((viz.render(&summary), stats))
    }

    /// Phase-1 info for an axis: numeric range or string quantiles.
    fn axis_info(&self, column: &str) -> EngineResult<(AxisInfo, OpStats)> {
        let (range, stats) = self.range_of(column)?;
        if range.min.is_some() {
            return Ok((AxisInfo::Numeric(range), stats));
        }
        let (bk, s2) = self.string_quantiles(column)?;
        let mut stats = stats;
        stats.duration += s2.duration;
        stats.root_bytes += s2.root_bytes;
        stats.trees += s2.trees;
        Ok((AxisInfo::Strings(bk), stats))
    }

    // -----------------------------------------------------------------
    // Analyses (O8, O9, PCA)
    // -----------------------------------------------------------------

    /// O8: heavy hitters by sampling.
    pub fn heavy_hitters_sampling(
        &self,
        column: &str,
        k: usize,
    ) -> EngineResult<(HeavyHittersRendering, OpStats)> {
        let mut stats = OpStats::default();
        let (count, s0) = self.row_count()?;
        stats.duration += s0.duration;
        stats.root_bytes += s0.root_bytes;
        stats.trees += s0.trees;

        let viz = HeavyHittersViz::sampling(column, k);
        let sketch = viz.prepare_sampling(count);
        let (summary, o) = self
            .engine
            .run(self.dataset, sketch, &self.opts(self.next_seed()))?;
        stats.absorb(&o);
        Ok((viz.render_sampling(&summary, count), stats))
    }

    /// Heavy hitters via Misra-Gries (exact guarantee, full scan).
    pub fn heavy_hitters_streaming(
        &self,
        column: &str,
        k: usize,
    ) -> EngineResult<(HeavyHittersRendering, OpStats)> {
        let viz = HeavyHittersViz::streaming(column, k);
        let mut stats = OpStats::default();
        let (summary, o) = self.engine.run(
            self.dataset,
            MisraGriesSketch::new(column, k),
            &self.opts(0),
        )?;
        stats.absorb(&o);
        Ok((viz.render_streaming(&summary), stats))
    }

    /// O9: approximate distinct count (HyperLogLog).
    pub fn distinct_count(&self, column: &str) -> EngineResult<(f64, OpStats)> {
        let mut stats = OpStats::default();
        let (summary, o) =
            self.engine
                .run(self.dataset, DistinctSketch::new(column), &self.opts(0))?;
        stats.absorb(&o);
        Ok((summary.estimate(), stats))
    }

    /// Column summary: count, missing, min/max, mean, variance (App. B.3).
    pub fn moments(
        &self,
        column: &str,
        k: usize,
    ) -> EngineResult<(hillview_sketch::moments::MomentsSummary, OpStats)> {
        let mut stats = OpStats::default();
        let (summary, o) =
            self.engine
                .run(self.dataset, MomentsSketch::new(column, k), &self.opts(0))?;
        stats.absorb(&o);
        Ok((summary, stats))
    }

    /// Principal component analysis over numeric columns (App. B.3).
    pub fn pca(&self, columns: &[&str], rate: f64) -> EngineResult<(PcaSummary, OpStats)> {
        let mut stats = OpStats::default();
        let (summary, o) = self.engine.run(
            self.dataset,
            PcaSketch::new(columns, rate),
            &self.opts(self.next_seed()),
        )?;
        stats.absorb(&o);
        Ok((summary, stats))
    }

    // -----------------------------------------------------------------
    // Derivations (§5.6)
    // -----------------------------------------------------------------

    /// Derive a filtered sheet (zooming a chart region, O6's first step).
    /// Lazy: the first chart rendered on the new sheet runs fused (the
    /// predicate rides inside the sketch's block pass); sustained
    /// interaction materializes the membership for cached two-pass reuse.
    pub fn filtered(&self, predicate: Predicate) -> EngineResult<Spreadsheet> {
        let ds = self.engine.filter_lazy(self.dataset, predicate);
        let sheet = Spreadsheet::new(self.engine.clone(), ds, self.display);
        Ok(sheet)
    }

    /// Derive a sheet with an extra UDF column.
    pub fn with_column(&self, udf: &str, new_column: &str) -> EngineResult<Spreadsheet> {
        let ds = self.engine.map(self.dataset, udf, new_column)?;
        Ok(Spreadsheet::new(self.engine.clone(), ds, self.display))
    }
}

impl std::fmt::Debug for Spreadsheet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Spreadsheet({})", self.dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use crate::dataset::{FnSource, SourceRegistry};
    use hillview_columnar::udf::UdfRegistry;
    use hillview_data::{generate_flights, FlightsConfig};
    use hillview_storage::partition_table;

    fn sheet() -> Spreadsheet {
        let mut sources = SourceRegistry::new();
        sources.register(Arc::new(FnSource::new("flights", |w, n, mp, snap| {
            let t = generate_flights(&FlightsConfig::new(8_000, snap ^ w as u64));
            let _ = n;
            Ok(partition_table(&t, mp))
        })));
        let mut udfs = UdfRegistry::with_builtins();
        udfs.register_ratio("Speed", "Distance", "AirTime");
        let cluster = Cluster::new(ClusterConfig::test(), sources, udfs);
        let engine = Arc::new(Engine::new(cluster));
        Spreadsheet::open(engine, "flights", 1, DisplaySpec::new(200, 100)).unwrap()
    }

    #[test]
    fn o1_sort_numeric() {
        let s = sheet();
        let (page, stats) = s.sort_view(&["DepDelay"], 10).unwrap();
        assert_eq!(page.rows.len(), 10);
        assert!(stats.root_bytes > 0);
        // First row is the most-negative delay (missing sorts first but the
        // key itself is shown).
        assert!(!page.rows[0].0[0].is_empty());
    }

    #[test]
    fn o2_sort_five_columns() {
        let s = sheet();
        let (page, _) = s
            .sort_view(&["Year", "Month", "DayOfMonth", "Carrier", "FlightNum"], 5)
            .unwrap();
        assert_eq!(page.headers.len(), 5);
        assert_eq!(page.rows.len(), 5);
    }

    #[test]
    fn o3_sort_string() {
        let s = sheet();
        let (page, _) = s.sort_view(&["Origin"], 8).unwrap();
        // Ascending airport codes.
        let codes: Vec<&String> = page.rows.iter().map(|(r, _)| &r[0]).collect();
        let mut sorted = codes.clone();
        sorted.sort();
        assert_eq!(codes, sorted);
    }

    #[test]
    fn o4_scrollbar_quantile() {
        let s = sheet();
        let (page, stats) = s.scroll_to(&["Distance"], 50, 5).unwrap();
        assert!(!page.rows.is_empty());
        assert!(stats.trees >= 2, "quantile + next-items trees");
    }

    #[test]
    fn o5_histogram_and_cdf() {
        let s = sheet();
        let (chart, cdf, stats) = s.histogram_with_cdf("DepDelay", Some(20)).unwrap();
        assert_eq!(chart.heights_px.len(), 20);
        assert_eq!(*chart.heights_px.iter().max().unwrap() as usize, 100);
        assert!(cdf.heights_px.windows(2).all(|w| w[0] <= w[1]));
        assert!(stats.trees >= 3, "range + histogram + cdf");
    }

    #[test]
    fn o6_filter_then_histogram() {
        let s = sheet();
        let ua = s.filtered(Predicate::equals("Carrier", "UA")).unwrap();
        let (count, _) = ua.row_count().unwrap();
        let (all, _) = s.row_count().unwrap();
        assert!(count > 0 && count < all);
        let (chart, _, _) = ua.histogram_with_cdf("DepDelay", Some(10)).unwrap();
        assert_eq!(chart.heights_px.len(), 10);
    }

    #[test]
    fn o7_string_histogram() {
        let s = sheet();
        let (chart, _) = s.string_histogram("Origin").unwrap();
        assert!(chart.heights_px.len() > 10, "many airports");
        assert!(chart.max_count > 0);
    }

    #[test]
    fn o8_heavy_hitters_sampling() {
        let s = sheet();
        let (hh, _) = s.heavy_hitters_sampling("Carrier", 5).unwrap();
        assert!(!hh.items.is_empty());
        // WN is the most common carrier in the generator.
        assert_eq!(hh.items[0].0.to_string(), "WN");
    }

    #[test]
    fn o9_distinct_count() {
        let s = sheet();
        let (est, _) = s.distinct_count("Carrier").unwrap();
        assert!((est - 14.0).abs() < 1.5, "14 carriers, estimated {est}");
    }

    #[test]
    fn o10_stacked_histogram() {
        let s = sheet();
        let (stacked, cdf, _) = s
            .stacked_histogram_with_cdf("CRSDepTime", "Carrier")
            .unwrap();
        assert!(!stacked.bar_px.is_empty());
        assert!(!cdf.heights_px.is_empty());
    }

    #[test]
    fn o11_heatmap() {
        let s = sheet();
        let (grid, stats) = s.heatmap("Distance", "AirTime").unwrap();
        assert!(grid.bx > 0 && grid.by > 0);
        assert!(grid.max_count > 0);
        // Heatmaps ship Bx×By cells — the largest summaries (paper Fig. 5).
        assert!(stats.root_bytes > 500);
    }

    #[test]
    fn find_text_flow() {
        let s = sheet();
        let (found, _) = s
            .find_text(
                "Origin",
                "SFO",
                StrMatchKind::Exact,
                false,
                &["FlightDate"],
                None,
            )
            .unwrap();
        assert!(found.matches_total > 0);
        assert!(found.first.is_some());
    }

    #[test]
    fn udf_column_then_chart() {
        let s = sheet();
        let with_speed = s.with_column("Speed", "Speed").unwrap();
        let (chart, _, _) = with_speed.histogram_with_cdf("Speed", Some(10)).unwrap();
        assert_eq!(chart.heights_px.len(), 10);
    }

    #[test]
    fn moments_summary() {
        let s = sheet();
        let (m, _) = s.moments("Distance", 2).unwrap();
        assert!(m.present > 0);
        assert!(m.mean().unwrap() > 100.0);
        assert!(m.variance().unwrap() > 0.0);
    }

    #[test]
    fn pca_on_delay_columns() {
        let s = sheet();
        let (p, _) = s.pca(&["DepDelay", "ArrDelay", "Distance"], 1.0).unwrap();
        let corr = p.correlation().unwrap();
        // Departure and arrival delay are strongly correlated by design.
        assert!(corr.get(0, 1) > 0.5, "corr {}", corr.get(0, 1));
        let eig = p.principal_components().unwrap();
        assert!(eig.values[0] >= eig.values[1]);
    }

    #[test]
    fn preparation_results_are_cached() {
        let s = sheet();
        let _ = s.range_of("DepDelay").unwrap();
        let hits_before: u64 = (0..s.engine().cluster().num_workers())
            .map(|i| s.engine().cluster().worker(i).cache_hits())
            .sum();
        let _ = s.range_of("DepDelay").unwrap();
        let hits_after: u64 = (0..s.engine().cluster().num_workers())
            .map(|i| s.engine().cluster().worker(i).cache_hits())
            .sum();
        assert!(hits_after > hits_before, "second range served from cache");
    }

    #[test]
    fn trellis_renders_groups() {
        let s = sheet();
        let (grids, _) = s
            .trellis_heatmap("Carrier", "Distance", "AirTime", 4)
            .unwrap();
        assert_eq!(grids.len(), 4);
    }
}
