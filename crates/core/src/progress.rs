//! Progress reporting and cancellation.
//!
//! Paper §5.3: partial results flow to the UI as leaves complete; "Hillview
//! shows a progress bar that reflects the number of leafs that have
//! completed. Users can cancel the computation based on the partial results
//! they see." Cancellation "causes tree nodes to ... remove work for that
//! computation that was previously enqueued, and ignore requests for
//! micropartitions not yet started."

use bytes::Bytes;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Cooperative cancellation flag shared across the execution tree.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A token that is not cancelled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation (idempotent).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True once cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A partial result streamed to the client while a query runs.
///
/// Progress is measured in *work units* — one unit per selected row plus
/// one per micropartition — so a query over skewed partitions advances
/// smoothly as split sub-tasks complete, instead of jumping per partition.
#[derive(Debug, Clone)]
pub struct Partial {
    /// Fraction of work units completed, in `[0, 1]` (workers that have
    /// not reported yet contribute an estimated total).
    pub fraction: f64,
    /// Work units completed across reporting workers.
    pub work_done: u64,
    /// Work units total across reporting workers (0 until the first
    /// report arrives).
    pub work_total: u64,
    /// The partially merged summary, wire-encoded.
    pub summary: Bytes,
}

/// Callback invoked on each partial result (the "client web browser" side
/// of Fig. 1).
pub type PartialCallback = Arc<dyn Fn(&Partial) + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_clear_and_latches() {
        let t = CancellationToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancellationToken::new();
        let t2 = t.clone();
        t2.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn token_crosses_threads() {
        let t = CancellationToken::new();
        let t2 = t.clone();
        std::thread::spawn(move || t2.cancel()).join().unwrap();
        assert!(t.is_cancelled());
    }
}
