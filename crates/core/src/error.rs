//! Engine errors.

use crate::dataset::DatasetId;
use std::fmt;

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A sketch failed to run (bad column, bad config).
    Sketch(String),
    /// Wire (de)serialization failed — a corrupt frame.
    Wire(String),
    /// A worker does not hold the requested dataset (soft state evicted or
    /// worker restarted). The root recovers by replaying the redo log.
    DatasetMissing {
        /// Worker reporting the miss.
        worker: usize,
        /// The dataset it lacks.
        dataset: DatasetId,
    },
    /// A worker is down (fault injection or crash).
    WorkerDown(usize),
    /// The query was cancelled by the user.
    Cancelled,
    /// A data source failed to load.
    Source(String),
    /// The redo log has no entry for a dataset (nothing to replay).
    UnknownDataset(DatasetId),
    /// A named data source or UDF is not registered.
    Unregistered(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sketch(m) => write!(f, "sketch error: {m}"),
            EngineError::Wire(m) => write!(f, "wire error: {m}"),
            EngineError::DatasetMissing { worker, dataset } => {
                write!(f, "worker {worker} is missing dataset {dataset:?}")
            }
            EngineError::WorkerDown(w) => write!(f, "worker {w} is down"),
            EngineError::Cancelled => write!(f, "query cancelled"),
            EngineError::Source(m) => write!(f, "data source error: {m}"),
            EngineError::UnknownDataset(d) => write!(f, "no redo-log entry for dataset {d:?}"),
            EngineError::Unregistered(n) => write!(f, "not registered: {n}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<hillview_sketch::SketchError> for EngineError {
    fn from(e: hillview_sketch::SketchError) -> Self {
        EngineError::Sketch(e.to_string())
    }
}

impl From<hillview_net::Error> for EngineError {
    fn from(e: hillview_net::Error) -> Self {
        EngineError::Wire(e.to_string())
    }
}

impl From<hillview_columnar::Error> for EngineError {
    fn from(e: hillview_columnar::Error) -> Self {
        EngineError::Sketch(e.to_string())
    }
}

/// Result alias using [`EngineError`].
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_worker_and_dataset() {
        let e = EngineError::DatasetMissing {
            worker: 3,
            dataset: DatasetId(7),
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('7'));
    }

    #[test]
    fn conversions() {
        let e: EngineError = hillview_sketch::SketchError::BadConfig("x".into()).into();
        assert!(matches!(e, EngineError::Sketch(_)));
        let e: EngineError = hillview_net::Error::BadUtf8.into();
        assert!(matches!(e, EngineError::Wire(_)));
    }
}
