//! Engine errors.

use crate::dataset::DatasetId;
use std::fmt;
use std::time::Duration;

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A sketch failed to run (bad column, bad config).
    Sketch(String),
    /// Wire (de)serialization failed — a corrupt frame.
    Wire(String),
    /// A worker does not hold the requested dataset (soft state evicted or
    /// worker restarted). The root recovers by replaying the redo log.
    DatasetMissing {
        /// Worker reporting the miss.
        worker: usize,
        /// The dataset it lacks.
        dataset: DatasetId,
    },
    /// A worker is down (fault injection, crash, or heartbeat loss).
    WorkerDown(usize),
    /// The query was cancelled by the user.
    Cancelled,
    /// A data source failed to load.
    Source(String),
    /// The redo log has no entry for a dataset (nothing to replay).
    UnknownDataset(DatasetId),
    /// A named data source or UDF is not registered.
    Unregistered(String),
    /// A worker-side task (a leaf summarize or a dataset operation)
    /// panicked. The panic is isolated to the task — the pool thread, the
    /// worker, and the process all survive — and retrying is sound: leaf
    /// execution has no side effects and dataset ops are idempotent.
    LeafPanicked {
        /// Worker whose task panicked.
        worker: usize,
        /// The panic message.
        message: String,
    },
    /// The query exceeded its [`QueryOptions::deadline`](crate::cluster::QueryOptions::deadline)
    /// (`crate::cluster::QueryOptions::deadline`): a worker went silent or
    /// stragglers kept the tree from finishing in time.
    DeadlineExceeded {
        /// How long the query had run when the deadline fired.
        elapsed: Duration,
    },
    /// The retry budget ([`RetryPolicy`](crate::engine::RetryPolicy)) was
    /// exhausted without a successful attempt; carries the final failure.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// The last error observed.
        last: Box<EngineError>,
    },
    /// An engine invariant was violated (a "can't happen" state reached
    /// without panicking). Carries a description for the operator; never
    /// retryable, because the same broken state would be observed again.
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sketch(m) => write!(f, "sketch error: {m}"),
            EngineError::Wire(m) => write!(f, "wire error: {m}"),
            EngineError::DatasetMissing { worker, dataset } => {
                write!(f, "worker {worker} is missing dataset {dataset:?}")
            }
            EngineError::WorkerDown(w) => write!(f, "worker {w} is down"),
            EngineError::Cancelled => write!(f, "query cancelled"),
            EngineError::Source(m) => write!(f, "data source error: {m}"),
            EngineError::UnknownDataset(d) => write!(f, "no redo-log entry for dataset {d:?}"),
            EngineError::Unregistered(n) => write!(f, "not registered: {n}"),
            EngineError::LeafPanicked { worker, message } => {
                write!(f, "task panicked on worker {worker}: {message}")
            }
            EngineError::DeadlineExceeded { elapsed } => {
                write!(f, "query deadline exceeded after {elapsed:?}")
            }
            EngineError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
            EngineError::Internal(m) => write!(f, "internal engine invariant violated: {m}"),
        }
    }
}

impl EngineError {
    /// True for failures that a bounded retry can plausibly heal:
    /// transient worker/infrastructure faults, as opposed to deterministic
    /// query errors (bad column, cancelled, unknown dataset) that would
    /// fail identically on every attempt.
    ///
    /// Deliberately an exhaustive match with no wildcard arm, enforced by
    /// `hillview-lint` (`error-classified`): adding a variant without
    /// deciding its retry class is a compile error, not a silent default.
    pub fn is_retryable(&self) -> bool {
        match self {
            // Transient: soft state can be replayed, workers restart, and
            // corrupt frames / isolated task panics do not repeat
            // deterministically.
            EngineError::DatasetMissing { .. } => true,
            EngineError::WorkerDown(_) => true,
            EngineError::LeafPanicked { .. } => true,
            EngineError::Wire(_) => true,
            // Deterministic: the same query would fail the same way.
            EngineError::Sketch(_) => false,
            EngineError::Cancelled => false,
            EngineError::Source(_) => false,
            EngineError::UnknownDataset(_) => false,
            EngineError::Unregistered(_) => false,
            // Budget errors: retrying a deadline or an exhausted retry loop
            // inside another retry loop would multiply the budget.
            EngineError::DeadlineExceeded { .. } => false,
            EngineError::RetriesExhausted { .. } => false,
            // Broken invariants reproduce until the process is replaced.
            EngineError::Internal(_) => false,
        }
    }
}

impl std::error::Error for EngineError {}

impl From<hillview_sketch::SketchError> for EngineError {
    fn from(e: hillview_sketch::SketchError) -> Self {
        EngineError::Sketch(e.to_string())
    }
}

impl From<hillview_net::Error> for EngineError {
    fn from(e: hillview_net::Error) -> Self {
        EngineError::Wire(e.to_string())
    }
}

impl From<hillview_columnar::Error> for EngineError {
    fn from(e: hillview_columnar::Error) -> Self {
        EngineError::Sketch(e.to_string())
    }
}

/// Result alias using [`EngineError`].
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_worker_and_dataset() {
        let e = EngineError::DatasetMissing {
            worker: 3,
            dataset: DatasetId(7),
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('7'));
    }

    #[test]
    fn conversions() {
        let e: EngineError = hillview_sketch::SketchError::BadConfig("x".into()).into();
        assert!(matches!(e, EngineError::Sketch(_)));
        let e: EngineError = hillview_net::Error::BadUtf8.into();
        assert!(matches!(e, EngineError::Wire(_)));
    }

    #[test]
    fn retryability_split() {
        assert!(EngineError::WorkerDown(0).is_retryable());
        assert!(EngineError::LeafPanicked {
            worker: 1,
            message: "x".into()
        }
        .is_retryable());
        assert!(EngineError::DatasetMissing {
            worker: 0,
            dataset: DatasetId(1)
        }
        .is_retryable());
        assert!(!EngineError::Cancelled.is_retryable());
        assert!(!EngineError::Sketch("bad column".into()).is_retryable());
        assert!(!EngineError::DeadlineExceeded {
            elapsed: Duration::from_secs(1)
        }
        .is_retryable());
        assert!(!EngineError::Internal("channel sender dropped".into()).is_retryable());
    }
}
