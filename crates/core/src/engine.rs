//! The root-node engine: dataset management, query execution, recovery.
//!
//! [`Engine`] wraps a [`Cluster`] with the root's durable state — the redo
//! log and dataset-id allocator — and implements the paper's lazy recovery
//! protocol (§5.7): when a worker reports a missing dataset, the root
//! replays the lineage chain *on that worker only* and retries; when a
//! worker is down, it is restarted stateless (§5.8) and the same replay
//! path repopulates it on demand.

use crate::cluster::{Cluster, QueryOptions, QueryOutcome};
use crate::dataset::{DatasetId, Lineage, SourceSpec};
use crate::erased::{erase, ErasedSketch};
use crate::error::{EngineError, EngineResult};
use crate::redo::RedoLog;
use hillview_columnar::{Predicate, SelectivityEstimate};
use hillview_net::Wire;
use hillview_sketch::Sketch;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Bounded retry with exponential backoff, replacing the old ad-hoc
/// fixed-count recovery loops. An attempt is retried only when its error
/// [`EngineError::is_retryable`] — transient infrastructure faults — and
/// the budget is hard: once exhausted the caller gets
/// [`EngineError::RetriesExhausted`] wrapping the final failure (or, under
/// [`QueryOptions::allow_degraded`], a coverage-labelled partial result).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts, including the first. `1` means never retry.
    pub attempts: u32,
    /// Sleep before the first retry; doubles on each subsequent retry.
    pub base_backoff: Duration,
    /// Cap on the per-retry sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 8,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (tests observing raw failures).
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            ..Default::default()
        }
    }

    /// Backoff before 1-based retry number `retry`:
    /// `base_backoff * 2^(retry-1)`, capped at `max_backoff`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = retry.saturating_sub(1).min(20);
        self.base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff)
    }
}

/// A filter derivation whose membership has not been materialized: queries
/// against it compile the predicate into the sketch's own block pass.
struct PendingFilter {
    parent: DatasetId,
    predicate: Predicate,
    /// Queries served so far; from the second query on, the planner
    /// weighs fused per-query cost against one-time materialization
    /// ([`Engine::plan_query`]).
    queries: u32,
    /// Zone-map + probe selectivity estimate for the *composed* chain,
    /// computed on the second query and reused for every later promotion
    /// decision — tagged with the root dataset's version fingerprint at
    /// estimation time, so a reload under the same id (new snapshot, new
    /// lineage version) invalidates it instead of steering the planner
    /// with statistics of data that no longer exists.
    estimate: Option<(u64, SelectivityEstimate)>,
}

/// The root node: cluster + redo log + recovery.
pub struct Engine {
    cluster: Arc<Cluster>,
    log: RedoLog,
    next_id: AtomicU64,
    /// Lazily-derived filtered datasets ([`Engine::filter_lazy`]): the id
    /// exists only in the redo log and this table until promoted.
    pending_filters: parking_lot::Mutex<HashMap<DatasetId, PendingFilter>>,
    /// Restart dead workers automatically during queries (on by default;
    /// tests can disable it to observe raw failures).
    pub auto_recover: bool,
    /// Retry budget applied to every recovery loop (queries and
    /// dataset-producing operations).
    pub retry: RetryPolicy,
}

impl Engine {
    /// Wrap a cluster.
    pub fn new(cluster: Arc<Cluster>) -> Self {
        Engine {
            cluster,
            log: RedoLog::new(),
            next_id: AtomicU64::new(1),
            pending_filters: parking_lot::Mutex::new(HashMap::new()),
            auto_recover: true,
            retry: RetryPolicy::default(),
        }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The redo log (read-only access for inspection).
    pub fn redo_log(&self) -> &RedoLog {
        &self.log
    }

    fn fresh_id(&self) -> DatasetId {
        DatasetId(self.next_id.fetch_add(1, Ordering::SeqCst))
    }

    /// Load a dataset from a registered source on every worker; logged.
    pub fn load(&self, source: &str, snapshot: u64) -> EngineResult<DatasetId> {
        let id = self.fresh_id();
        let spec = SourceSpec {
            source: Arc::from(source),
            snapshot,
        };
        self.log.record(id, Lineage::Loaded { spec: spec.clone() });
        self.cluster.load(id, &spec)?;
        Ok(id)
    }

    /// Re-load a root dataset *in place* at a new snapshot: the id keeps
    /// naming "this source", but its contents — and its lineage-derived
    /// content version — change. The redo-log entry is rewritten so
    /// replay reconstructs the new snapshot, every *derived* dataset
    /// (filtered/mapped descendants) is evicted cluster-wide so lazy
    /// replay rebuilds it from the new data, and cached planning
    /// artifacts keyed by version fingerprint (pending-filter
    /// [`SelectivityEstimate`]s) invalidate themselves on next use.
    /// Errors on derived datasets: reload the chain's root instead.
    pub fn reload(&self, dataset: DatasetId, snapshot: u64) -> EngineResult<()> {
        let spec = match self.log.lineage(dataset) {
            Some(Lineage::Loaded { spec }) => spec,
            Some(_) => {
                return Err(EngineError::Source(format!(
                    "dataset {dataset} is derived; reload its root load instead"
                )))
            }
            None => return Err(EngineError::UnknownDataset(dataset)),
        };
        let spec = SourceSpec {
            source: spec.source,
            snapshot,
        };
        self.log
            .record(dataset, Lineage::Loaded { spec: spec.clone() });
        // Descendants materialized from the old snapshot are stale:
        // evict them everywhere so the ordinary missing-dataset replay
        // path rebuilds them against the new contents on demand.
        for (id, _) in self.log.all() {
            if id != dataset && self.log.chain(id).iter().any(|(c, _)| *c == dataset) {
                for w in 0..self.cluster.num_workers() {
                    self.cluster.worker(w).evict(id);
                }
            }
        }
        self.with_replay_on_all(|| self.cluster.load(dataset, &spec))
    }

    /// Derive a filtered dataset; logged (paper §5.6 "Selection"). The
    /// narrowed membership is materialized on every worker immediately, so
    /// repeat queries reuse it through the two-pass path. For a filter that
    /// will likely be queried once (brushing a chart region), prefer
    /// [`Engine::filter_lazy`] or [`Engine::run_filtered`].
    pub fn filter(&self, parent: DatasetId, predicate: Predicate) -> EngineResult<DatasetId> {
        self.ensure_materialized(parent)?;
        let id = self.fresh_id();
        self.log.record(
            id,
            Lineage::Filtered {
                parent,
                predicate: predicate.clone(),
            },
        );
        self.with_replay_on_all(|| self.cluster.filter(id, parent, &predicate))?;
        Ok(id)
    }

    /// Derive a filtered dataset *lazily*: nothing is materialized now.
    /// The first query against the returned id runs fused — the predicate
    /// chain down to the nearest materialized ancestor is compiled into
    /// the sketch's block pass, one decode per frame, no membership set.
    /// From the second query on, a cost model built from zone maps and a
    /// bounded probe ([`Cluster::estimate_filter`]) decides when to
    /// promote the chain to materialized membership: promotion happens
    /// once the projected fused overhead across the queries seen so far
    /// exceeds the one-time materialization pass, so selective predicates
    /// under sustained interaction get the cached two-pass path while
    /// non-selective ones keep fusing forever.
    pub fn filter_lazy(&self, parent: DatasetId, predicate: Predicate) -> DatasetId {
        let id = self.fresh_id();
        // Logged like an eager filter: lineage replay materializes the
        // chain identically if a worker ever needs it reconstructed.
        self.log.record(
            id,
            Lineage::Filtered {
                parent,
                predicate: predicate.clone(),
            },
        );
        self.pending_filters.lock().insert(
            id,
            PendingFilter {
                parent,
                predicate,
                queries: 0,
                estimate: None,
            },
        );
        id
    }

    /// Derive a mapped dataset with a UDF column; logged (§5.6).
    pub fn map(&self, parent: DatasetId, udf: &str, new_column: &str) -> EngineResult<DatasetId> {
        self.ensure_materialized(parent)?;
        let id = self.fresh_id();
        self.log.record(
            id,
            Lineage::Mapped {
                parent,
                udf: Arc::from(udf),
                new_column: Arc::from(new_column),
            },
        );
        self.with_replay_on_all(|| self.cluster.map(id, parent, udf, new_column))?;
        Ok(id)
    }

    /// Materialize the pending-filter chain ending at `dataset` (ancestors
    /// first — each link's parent must exist before the link itself),
    /// switching the ids to the cached-membership two-pass path. No-op for
    /// datasets that were never lazily derived.
    fn ensure_materialized(&self, dataset: DatasetId) -> EngineResult<()> {
        // Snapshot the chain under the lock, run cluster ops outside it
        // (they replay and retry, and can take arbitrarily long).
        let chain: Vec<(DatasetId, DatasetId, Predicate)> = {
            let pending = self.pending_filters.lock();
            let mut chain = Vec::new();
            let mut cur = dataset;
            while let Some(pf) = pending.get(&cur) {
                chain.push((cur, pf.parent, pf.predicate.clone()));
                cur = pf.parent;
            }
            chain
        };
        for (id, parent, pred) in chain.into_iter().rev() {
            self.with_replay_on_all(|| self.cluster.filter(id, parent, &pred))?;
            self.pending_filters.lock().remove(&id);
        }
        Ok(())
    }

    /// Resolve `dataset` into an execution plan: the dataset to run the
    /// tree against plus an optional fused predicate. A pending lazy
    /// filter composes its predicate chain (ancestor-first AND) down to
    /// the nearest materialized dataset — cached-membership reuse: an
    /// already-promoted ancestor anchors the chain, only the lazy suffix
    /// fuses. From the second query on, a cost model decides whether to
    /// keep fusing or promote the chain to materialized membership.
    ///
    /// The model, in units of one full scan of the parent: a fused query
    /// reads every block the predicate cannot prove all-false, so it
    /// costs `f = 1 − skip_fraction` *per query*. Materializing costs one
    /// full pass *once*, after which each query touches only selected
    /// rows: `s = selectivity` per query. With `q` queries so far, fusing
    /// has spent `q·f` while the materialized plan would have spent
    /// `f + q·s` (the first query always fuses); promote when the gap
    /// `q·(f − s)` exceeds the materialization pass `f`. Non-selective
    /// predicates (`f ≈ s`) never promote — materializing them buys
    /// nothing per query — and an empty estimate (`blocks == 0`, e.g. all
    /// workers dead) conservatively keeps fusing.
    fn plan_query(&self, dataset: DatasetId) -> EngineResult<(DatasetId, Option<Predicate>)> {
        let queries = {
            let mut pending = self.pending_filters.lock();
            match pending.get_mut(&dataset) {
                None => return Ok((dataset, None)),
                Some(pf) => {
                    pf.queries += 1;
                    pf.queries
                }
            }
        };
        let (root, composed) = {
            let pending = self.pending_filters.lock();
            let mut preds = Vec::new();
            let mut cur = dataset;
            while let Some(pf) = pending.get(&cur) {
                preds.push(pf.predicate.clone());
                cur = pf.parent;
            }
            // Ancestor-first AND: the coarse (usually more selective in
            // sequence) parent predicate short-circuits before child
            // terms. Empty only if another thread promoted the chain
            // between locks.
            match preds.into_iter().rev().reduce(|a, b| a.and(b)) {
                Some(p) => (cur, p),
                None => return Ok((dataset, None)),
            }
        };
        if queries >= 2 {
            // Bind the cached estimate before matching: a guard temporary
            // in the scrutinee would outlive the re-lock in the None arm.
            // Only an estimate taken at the root's *current* version
            // fingerprint counts — a reload changed the data under the
            // same id, so stale statistics must re-probe, not steer.
            let fingerprint = self.cluster.dataset_version_fingerprint(root);
            let cached = self
                .pending_filters
                .lock()
                .get(&dataset)
                .and_then(|pf| pf.estimate)
                .filter(|(v, _)| *v == fingerprint)
                .map(|(_, e)| e);
            let est = match cached {
                Some(e) => e,
                None => {
                    // Estimate outside the lock (it probes real blocks),
                    // then store it back; a racing query at worst
                    // re-estimates the same chain.
                    let e = self.cluster.estimate_filter(root, &composed);
                    if let Some(pf) = self.pending_filters.lock().get_mut(&dataset) {
                        pf.estimate = Some((fingerprint, e));
                    }
                    e
                }
            };
            let fused_cost = 1.0 - est.skip_fraction();
            let per_query = est.selectivity();
            if (queries as f64) * (fused_cost - per_query) > fused_cost {
                self.ensure_materialized(dataset)?;
                return Ok((dataset, None));
            }
        }
        Ok((root, Some(composed)))
    }

    /// Run a dataset-producing op, replaying lineage on misses, within the
    /// [`RetryPolicy`] budget. Dataset ops are idempotent (a re-run
    /// overwrites the same dataset id with identical contents), so
    /// retrying any transient failure — including a replay that itself
    /// hits a fault — is sound.
    fn with_replay_on_all(&self, f: impl Fn() -> EngineResult<()>) -> EngineResult<()> {
        let attempts = self.retry.attempts.max(1);
        let mut last: Option<EngineError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.retry.backoff(attempt));
            }
            let e = match f() {
                Ok(()) => return Ok(()),
                Err(e) => e,
            };
            match &e {
                EngineError::DatasetMissing { worker, dataset } => {
                    let (worker, dataset) = (*worker, *dataset);
                    last = Some(e);
                    if let Err(re) = self.replay(worker, dataset) {
                        if !re.is_retryable() {
                            return Err(re);
                        }
                        last = Some(re);
                    }
                }
                EngineError::WorkerDown(w) if self.auto_recover => {
                    self.cluster.worker(*w).restart();
                    last = Some(e);
                }
                // Without auto-restart a dead worker stays dead: the
                // failure is deterministic, so surface it raw.
                EngineError::WorkerDown(_) => return Err(e),
                _ if e.is_retryable() => last = Some(e),
                _ => return Err(e),
            }
        }
        Err(EngineError::RetriesExhausted {
            attempts,
            last: Box::new(
                last.unwrap_or_else(|| EngineError::Sketch("replay did not converge".into())),
            ),
        })
    }

    /// Reconstruct `dataset` on `worker` by replaying its lineage chain
    /// (paper §5.7: "This may require re-executing other queries, that
    /// produced the source objects; the recursion ends when data is read
    /// from disk").
    pub fn replay(&self, worker: usize, dataset: DatasetId) -> EngineResult<()> {
        let chain = self.log.chain(dataset);
        if chain.is_empty() {
            return Err(EngineError::UnknownDataset(dataset));
        }
        let w = self.cluster.worker(worker);
        if !w.is_alive() {
            if self.auto_recover {
                w.restart();
            } else {
                return Err(EngineError::WorkerDown(worker));
            }
        }
        for (id, lineage) in chain {
            if w.has_dataset(id) {
                continue;
            }
            match lineage {
                Lineage::Loaded { spec } => self.cluster.load_on(worker, id, &spec)?,
                Lineage::Filtered { parent, predicate } => {
                    self.cluster.filter_on(worker, id, parent, &predicate)?
                }
                Lineage::Mapped {
                    parent,
                    udf,
                    new_column,
                } => self.cluster.map_on(worker, id, parent, &udf, &new_column)?,
            }
        }
        Ok(())
    }

    /// Run a typed sketch with automatic recovery; returns the summary and
    /// the query's traffic/latency stats.
    pub fn run<S: Sketch>(
        &self,
        dataset: DatasetId,
        sketch: S,
        opts: &QueryOptions,
    ) -> EngineResult<(S::Summary, QueryOutcome)> {
        let erased = erase(sketch);
        let outcome = self.run_erased(dataset, &erased, opts)?;
        let summary = S::Summary::from_bytes(outcome.bytes.clone())?;
        Ok((summary, outcome))
    }

    /// Run a typed sketch over `dataset` narrowed by `predicate`, without
    /// deriving a dataset: the one-shot "filter + sketch" query. The
    /// predicate compiles into the sketch's block pass at every leaf (one
    /// decode per frame, zone maps pruning both stages); no membership is
    /// materialized and no dataset id is allocated.
    pub fn run_filtered<S: Sketch>(
        &self,
        dataset: DatasetId,
        predicate: Predicate,
        sketch: S,
        opts: &QueryOptions,
    ) -> EngineResult<(S::Summary, QueryOutcome)> {
        let erased = erase(sketch);
        let outcome = self.run_filtered_erased(dataset, predicate, &erased, opts)?;
        let summary = S::Summary::from_bytes(outcome.bytes.clone())?;
        Ok((summary, outcome))
    }

    /// Erased form of [`Engine::run_filtered`]. If `dataset` is itself a
    /// pending lazy filter, its chain composes under the ad-hoc predicate.
    pub fn run_filtered_erased(
        &self,
        dataset: DatasetId,
        predicate: Predicate,
        sketch: &Arc<dyn ErasedSketch>,
        opts: &QueryOptions,
    ) -> EngineResult<QueryOutcome> {
        let (root, base) = self.plan_query(dataset)?;
        let fused = match base {
            Some(b) => b.and(predicate),
            None => predicate,
        };
        self.run_planned(root, Some(fused), sketch, opts)
    }

    /// Run an erased sketch with automatic recovery. The reported duration
    /// covers the whole user-visible wait, including any lineage replays
    /// (cold reads show up here, Figure 6).
    ///
    /// Attempts are bounded by [`RetryPolicy`]; only
    /// [retryable](EngineError::is_retryable) failures are retried, and an
    /// [`QueryOptions::deadline`] spans *all* attempts, not each one. When
    /// the budget runs out, [`QueryOptions::allow_degraded`] permits one
    /// final attempt that excludes failed workers and returns the
    /// survivors' merge labelled with [`QueryOutcome::coverage`]` < 1`;
    /// otherwise the caller gets [`EngineError::RetriesExhausted`].
    pub fn run_erased(
        &self,
        dataset: DatasetId,
        sketch: &Arc<dyn ErasedSketch>,
        opts: &QueryOptions,
    ) -> EngineResult<QueryOutcome> {
        let (root, fused) = self.plan_query(dataset)?;
        self.run_planned(root, fused, sketch, opts)
    }

    /// The retry/recovery loop shared by every query shape: run `sketch`
    /// over `root` (a materialized dataset), optionally narrowed by a
    /// fused predicate, replaying lineage and restarting workers per the
    /// [`RetryPolicy`].
    fn run_planned(
        &self,
        root: DatasetId,
        fused: Option<Predicate>,
        sketch: &Arc<dyn ErasedSketch>,
        opts: &QueryOptions,
    ) -> EngineResult<QueryOutcome> {
        let started = std::time::Instant::now();
        let attempts = self.retry.attempts.max(1);
        let mut last: Option<EngineError> = None;
        // Remaining deadline for the next attempt, or an error once spent.
        let remaining = |started: std::time::Instant| -> EngineResult<Option<Duration>> {
            match opts.deadline {
                None => Ok(None),
                Some(d) => d.checked_sub(started.elapsed()).map(Some).ok_or(
                    EngineError::DeadlineExceeded {
                        elapsed: started.elapsed(),
                    },
                ),
            }
        };
        let finish = |mut outcome: QueryOutcome| {
            let replay_overhead = started.elapsed().saturating_sub(outcome.duration);
            outcome.first_partial = outcome.first_partial.map(|fp| fp + replay_overhead);
            outcome.duration = started.elapsed();
            outcome
        };
        for attempt in 0..attempts {
            // A recovery retry must not inherit a cancel flag set by the
            // failure path of the previous attempt.
            if opts.cancel.is_cancelled() {
                return Err(EngineError::Cancelled);
            }
            if attempt > 0 {
                std::thread::sleep(self.retry.backoff(attempt));
            }
            let attempt_opts = QueryOptions {
                seed: opts.seed,
                cancel: opts.cancel.clone(),
                on_partial: opts.on_partial.clone(),
                cache: opts.cache,
                deadline: remaining(started)?,
                allow_degraded: opts.allow_degraded,
                tolerate_failures: false,
            };
            let e =
                match self
                    .cluster
                    .run_erased_filtered(root, fused.as_ref(), sketch, &attempt_opts)
                {
                    Ok(outcome) => return Ok(finish(outcome)),
                    Err(e) => e,
                };
            match &e {
                EngineError::DatasetMissing { worker, dataset: d } => {
                    let (worker, d) = (*worker, *d);
                    last = Some(e);
                    // A replay can itself hit a fault (worker killed
                    // mid-replay); transient replay failures consume an
                    // attempt instead of escaping the retry loop raw.
                    if let Err(re) = self.replay(worker, d) {
                        if !re.is_retryable() {
                            return Err(re);
                        }
                        last = Some(re);
                    }
                }
                EngineError::WorkerDown(w) if self.auto_recover => {
                    let w = *w;
                    last = Some(e);
                    self.cluster.worker(w).restart();
                    if let Err(re) = self.replay(w, root) {
                        if !re.is_retryable() {
                            return Err(re);
                        }
                        last = Some(re);
                    }
                }
                // Without auto-restart a dead worker stays dead: the
                // failure is deterministic, so surface it raw.
                EngineError::WorkerDown(_) => return Err(e),
                _ if e.is_retryable() => last = Some(e),
                _ => return Err(e),
            }
        }
        let last =
            last.unwrap_or_else(|| EngineError::Sketch("query recovery did not converge".into()));
        // Opt-in graceful degradation: one last tree that tolerates
        // worker failures and folds the survivors, honestly labelled.
        if opts.allow_degraded {
            let attempt_opts = QueryOptions {
                seed: opts.seed,
                cancel: opts.cancel.clone(),
                on_partial: opts.on_partial.clone(),
                // Never cache on the degraded path: per-worker shard
                // summaries of *survivors* would be sound, but a shared
                // cache key must only ever hold complete folds.
                cache: false,
                deadline: remaining(started)?,
                allow_degraded: true,
                tolerate_failures: true,
            };
            if let Ok(outcome) =
                self.cluster
                    .run_erased_filtered(root, fused.as_ref(), sketch, &attempt_opts)
            {
                return Ok(finish(outcome));
            }
        }
        Err(EngineError::RetriesExhausted {
            attempts,
            last: Box::new(last),
        })
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Engine({:?}, {} logged ops)",
            self.cluster,
            self.log.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::dataset::{FnSource, SourceRegistry};
    use hillview_columnar::column::{Column, I64Column};
    use hillview_columnar::udf::UdfRegistry;
    use hillview_columnar::{ColumnKind, Table};
    use hillview_sketch::count::CountSketch;
    use hillview_sketch::histogram::HistogramSketch;
    use hillview_sketch::BucketSpec;

    fn engine() -> Engine {
        let mut sources = SourceRegistry::new();
        sources.register(Arc::new(FnSource::new("nums", |w, _n, _mp, snap| {
            let t = Table::builder()
                .column(
                    "X",
                    ColumnKind::Int,
                    Column::Int(I64Column::from_options(
                        (0..5_000).map(|i| Some((i + w as i64 * 5_000 + snap as i64) % 100)),
                    )),
                )
                .build()
                .unwrap();
            Ok(vec![t])
        })));
        let mut udfs = UdfRegistry::with_builtins();
        udfs.register_sum("XX", "X", "X");
        let cluster = Cluster::new(ClusterConfig::test(), sources, udfs);
        Engine::new(cluster)
    }

    #[test]
    fn load_filter_map_pipeline() {
        let e = engine();
        let base = e.load("nums", 0).unwrap();
        assert_eq!(e.cluster().dataset_rows(base), 10_000);
        let small = e.filter(base, Predicate::range("X", 0.0, 10.0)).unwrap();
        assert_eq!(e.cluster().dataset_rows(small), 1_000);
        let mapped = e.map(small, "XX", "Doubled").unwrap();
        let (sum, _) = e
            .run(
                mapped,
                CountSketch::of_column("Doubled"),
                &QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(sum.rows, 1_000);
        assert_eq!(e.redo_log().len(), 3);
    }

    #[test]
    fn eviction_recovers_transparently() {
        let e = engine();
        let base = e.load("nums", 0).unwrap();
        let filtered = e.filter(base, Predicate::range("X", 0.0, 50.0)).unwrap();
        // Evict everything everywhere (cache expiry / memory pressure).
        e.cluster().evict_all();
        let (sum, _) = e
            .run(filtered, CountSketch::rows(), &QueryOptions::default())
            .unwrap();
        assert_eq!(sum.rows, 5_000, "replay reconstructed filter lineage");
    }

    #[test]
    fn worker_crash_recovers_transparently() {
        let e = engine();
        let base = e.load("nums", 0).unwrap();
        e.cluster().worker(1).kill();
        let (sum, _) = e
            .run(base, CountSketch::rows(), &QueryOptions::default())
            .unwrap();
        assert_eq!(sum.rows, 10_000, "restarted worker reloaded its shard");
    }

    #[test]
    fn crash_recovery_disabled_surfaces_error() {
        let mut e = engine();
        e.auto_recover = false;
        let base = e.load("nums", 0).unwrap();
        e.cluster().worker(0).kill();
        let err = e
            .run(base, CountSketch::rows(), &QueryOptions::default())
            .unwrap_err();
        assert_eq!(err, EngineError::WorkerDown(0));
    }

    #[test]
    fn recovery_reconverges_to_identical_results() {
        // The core §5.8 determinism claim: a replayed (sampled) query gives
        // the same bytes as before the crash because seeds are preserved.
        let e = engine();
        let base = e.load("nums", 0).unwrap();
        let sk = HistogramSketch::sampled("X", BucketSpec::numeric(0.0, 100.0, 10), 0.3);
        let opts = QueryOptions {
            seed: 1234,
            ..Default::default()
        };
        let (before, _) = e.run(base, sk.clone(), &opts).unwrap();
        e.cluster().worker(0).kill();
        let (after, _) = e.run(base, sk, &opts).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn partial_eviction_replays_only_missing_worker() {
        let e = engine();
        let base = e.load("nums", 0).unwrap();
        let w0_loads_before = e.cluster().worker(0).rows_loaded();
        e.cluster().worker(1).evict_all();
        let (sum, _) = e
            .run(base, CountSketch::rows(), &QueryOptions::default())
            .unwrap();
        assert_eq!(sum.rows, 10_000);
        assert_eq!(
            e.cluster().worker(0).rows_loaded(),
            w0_loads_before,
            "healthy worker did not reload"
        );
    }

    #[test]
    fn unknown_dataset_errors() {
        let e = engine();
        let err = e
            .run(DatasetId(77), CountSketch::rows(), &QueryOptions::default())
            .unwrap_err();
        assert_eq!(err, EngineError::UnknownDataset(DatasetId(77)));
    }

    #[test]
    fn bounded_retry_wraps_persistent_failure() {
        use crate::fault::{FaultAction, FaultPlan, FaultSite};
        let mut e = engine();
        e.retry = RetryPolicy {
            attempts: 3,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(1),
        };
        let base = e.load("nums", 0).unwrap();
        // Kill worker 0 at every operation boundary, forever: recovery
        // (restart + replay) re-dies each attempt, so the budget — not an
        // unbounded loop — must end the query, with the cause preserved.
        e.cluster()
            .arm_faults(FaultPlan::scripted((0..10_000).map(|i| {
                (
                    FaultSite::WorkerOp {
                        worker: 0,
                        index: i,
                    },
                    FaultAction::Kill,
                )
            })));
        let err = e
            .run(base, CountSketch::rows(), &QueryOptions::default())
            .unwrap_err();
        match err {
            EngineError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(last.is_retryable(), "wrapped cause was transient: {last}");
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
        // Disarm and the same engine heals transparently.
        e.cluster().disarm_faults();
        let (sum, _) = e
            .run(base, CountSketch::rows(), &QueryOptions::default())
            .unwrap();
        assert_eq!(sum.rows, 10_000);
    }

    #[test]
    fn degraded_query_folds_survivors_with_honest_coverage() {
        use crate::fault::{FaultAction, FaultPlan, FaultSite};
        let mut e = engine();
        e.retry = RetryPolicy {
            attempts: 2,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(1),
        };
        let base = e.load("nums", 0).unwrap();
        // Worker 1 dies at every operation boundary; worker 0 is healthy.
        e.cluster()
            .arm_faults(FaultPlan::scripted((0..10_000).map(|i| {
                (
                    FaultSite::WorkerOp {
                        worker: 1,
                        index: i,
                    },
                    FaultAction::Kill,
                )
            })));
        let opts = QueryOptions {
            allow_degraded: true,
            ..Default::default()
        };
        let (sum, outcome) = e.run(base, CountSketch::rows(), &opts).unwrap();
        assert_eq!(sum.rows, 5_000, "survivor's shard only");
        assert_eq!(outcome.failed_workers, vec![1]);
        assert!(
            outcome.coverage > 0.0 && outcome.coverage < 1.0,
            "degraded result labelled: coverage={}",
            outcome.coverage
        );
        // Without the opt-in, the same schedule is an error, not a
        // silently partial answer.
        let err = e
            .run(base, CountSketch::rows(), &QueryOptions::default())
            .unwrap_err();
        assert!(matches!(err, EngineError::RetriesExhausted { .. }), "{err}");
    }

    #[test]
    fn lazy_filter_fuses_first_query_then_promotes() {
        let e = engine();
        let base = e.load("nums", 0).unwrap();
        let lazy = e.filter_lazy(base, Predicate::range("X", 0.0, 10.0));
        // Nothing materialized: the id lives only in the redo log and the
        // pending table.
        assert!(!e.cluster().worker(0).has_dataset(lazy));
        assert_eq!(e.cluster().dataset_rows(lazy), 0);
        // First query runs fused against the parent — still no membership.
        let (sum, _) = e
            .run(lazy, CountSketch::rows(), &QueryOptions::default())
            .unwrap();
        assert_eq!(sum.rows, 1_000);
        assert!(
            !e.cluster().worker(0).has_dataset(lazy),
            "one-shot query stayed fused"
        );
        // The second query promotes the chain to materialized membership
        // (cached two-pass reuse), with the identical result.
        let (sum2, _) = e
            .run(lazy, CountSketch::rows(), &QueryOptions::default())
            .unwrap();
        assert_eq!(sum2.rows, 1_000);
        assert!(
            e.cluster().worker(0).has_dataset(lazy),
            "repeat interaction materialized the membership"
        );
        assert_eq!(e.cluster().dataset_rows(lazy), 1_000);
    }

    #[test]
    fn lazy_filter_chain_composes_down_to_materialized_ancestor() {
        let e = engine();
        let base = e.load("nums", 0).unwrap();
        let a = e.filter_lazy(base, Predicate::range("X", 0.0, 50.0));
        let b = e.filter_lazy(a, Predicate::range("X", 25.0, 100.0));
        let (sum, _) = e
            .run(b, CountSketch::rows(), &QueryOptions::default())
            .unwrap();
        assert_eq!(sum.rows, 2_500, "AND of both links: X in [25,50)");
        assert!(!e.cluster().worker(0).has_dataset(a));
        assert!(!e.cluster().worker(0).has_dataset(b));
        // Promotion materializes the whole chain, ancestors first.
        let (sum2, _) = e
            .run(b, CountSketch::rows(), &QueryOptions::default())
            .unwrap();
        assert_eq!(sum2.rows, 2_500);
        assert!(e.cluster().worker(0).has_dataset(a));
        assert!(e.cluster().worker(0).has_dataset(b));
    }

    #[test]
    fn reload_swaps_snapshot_in_place_and_invalidates_descendants() {
        let e = engine();
        let base = e.load("nums", 0).unwrap();
        let v0 = e.cluster().dataset_version_fingerprint(base);
        let filtered = e.filter(base, Predicate::range("X", 0.0, 10.0)).unwrap();
        assert_eq!(e.cluster().dataset_rows(filtered), 1_000);
        e.reload(base, 7).unwrap();
        assert_ne!(
            e.cluster().dataset_version_fingerprint(base),
            v0,
            "a new snapshot is new content, so the fingerprint must move"
        );
        assert!(
            !e.cluster().worker(0).has_dataset(filtered),
            "derived datasets built from the old snapshot must be evicted"
        );
        // The evicted descendant replays lazily against the new snapshot.
        let (sum, _) = e
            .run(filtered, CountSketch::rows(), &QueryOptions::default())
            .unwrap();
        assert_eq!(sum.rows, 1_000, "values stay mod 100, band still 10%");
        // Only root loads can reload.
        assert!(e.reload(filtered, 1).is_err());
        assert!(matches!(
            e.reload(DatasetId(999), 1),
            Err(EngineError::UnknownDataset(_))
        ));
    }

    #[test]
    fn reload_refreshes_cached_selectivity_estimate() {
        // A source whose selectivity flips with the snapshot: snapshot 0
        // puts every value inside the predicate band (non-selective — the
        // planner must never promote), snapshot 1 is a sorted ramp where
        // the band selects a sliver and zone maps skip almost everything
        // (strongly promotable).
        let mut sources = SourceRegistry::new();
        sources.register(Arc::new(FnSource::new("flip", |w, _n, _mp, snap| {
            let t = Table::builder()
                .column(
                    "X",
                    ColumnKind::Int,
                    Column::Int(I64Column::from_options((0..5_000).map(|i| {
                        Some(if snap == 0 {
                            i % 10
                        } else {
                            i + w as i64 * 5_000
                        })
                    }))),
                )
                .build()
                .unwrap();
            Ok(vec![t])
        })));
        let cluster = Cluster::new(ClusterConfig::test(), sources, UdfRegistry::with_builtins());
        let e = Engine::new(cluster);
        let base = e.load("flip", 0).unwrap();
        let lazy = e.filter_lazy(base, Predicate::range("X", 0.0, 10.0));
        for _ in 0..4 {
            let (sum, _) = e
                .run(lazy, CountSketch::rows(), &QueryOptions::default())
                .unwrap();
            assert_eq!(sum.rows, 10_000);
        }
        assert!(
            !e.cluster().worker(0).has_dataset(lazy),
            "non-selective predicate must keep fusing"
        );
        // Reload at the selective snapshot. The cached estimate was taken
        // at the old fingerprint, so the next query must re-probe — and
        // the fresh statistics promote immediately. A stale estimate
        // (f ≈ s ≈ 1) would keep fusing forever.
        e.reload(base, 1).unwrap();
        let (sum, _) = e
            .run(lazy, CountSketch::rows(), &QueryOptions::default())
            .unwrap();
        assert_eq!(sum.rows, 10, "sorted ramp: only X in [0,10) survives");
        assert!(
            e.cluster().worker(0).has_dataset(lazy),
            "refreshed estimate must promote the now-selective chain"
        );
    }

    #[test]
    fn one_shot_filtered_query_matches_materialized_path() {
        let e = engine();
        let base = e.load("nums", 0).unwrap();
        let pred = Predicate::range("X", 20.0, 40.0);
        let sk = HistogramSketch::streaming("X", BucketSpec::numeric(0.0, 100.0, 10));
        let ops_before = e.redo_log().len();
        let (fused, _) = e
            .run_filtered(base, pred.clone(), sk.clone(), &QueryOptions::default())
            .unwrap();
        assert_eq!(e.redo_log().len(), ops_before, "no dataset derived");
        let materialized = e.filter(base, pred).unwrap();
        let (two_pass, _) = e.run(materialized, sk, &QueryOptions::default()).unwrap();
        assert_eq!(fused, two_pass);
    }

    #[test]
    fn fused_queries_cache_under_predicate_identity() {
        let e = engine();
        let base = e.load("nums", 0).unwrap();
        let opts = QueryOptions::default();
        // Unfiltered and fused queries over the same sketch coexist in
        // the cache — the fused key folds the predicate's canonical
        // bytes into the dataset version, so neither poisons the other.
        let (all, _) = e.run(base, CountSketch::rows(), &opts).unwrap();
        assert_eq!(all.rows, 10_000);
        let pred = Predicate::range("X", 0.0, 10.0);
        let (sum, _) = e
            .run_filtered(base, pred.clone(), CountSketch::rows(), &opts)
            .unwrap();
        assert_eq!(sum.rows, 1_000);
        let (again, _) = e.run(base, CountSketch::rows(), &opts).unwrap();
        assert_eq!(again.rows, 10_000);
        // Repeating the fused query — and a canonically-equal respelling
        // of it (double negation cancels) — serves pure cache hits.
        let hits_before = e.cluster().cache_stats().hits;
        let (sum2, _) = e
            .run_filtered(base, pred.clone(), CountSketch::rows(), &opts)
            .unwrap();
        assert_eq!(sum2.rows, 1_000);
        let (sum3, _) = e
            .run_filtered(base, pred.not().not(), CountSketch::rows(), &opts)
            .unwrap();
        assert_eq!(sum3.rows, 1_000);
        assert_eq!(
            e.cluster().cache_stats().hits - hits_before,
            4,
            "two fused repeats x two workers hit the predicate-keyed entry"
        );
    }

    #[test]
    fn nonselective_lazy_filter_never_promotes() {
        // X in [0,100) passes every row: fusing costs the same full pass
        // a materialized membership would, so the planner keeps fusing no
        // matter how often the dataset is queried.
        let e = engine();
        let base = e.load("nums", 0).unwrap();
        let lazy = e.filter_lazy(base, Predicate::range("X", 0.0, 100.0));
        for _ in 0..5 {
            let (sum, _) = e
                .run(lazy, CountSketch::rows(), &QueryOptions::default())
                .unwrap();
            assert_eq!(sum.rows, 10_000);
        }
        assert!(
            !e.cluster().worker(0).has_dataset(lazy),
            "materializing a pass-everything predicate buys nothing"
        );
    }

    #[test]
    fn fused_query_survives_worker_crash() {
        let e = engine();
        let base = e.load("nums", 0).unwrap();
        let lazy = e.filter_lazy(base, Predicate::range("X", 0.0, 10.0));
        e.cluster().worker(1).kill();
        let (sum, _) = e
            .run(lazy, CountSketch::rows(), &QueryOptions::default())
            .unwrap();
        assert_eq!(sum.rows, 1_000, "restart + replay of the fused root");
    }

    #[test]
    fn snapshots_reload_identically() {
        let e = engine();
        let a = e.load("nums", 7).unwrap();
        let (s1, _) = e
            .run(
                a,
                HistogramSketch::streaming("X", BucketSpec::numeric(0.0, 100.0, 5)),
                &QueryOptions::default(),
            )
            .unwrap();
        e.cluster().evict_all();
        let (s2, _) = e
            .run(
                a,
                HistogramSketch::streaming("X", BucketSpec::numeric(0.0, 100.0, 5)),
                &QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(s1, s2, "snapshot semantics: reload is identical");
    }
}
