//! Per-worker sketch-result cache: a bounded LRU with byte accounting and
//! single-flight coalescing.
//!
//! The paper's computation cache (§5.4) is "indexed by what mergeable
//! summary was used and what dataset was operated on". Here that identity
//! is structural — a [`CacheKey`] combines the dataset id, its
//! lineage-derived content *version* (which folds in the canonical bytes
//! of every filter predicate on the chain), and a 128-bit hash of the
//! sketch's parameter identity — so callers never invent keys and two
//! queries agree on an entry exactly when their results are provably
//! bit-identical.
//!
//! Unlike the unbounded map it replaces, the cache holds a hard byte
//! budget: insertions charge `len + overhead` against it and evict the
//! least-recently-used entries until the budget holds again. Concurrent
//! identical queries coalesce: the first miss becomes the *leader* (its
//! [`FlightGuard`] marks the key in flight) and later lookups observe
//! [`Lookup::InFlight`], wait, and are served the leader's result without
//! a second scan. A leader that fails or declines to publish drops its
//! guard, waking waiters so one of them can take over.

use crate::dataset::DatasetId;
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Duration;

/// Structural identity of one cacheable per-worker summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Dataset the execution tree ran against.
    pub dataset: DatasetId,
    /// Lineage-derived content version of that dataset on this worker; a
    /// fused query folds its canonical predicate bytes into the parent's
    /// version, so canonically-equal predicates share an entry and
    /// semantically distinct ones never collide.
    pub version: u64,
    /// 128-bit structural query hash over the sketch name and its
    /// parameter identity ([`crate::erased::ErasedSketch::cache_identity`]).
    pub query: [u64; 2],
}

/// Fixed bookkeeping cost charged per entry on top of the payload bytes,
/// so a flood of tiny summaries cannot grow the maps unboundedly while
/// technically staying under the payload budget.
const ENTRY_OVERHEAD: usize = 64;

/// Counter snapshot for one cache (or, summed, a whole cluster).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a stored entry.
    pub hits: u64,
    /// Lookups that found no entry and became the computing leader.
    pub misses: u64,
    /// Entries stored (leader completions).
    pub insertions: u64,
    /// Entries dropped by the LRU byte budget (not dataset eviction).
    pub evictions: u64,
    /// Hits that were served only after waiting on an in-flight leader —
    /// queries that shared one scan instead of running their own.
    pub coalesced: u64,
    /// Entries currently stored.
    pub entries: u64,
    /// Bytes currently accounted (payload + per-entry overhead).
    pub bytes: u64,
    /// Byte budget (summed across caches when merged).
    pub budget: u64,
}

impl CacheStats {
    /// Sum two snapshots (cluster-wide aggregation over workers).
    pub fn merge(self, o: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + o.hits,
            misses: self.misses + o.misses,
            insertions: self.insertions + o.insertions,
            evictions: self.evictions + o.evictions,
            coalesced: self.coalesced + o.coalesced,
            entries: self.entries + o.entries,
            bytes: self.bytes + o.bytes,
            budget: self.budget + o.budget,
        }
    }
}

struct Entry {
    value: Bytes,
    tick: u64,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    /// Recency order: strictly-increasing tick → key. The BTreeMap's
    /// smallest tick is the LRU victim.
    order: BTreeMap<u64, CacheKey>,
    bytes: usize,
    tick: u64,
    /// Keys a leader is currently computing.
    inflight: HashSet<CacheKey>,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    coalesced: u64,
}

/// The outcome of one cache lookup.
pub enum Lookup<'a> {
    /// A stored summary; recency was bumped.
    Hit(Bytes),
    /// Nothing stored and nobody computing: the caller is now the leader
    /// and must either [`FlightGuard::complete`] with the computed bytes
    /// or drop the guard to release waiting queries.
    Miss(FlightGuard<'a>),
    /// Another query is computing this key right now; wait with
    /// [`SketchCache::wait`] and look up again (or proceed uncached).
    InFlight,
}

/// Leadership token for a single-flight computation. Dropping it without
/// [`FlightGuard::complete`] abandons the flight (wakes waiters, stores
/// nothing) — the path taken by cancelled, degraded, or failed trees.
pub struct FlightGuard<'a> {
    cache: &'a SketchCache,
    key: CacheKey,
    done: bool,
}

impl FlightGuard<'_> {
    /// Publish the computed summary: store it (evicting LRU entries past
    /// the byte budget) and wake every query waiting on this key.
    pub fn complete(mut self, value: Bytes) {
        self.done = true;
        let mut inner = self.cache.inner.lock();
        inner.inflight.remove(&self.key);
        self.cache.insert_locked(&mut inner, self.key, value);
        drop(inner);
        self.cache.flights.notify_all();
    }

    /// The key this flight owns.
    pub fn key(&self) -> CacheKey {
        self.key
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.cache.inner.lock().inflight.remove(&self.key);
            self.cache.flights.notify_all();
        }
    }
}

/// Bounded per-worker cache of merged worker-level summaries.
pub struct SketchCache {
    budget: usize,
    inner: Mutex<Inner>,
    flights: Condvar,
}

impl SketchCache {
    /// An empty cache holding at most `budget` accounted bytes.
    pub fn new(budget: usize) -> Self {
        SketchCache {
            budget,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                bytes: 0,
                tick: 0,
                inflight: HashSet::new(),
                hits: 0,
                misses: 0,
                insertions: 0,
                evictions: 0,
                coalesced: 0,
            }),
            flights: Condvar::new(),
        }
    }

    /// Look up `key`, becoming the computing leader on a miss.
    pub fn lookup(&self, key: CacheKey) -> Lookup<'_> {
        let mut guard = self.inner.lock();
        // Reborrow through the guard once so the borrows of `map`, `order`,
        // and the counters split per-field (a second `map` lookup would
        // otherwise be needed just to satisfy the borrow checker).
        let inner = &mut *guard;
        if let Some(entry) = inner.map.get_mut(&key) {
            inner.tick += 1;
            let tick = inner.tick;
            inner.order.remove(&entry.tick);
            inner.order.insert(tick, key);
            entry.tick = tick;
            inner.hits += 1;
            return Lookup::Hit(entry.value.clone());
        }
        if inner.inflight.contains(&key) {
            return Lookup::InFlight;
        }
        inner.inflight.insert(key);
        inner.misses += 1;
        Lookup::Miss(FlightGuard {
            cache: self,
            key,
            done: false,
        })
    }

    /// Block until `key`'s flight resolves (complete or abandoned) or
    /// `timeout` elapses — callers loop around [`SketchCache::lookup`] so
    /// they can keep heartbeating and observe cancellation between waits.
    pub fn wait(&self, key: &CacheKey, timeout: Duration) {
        let mut inner = self.inner.lock();
        if !inner.inflight.contains(key) {
            return;
        }
        self.flights.wait_for(&mut inner, timeout);
    }

    /// Record that a query was served by another query's in-flight scan
    /// (called by the executor when a wait ended in a hit).
    pub fn note_coalesced(&self) {
        self.inner.lock().coalesced += 1;
    }

    /// Store a summary directly (tests and non-flight callers).
    pub fn insert(&self, key: CacheKey, value: Bytes) {
        let mut inner = self.inner.lock();
        self.insert_locked(&mut inner, key, value);
    }

    fn insert_locked(&self, inner: &mut Inner, key: CacheKey, value: Bytes) {
        let cost = value.len() + ENTRY_OVERHEAD;
        if cost > self.budget {
            // An entry that alone exceeds the budget is never stored:
            // serving it once cannot justify unbounded residency.
            return;
        }
        if let Some(old) = inner.map.remove(&key) {
            inner.order.remove(&old.tick);
            inner.bytes -= old.value.len() + ENTRY_OVERHEAD;
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key, Entry { value, tick });
        inner.order.insert(tick, key);
        inner.bytes += cost;
        inner.insertions += 1;
        while inner.bytes > self.budget {
            // `bytes > 0` implies the order index is non-empty; if the two
            // ever disagree, stop evicting instead of spinning or panicking
            // mid-query — the cache degrades to over-budget, nothing worse.
            let Some((&oldest, &victim)) = inner.order.iter().next() else {
                break;
            };
            if victim == key {
                break; // never evict the entry just inserted
            }
            inner.order.remove(&oldest);
            let Some(e) = inner.map.remove(&victim) else {
                break; // order/map out of sync: same degrade-don't-panic stance
            };
            inner.bytes -= e.value.len() + ENTRY_OVERHEAD;
            inner.evictions += 1;
        }
    }

    /// Drop every entry belonging to `dataset` (worker-side dataset
    /// eviction; not counted as LRU evictions).
    pub fn evict_dataset(&self, dataset: DatasetId) {
        let mut inner = self.inner.lock();
        let victims: Vec<CacheKey> = inner
            .map
            .keys()
            .filter(|k| k.dataset == dataset)
            .copied()
            .collect();
        for key in victims {
            // Keys were collected from `map` under this same lock, so the
            // removal cannot miss; guard anyway so a future refactor that
            // drops the lock between collect and remove degrades gracefully.
            if let Some(e) = inner.map.remove(&key) {
                inner.order.remove(&e.tick);
                inner.bytes -= e.value.len() + ENTRY_OVERHEAD;
            }
        }
    }

    /// Drop everything (worker kill / cold-start eviction). In-flight
    /// markers are left to their owning guards.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.order.clear();
        inner.bytes = 0;
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            coalesced: inner.coalesced,
            entries: inner.map.len() as u64,
            bytes: inner.bytes as u64,
            budget: self.budget as u64,
        }
    }
}

impl std::fmt::Debug for SketchCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "SketchCache({} entries, {}/{} bytes)",
            s.entries, s.bytes, s.budget
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(n: u64) -> CacheKey {
        CacheKey {
            dataset: DatasetId(1),
            version: n,
            query: [n, !n],
        }
    }

    fn put(c: &SketchCache, n: u64, len: usize) {
        match c.lookup(key(n)) {
            Lookup::Miss(g) => g.complete(Bytes::from(vec![n as u8; len])),
            _ => panic!("expected miss for fresh key {n}"),
        }
    }

    #[test]
    fn round_trip_and_counters() {
        let c = SketchCache::new(1 << 20);
        assert!(matches!(c.lookup(key(7)), Lookup::Miss(_))); // guard dropped
        put(&c, 7, 100);
        match c.lookup(key(7)) {
            Lookup::Hit(b) => assert_eq!(b, Bytes::from(vec![7u8; 100])),
            _ => panic!("expected hit"),
        }
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 2, 1));
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, 100 + ENTRY_OVERHEAD as u64);
    }

    #[test]
    fn lru_evicts_by_byte_budget() {
        let budget = 3 * (100 + ENTRY_OVERHEAD);
        let c = SketchCache::new(budget);
        for n in 0..3 {
            put(&c, n, 100);
        }
        assert_eq!(c.stats().entries, 3);
        // Touch key 0 so key 1 is the LRU victim.
        assert!(matches!(c.lookup(key(0)), Lookup::Hit(_)));
        put(&c, 3, 100);
        let s = c.stats();
        assert_eq!(s.entries, 3);
        assert_eq!(s.evictions, 1);
        assert!(matches!(c.lookup(key(0)), Lookup::Hit(_)), "recently used");
        assert!(matches!(c.lookup(key(1)), Lookup::Miss(_)), "LRU evicted");
        assert!((s.bytes as usize) <= budget);
    }

    #[test]
    fn oversized_entry_is_not_stored() {
        let c = SketchCache::new(128);
        put(&c, 1, 1000);
        assert_eq!(c.stats().entries, 0);
        assert!(matches!(c.lookup(key(1)), Lookup::Miss(_)));
    }

    #[test]
    fn reinsert_replaces_without_double_accounting() {
        let c = SketchCache::new(1 << 20);
        put(&c, 5, 200);
        c.insert(key(5), Bytes::from(vec![0u8; 50]));
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, 50 + ENTRY_OVERHEAD as u64);
    }

    #[test]
    fn dataset_eviction_is_scoped() {
        let c = SketchCache::new(1 << 20);
        put(&c, 1, 10);
        let other = CacheKey {
            dataset: DatasetId(2),
            version: 9,
            query: [9, 9],
        };
        c.insert(other, Bytes::from_static(b"keep"));
        c.evict_dataset(DatasetId(1));
        assert!(matches!(c.lookup(key(1)), Lookup::Miss(_)));
        assert!(matches!(c.lookup(other), Lookup::Hit(_)));
        assert_eq!(c.stats().evictions, 0, "scoped eviction is not LRU");
    }

    #[test]
    fn single_flight_coalesces_concurrent_queries() {
        let c = Arc::new(SketchCache::new(1 << 20));
        let k = key(3);
        let leader = match c.lookup(k) {
            Lookup::Miss(g) => g,
            _ => panic!("leader expected miss"),
        };
        let c2 = c.clone();
        let waiter = std::thread::spawn(move || loop {
            match c2.lookup(k) {
                Lookup::Hit(b) => {
                    c2.note_coalesced();
                    return b;
                }
                Lookup::InFlight => c2.wait(&k, Duration::from_millis(50)),
                Lookup::Miss(_) => panic!("waiter must never become leader here"),
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        leader.complete(Bytes::from_static(b"shared"));
        assert_eq!(waiter.join().unwrap(), Bytes::from_static(b"shared"));
        let s = c.stats();
        assert_eq!(s.misses, 1, "one scan for two queries");
        assert_eq!(s.coalesced, 1);
    }

    #[test]
    fn abandoned_flight_releases_waiters() {
        let c = Arc::new(SketchCache::new(1 << 20));
        let k = key(4);
        let leader = match c.lookup(k) {
            Lookup::Miss(g) => g,
            _ => panic!("expected miss"),
        };
        let c2 = c.clone();
        let waiter = std::thread::spawn(move || loop {
            match c2.lookup(k) {
                Lookup::Miss(g) => {
                    // Leadership transferred after the abandon.
                    g.complete(Bytes::from_static(b"takeover"));
                    return;
                }
                Lookup::InFlight => c2.wait(&k, Duration::from_millis(50)),
                Lookup::Hit(_) => panic!("abandoned flight must not publish"),
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(leader); // failed / degraded / cancelled: publish nothing
        waiter.join().unwrap();
        match c.lookup(k) {
            Lookup::Hit(b) => assert_eq!(b, Bytes::from_static(b"takeover")),
            _ => panic!("takeover result stored"),
        };
    }

    #[test]
    fn clear_resets_contents_but_keeps_counters() {
        let c = SketchCache::new(1 << 20);
        put(&c, 1, 10);
        put(&c, 2, 10);
        c.clear();
        let s = c.stats();
        assert_eq!((s.entries, s.bytes), (0, 0));
        assert_eq!(s.insertions, 2, "history survives for diagnostics");
    }
}
