//! The per-server work-stealing executor.
//!
//! Each simulated server runs one pool; leaves are tasks on it (paper §5.3:
//! "there is a thread pool that serves leafs with work to do"). The seed
//! implementation was a FIFO channel feeding fixed threads, which serialized
//! a query on its largest micropartition: one pool thread summarized one
//! partition, however big. This pool replaces it with the classic
//! work-stealing shape (per-thread deques over the vendored
//! [`crossbeam::deque`], a global injector, steal-on-idle):
//!
//! * **External submissions** ([`ThreadPool::submit`] from a non-pool
//!   thread) land in the global [`Injector`] FIFO, preserving the seed
//!   pool's fairness for coarse tasks (partition filters, maps, unsplit
//!   leaves).
//! * **Recursive splits**: a task that calls `submit` *from a pool thread*
//!   pushes onto that thread's own deque instead. The owner pops LIFO — it
//!   keeps refining the freshest, smallest half it just split — while idle
//!   threads steal FIFO from the opposite end, taking the oldest and
//!   therefore largest pending piece. That is exactly the
//!   divide-and-conquer schedule the leaf executor in
//!   [`crate::cluster`] relies on: a single oversized micropartition
//!   recursively splits into ~grain-sized sub-ranges that spread across
//!   every core without any central coordination.
//! * **Parking**: idle threads sleep on a condvar; every submission
//!   notifies one sleeper. A thread re-checks the queued-task count under
//!   the sleep lock before parking, so wakeups cannot be lost.
//! * **Shutdown** drains: dropping the pool closes submissions and joins
//!   the threads, which exit only once every queued task has run.
//!
//! Scheduling order is deliberately *not* deterministic — stealing is a
//! race. Result determinism is the execution tree's job: it folds leaf
//! partials in range order, so any interleaving produces identical bytes
//! (see `cluster::aggregate_worker`).

use crossbeam::deque::{Injector, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// The deque of the pool thread running the current code, if any:
    /// `(shared-state address, local deque)`. Lets `submit` route
    /// recursive-split tasks to the local deque without an extra API.
    static CURRENT: RefCell<Option<(usize, Deque<Task>)>> = const { RefCell::new(None) };
}

struct Shared {
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    /// Tasks sitting in the injector or any deque (not ones executing).
    queued: AtomicUsize,
    /// Tasks whose panic was caught by the executor (diagnostics).
    panicked: AtomicUsize,
    shutdown: AtomicBool,
    sleep: Mutex<()>,
    wake: Condvar,
}

impl Shared {
    /// Address used as the pool identity for the thread-local routing.
    fn id(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// Wake one sleeper. Sleepers re-check the queued count under the
    /// sleep lock before parking, so with the count incremented before the
    /// push a submission can never slip past a parking thread.
    fn notify_one(&self) {
        let _guard = self.sleep.lock();
        self.wake.notify_one();
    }

    /// Find a task: own deque first (LIFO), then the injector, then other
    /// threads' deques (FIFO steals).
    fn find_task(&self, me: usize) -> Option<Task> {
        let local = CURRENT.with(|c| c.borrow().as_ref().and_then(|(_, deque)| deque.pop()));
        if let Some(t) = local {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(t);
        }
        if let Some(t) = self.injector.steal().success() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(t);
        }
        let n = self.stealers.len();
        for k in 1..n {
            if let Some(t) = self.stealers[(me + k) % n].steal().success() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(t);
            }
        }
        None
    }
}

/// A work-stealing thread pool with a fixed number of threads.
pub struct ThreadPool {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `threads` worker threads named after `label`.
    pub fn new(threads: usize, label: &str) -> Self {
        let threads = threads.max(1);
        let deques: Vec<Deque<Task>> = (0..threads).map(|_| Deque::new_lifo()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers: deques.iter().map(|d| d.stealer()).collect(),
            queued: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        });
        let threads = deques
            .into_iter()
            .enumerate()
            .map(|(i, deque)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("{label}-{i}"))
                    .spawn(move || {
                        let id = shared.id();
                        CURRENT.with(|c| *c.borrow_mut() = Some((id, deque)));
                        worker_loop(&shared, i);
                        CURRENT.with(|c| *c.borrow_mut() = None);
                    })
                    // Thread spawning fails only on OS resource exhaustion
                    // at pool construction; there is no query to fail yet.
                    // lint: allow(panic, startup-time OS resource exhaustion has no caller to report to)
                    .expect("spawn pool thread")
            })
            .collect();
        ThreadPool { shared, threads }
    }

    /// Enqueue a task. Called from one of this pool's own threads, the
    /// task goes to that thread's deque (stealable by idle siblings) —
    /// the recursive-split path; called from outside, it goes to the
    /// global injector FIFO.
    pub fn submit(&self, task: impl FnOnce() + Send + 'static) {
        let mut task = Some(Box::new(task) as Task);
        // Count before pushing: a worker that pops the task immediately
        // must never decrement the counter below zero.
        self.shared.queued.fetch_add(1, Ordering::SeqCst);
        let my_id = self.shared.id();
        CURRENT.with(|c| {
            if let Some((id, deque)) = c.borrow().as_ref() {
                if *id == my_id {
                    if let Some(t) = task.take() {
                        deque.push(t);
                    }
                }
            }
        });
        if let Some(t) = task {
            self.shared.injector.push(t);
        }
        self.shared.notify_one();
    }

    /// Number of threads.
    pub fn size(&self) -> usize {
        self.threads.len()
    }

    /// Tasks whose panic the executor caught so far. Pool threads survive
    /// panicking tasks; this counter is how tests and diagnostics observe
    /// that isolation fired.
    pub fn tasks_panicked(&self) -> usize {
        self.shared.panicked.load(Ordering::SeqCst)
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        if let Some(task) = shared.find_task(me) {
            // Panic isolation: a poisoned task must not take down its
            // pool thread (which would strand the thread's deque and
            // shrink the pool for the process lifetime). The task's owner
            // observes the failure through its own channel going dead —
            // the leaf executor additionally catches panics *inside* the
            // task to report a structured error; this is the backstop.
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)).is_err() {
                shared.panicked.fetch_add(1, Ordering::SeqCst);
            }
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            if shared.queued.load(Ordering::SeqCst) == 0 {
                return;
            }
            continue;
        }
        // Park until new work arrives; re-check under the lock so a
        // submission between `find_task` and here is never missed.
        let mut guard = shared.sleep.lock();
        if shared.queued.load(Ordering::SeqCst) == 0 && !shared.shutdown.load(Ordering::SeqCst) {
            shared.wake.wait(&mut guard);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.sleep.lock();
            self.shared.wake.notify_all();
        }
        // The pool can be dropped *from one of its own threads*: a leaf
        // task may hold the last `Arc<Worker>` when the query's caller has
        // already moved on. Joining ourselves would deadlock (EDEADLK) —
        // detach the current thread instead; it exits on its own once its
        // task returns and the loop observes the shutdown flag.
        let me = std::thread::current().id();
        for t in self.threads.drain(..) {
            if t.thread().id() == me {
                continue;
            }
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ThreadPool({} threads)", self.threads.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn all_tasks_run() {
        let pool = ThreadPool::new(4, "test");
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = crossbeam::channel::unbounded();
        for _ in 0..100 {
            let c = counter.clone();
            let tx = tx.clone();
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..100 {
            rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn tasks_run_in_parallel() {
        let pool = ThreadPool::new(4, "par");
        let (tx, rx) = crossbeam::channel::unbounded();
        let barrier = Arc::new(std::sync::Barrier::new(4));
        for _ in 0..4 {
            let b = barrier.clone();
            let tx = tx.clone();
            pool.submit(move || {
                // Deadlocks unless 4 tasks run concurrently.
                b.wait();
                tx.send(()).unwrap();
            });
        }
        for _ in 0..4 {
            assert!(rx.recv_timeout(std::time::Duration::from_secs(5)).is_ok());
        }
    }

    #[test]
    fn drop_drains_pending_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2, "drain");
            for _ in 0..50 {
                let c = counter.clone();
                pool.submit(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop joins
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0, "one");
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn recursive_submission_from_pool_threads_completes() {
        // A task that splits itself in half down to unit pieces — the
        // executor shape the leaf runner uses. All pieces must run, on any
        // number of threads, with the splits flowing through the local
        // deques.
        for threads in [1usize, 4] {
            let pool = Arc::new(ThreadPool::new(threads, "rec"));
            let done = Arc::new(AtomicUsize::new(0));
            let (tx, rx) = crossbeam::channel::unbounded();
            fn split(
                pool: &Arc<ThreadPool>,
                n: usize,
                done: &Arc<AtomicUsize>,
                tx: &crossbeam::channel::Sender<usize>,
            ) {
                if n <= 1 {
                    done.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(1);
                    return;
                }
                let half = n / 2;
                let (p2, d2, t2) = (pool.clone(), done.clone(), tx.clone());
                pool.submit(move || split(&p2, n - half, &d2, &t2));
                split(pool, half, done, tx);
            }
            let (p, d, t) = (pool.clone(), done.clone(), tx.clone());
            pool.submit(move || split(&p, 64, &d, &t));
            let mut got = 0usize;
            while got < 64 {
                got += rx
                    .recv_timeout(std::time::Duration::from_secs(10))
                    .expect("recursive pieces complete");
            }
            assert_eq!(done.load(Ordering::Relaxed), 64, "threads={threads}");
        }
    }

    #[test]
    fn panicking_tasks_do_not_kill_pool_threads() {
        // Every thread eats a panicking task; the pool must still run a
        // full batch of follow-up tasks (impossible if panics killed the
        // threads, since the pool never respawns them).
        let pool = ThreadPool::new(2, "poison");
        for _ in 0..8 {
            pool.submit(|| panic!("injected task panic"));
        }
        let (tx, rx) = crossbeam::channel::unbounded();
        for i in 0..32 {
            let tx = tx.clone();
            pool.submit(move || {
                let _ = tx.send(i);
            });
        }
        let mut got = 0;
        while got < 32 {
            assert!(
                rx.recv_timeout(std::time::Duration::from_secs(10)).is_ok(),
                "pool stopped executing after panics"
            );
            got += 1;
        }
        // The last panicking task may still be unwinding on the sibling
        // thread when the follow-ups finish; give the counter a moment.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while pool.tasks_panicked() < 8 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(pool.tasks_panicked(), 8);
    }

    #[test]
    fn idle_threads_steal_from_a_busy_thread() {
        // One task floods its own local deque then blocks until every
        // flooded piece has run — impossible unless other threads steal
        // from its deque.
        let pool = Arc::new(ThreadPool::new(4, "steal"));
        let (tx, rx) = crossbeam::channel::unbounded();
        let p2 = pool.clone();
        pool.submit(move || {
            let (done_tx, done_rx) = crossbeam::channel::unbounded();
            for i in 0..16 {
                let done_tx = done_tx.clone();
                p2.submit(move || {
                    let _ = done_tx.send(i);
                });
            }
            drop(done_tx);
            // Block this pool thread until all 16 pieces ran elsewhere (or
            // here, after this task—which can't happen while we wait).
            let mut seen = 0;
            while seen < 16 {
                if done_rx
                    .recv_timeout(std::time::Duration::from_secs(10))
                    .is_ok()
                {
                    seen += 1;
                } else {
                    break;
                }
            }
            let _ = tx.send(seen);
        });
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(15)),
            Ok(16),
            "pieces pushed to a blocked thread's deque were stolen"
        );
    }
}
