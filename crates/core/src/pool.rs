//! A fixed-size worker thread pool.
//!
//! Each simulated server runs one pool; leaves are tasks on it (paper §5.3:
//! "there is a thread pool that serves leafs with work to do").

use crossbeam::channel::{unbounded, Sender};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size thread pool; tasks run FIFO across threads.
pub struct ThreadPool {
    tx: Option<Sender<Task>>,
    threads: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `threads` worker threads named after `label`.
    pub fn new(threads: usize, label: &str) -> Self {
        let (tx, rx) = unbounded::<Task>();
        let threads = (0..threads.max(1))
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("{label}-{i}"))
                    .spawn(move || {
                        while let Ok(task) = rx.recv() {
                            task();
                        }
                    })
                    .expect("spawn pool thread")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            threads,
        }
    }

    /// Enqueue a task.
    pub fn submit(&self, task: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool is live")
            .send(Box::new(task))
            .expect("pool threads alive");
    }

    /// Number of threads.
    pub fn size(&self) -> usize {
        self.threads.len()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel; threads exit after draining queued tasks.
        self.tx.take();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ThreadPool({} threads)", self.threads.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn all_tasks_run() {
        let pool = ThreadPool::new(4, "test");
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = crossbeam::channel::unbounded();
        for _ in 0..100 {
            let c = counter.clone();
            let tx = tx.clone();
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..100 {
            rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn tasks_run_in_parallel() {
        let pool = ThreadPool::new(4, "par");
        let (tx, rx) = crossbeam::channel::unbounded();
        let barrier = Arc::new(std::sync::Barrier::new(4));
        for _ in 0..4 {
            let b = barrier.clone();
            let tx = tx.clone();
            pool.submit(move || {
                // Deadlocks unless 4 tasks run concurrently.
                b.wait();
                tx.send(()).unwrap();
            });
        }
        for _ in 0..4 {
            assert!(rx.recv_timeout(std::time::Duration::from_secs(5)).is_ok());
        }
    }

    #[test]
    fn drop_drains_pending_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2, "drain");
            for _ in 0..50 {
                let c = counter.clone();
                pool.submit(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop joins
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0, "one");
        assert_eq!(pool.size(), 1);
    }
}
