//! # hillview-core
//!
//! The Hillview-RS engine: a distributed execution tree specialized to run
//! vizketches (paper §5), plus the [`Spreadsheet`] facade that maps
//! spreadsheet actions onto it.
//!
//! The cluster is simulated inside one process (DESIGN.md §1) but keeps the
//! paper's structure and discipline:
//!
//! * **Execution trees** ([`cluster`]): a query fans out from the root to
//!   per-worker aggregation nodes and leaf micropartitions; summaries are
//!   serialized across every edge and merged upward. Nodes propagate
//!   *partially merged* results on a batching interval so the client sees
//!   progressive updates (§5.3), and queries are cancellable (§5.3).
//! * **Workers** ([`worker`]): per-server thread pools executing leaf
//!   summarize calls; all state is soft (§5.7) — datasets live in a cache
//!   keyed by [`DatasetId`] and can vanish at any time.
//! * **Storage independence** ([`dataset`]): data enters via [`DataSource`]
//!   implementations with arbitrary horizontal partitioning (§2).
//! * **Out-of-core storage tiers** ([`HvcDirSource`]): a directory of
//!   `hvc` part files loads *mapped* — headers only at load time, column
//!   payloads faulted in block-granular through a per-worker byte-budgeted
//!   [`BlockCache`](hillview_columnar::BlockCache)
//!   ([`ClusterConfig::block_cache_bytes`], env-overridable with
//!   `HILLVIEW_BLOCK_CACHE_BYTES`) as scans touch them. Zone-map-skipped
//!   blocks are never read at all, so a filtered query over a dataset far
//!   larger than memory faults in only the selected band; results are
//!   bit-identical to heap-resident execution.
//!   [`Cluster::dataset_mapped_bytes`] and [`Cluster::block_cache_stats`]
//!   surface the accounting ([`Cluster::dataset_heap_bytes`] counts only
//!   owned payloads). With the `ooc` cargo feature, mapped columns are
//!   zero-copy mmap windows and cold chunks are evicted past the budget;
//!   without it, a portable pread path lazily fills pinned buffers.
//! * **Caches** ([`worker`], [`cache`]): an in-memory column/data cache
//!   in front of the repository, plus a bounded per-worker LRU
//!   sketch-result cache for deterministic summaries (§5.4), keyed by
//!   structural query identity with single-flight coalescing.
//! * **Fault tolerance** ([`redo`], [`engine`]): the root logs every
//!   dataset-producing operation (with seeds); when a worker reports a
//!   missing dataset — eviction or restart — the root lazily replays the
//!   lineage and retries (§5.7–5.8).
//! * **Spreadsheet** ([`spreadsheet`]): the user-facing API — tabular
//!   views, scrolling, filtering, charts, heavy hitters, PCA — implemented
//!   exclusively with vizketches (§7.3: sketches are "the sole way to
//!   access data in the system").
//! * **Fault injection** ([`fault`]): a seeded, deterministic adversary
//!   for the whole tree — frame drops/duplicates/corruption/delays, leaf
//!   panics and stalls, worker kills and evictions — every decision a
//!   pure function of `(seed, epoch, site)` so failing chaos schedules
//!   replay exactly (§5.8).
//!
//! ## Failure semantics
//!
//! Every query terminates in bounded time with exactly one of three
//! outcomes — never a hang, a process abort, or a silently partial
//! answer:
//!
//! 1. **A complete result**, bit-identical to a fault-free run
//!    ([`QueryOutcome::coverage`]` == 1.0`). Transient faults (evictions,
//!    worker crashes, lost or corrupted frames, leaf panics) are healed by
//!    lineage replay and the engine's bounded [`RetryPolicy`]; §5.8
//!    determinism — logged seeds, range-ordered folds — guarantees the
//!    recovered bytes match.
//! 2. **A structured error** ([`EngineError`]): the retry budget is
//!    exhausted ([`EngineError::RetriesExhausted`] wraps the final
//!    cause), the query's [`QueryOptions::deadline`] fires
//!    ([`EngineError::DeadlineExceeded`]), or the failure is
//!    deterministic (bad column, unknown dataset) and retrying would be
//!    pointless.
//! 3. **An honestly-labelled degraded result** (opt-in via
//!    [`QueryOptions::allow_degraded`]): after the retry budget, one
//!    final tree tolerates worker failures and folds the survivors,
//!    reporting `coverage < 1.0` and the excluded
//!    [`QueryOutcome::failed_workers`].
//!
//! The mechanisms behind this: panics are isolated at the pool thread,
//! the leaf task, the aggregation node, and the root's fan-out join
//! (surfacing as retryable [`EngineError::LeafPanicked`], with leaf work
//! weights conserved so lost completions are detected); root-link frames
//! carry checksums so corruption is dropped, duplicated finals are
//! guarded, and re-sends come from the batching loop; aggregation nodes
//! heartbeat every batch tick so the root's per-worker liveness sweep
//! ([`ClusterConfig::worker_timeout`]) converts silence into
//! [`EngineError::WorkerDown`] instead of waiting forever; and the
//! computation cache only ever stores complete, uncancelled folds.
//! The chaos suite (`crates/core/tests/chaos.rs`) drives seeded fault
//! schedules across sketch × fault-class grids to enforce exactly this
//! trichotomy.
//!
//! ## Fused filtered-query planning and the sketch-result cache
//!
//! [`Engine::filter_lazy`] records a filter's lineage without touching
//! the cluster; each query against the lazy dataset makes a three-way,
//! cost-based choice:
//!
//! 1. **Fused** — ship the AND-composed predicate chain down the tree;
//!    every leaf runs the sketch's fused entry point (predicate and
//!    kernel in one block pass, no membership set materialized — see the
//!    `hillview-columnar` crate docs, "Query execution pipeline"). The
//!    first query always fuses: it pays at most one full pass and
//!    materializing could not beat that.
//! 2. **Materialize, then reuse** — from the second query on, the engine
//!    estimates the predicate's per-block cost from zone maps plus a
//!    bounded probe ([`Cluster::estimate_filter`]): fusing costs
//!    `1 − skip_fraction` of a pass per query, while a materialized
//!    membership costs one pass once and `selectivity` per query after.
//!    When the projected fused overhead across the queries seen so far
//!    exceeds the one-time materialization cost, the chain promotes
//!    ancestors-first into cached membership sets and the classic
//!    two-pass path takes over. Non-selective predicates (fused cost ≈
//!    per-query materialized cost) never promote.
//! 3. **Cached membership reuse** — once an ancestor is materialized,
//!    later lazy chains compose only the unmaterialized suffix on top of
//!    it.
//!
//! [`Engine::run_filtered`] exposes the one-shot (always-fused) form
//! directly. Split plans and fold order under fusion are those of the
//! *unfiltered* membership — filtering narrows rows, never renumbers
//! them — so fused execution is deterministic across thread counts.
//!
//! Deterministic summaries land in a per-worker, byte-bounded LRU
//! [`SketchCache`] (§5.4) under a *structural* key: the dataset's
//! lineage-derived content version — for fused trees, the parent version
//! with the predicate's canonical bytes folded in, exactly as
//! materializing the filter would — crossed with the sketch's 128-bit
//! parameter identity. Canonically-equal predicate respellings
//! (AND-operand order, double negation) therefore share entries, while
//! fused and two-pass plans for the same logical query never do (their
//! fold boundaries may legally differ in float ulps, so sharing would
//! make results cache-state-dependent). Identical in-flight queries
//! coalesce onto one scan (single-flight); degraded, cancelled, or
//! failed trees abandon their flight without writing, so the cache only
//! ever stores complete, uncancelled folds. Counters are surfaced via
//! [`Cluster::cache_stats`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod cluster;
pub mod dataset;
pub mod engine;
pub mod erased;
pub mod error;
pub mod fault;
pub mod pool;
pub mod progress;
pub mod redo;
pub mod spreadsheet;
pub mod worker;

pub use cache::{CacheKey, CacheStats, SketchCache};
pub use cluster::{Cluster, ClusterConfig, QueryOptions, QueryOutcome};
pub use dataset::{DataSource, DatasetId, FnSource, HvcDirSource, Lineage, SourceSpec};
pub use engine::{Engine, RetryPolicy};
pub use error::{EngineError, EngineResult};
pub use fault::{FaultAction, FaultPlan, FaultSite, FaultSpec};
pub use progress::CancellationToken;
pub use spreadsheet::{OpStats, Spreadsheet};
