//! # hillview-core
//!
//! The Hillview-RS engine: a distributed execution tree specialized to run
//! vizketches (paper §5), plus the [`Spreadsheet`] facade that maps
//! spreadsheet actions onto it.
//!
//! The cluster is simulated inside one process (DESIGN.md §1) but keeps the
//! paper's structure and discipline:
//!
//! * **Execution trees** ([`cluster`]): a query fans out from the root to
//!   per-worker aggregation nodes and leaf micropartitions; summaries are
//!   serialized across every edge and merged upward. Nodes propagate
//!   *partially merged* results on a batching interval so the client sees
//!   progressive updates (§5.3), and queries are cancellable (§5.3).
//! * **Workers** ([`worker`]): per-server thread pools executing leaf
//!   summarize calls; all state is soft (§5.7) — datasets live in a cache
//!   keyed by [`DatasetId`] and can vanish at any time.
//! * **Storage independence** ([`dataset`]): data enters via [`DataSource`]
//!   implementations with arbitrary horizontal partitioning (§2).
//! * **Caches** ([`worker`]): an in-memory column/data cache in front of
//!   the repository and a computation cache for deterministic summaries
//!   (§5.4).
//! * **Fault tolerance** ([`redo`], [`engine`]): the root logs every
//!   dataset-producing operation (with seeds); when a worker reports a
//!   missing dataset — eviction or restart — the root lazily replays the
//!   lineage and retries (§5.7–5.8).
//! * **Spreadsheet** ([`spreadsheet`]): the user-facing API — tabular
//!   views, scrolling, filtering, charts, heavy hitters, PCA — implemented
//!   exclusively with vizketches (§7.3: sketches are "the sole way to
//!   access data in the system").

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod dataset;
pub mod engine;
pub mod erased;
pub mod error;
pub mod pool;
pub mod progress;
pub mod redo;
pub mod spreadsheet;
pub mod worker;

pub use cluster::{Cluster, ClusterConfig, QueryOptions};
pub use dataset::{DataSource, DatasetId, FnSource, Lineage, SourceSpec};
pub use engine::Engine;
pub use error::{EngineError, EngineResult};
pub use progress::CancellationToken;
pub use spreadsheet::{OpStats, Spreadsheet};
