//! Worker nodes: per-server soft state, caches, and leaf execution.
//!
//! A worker models one server of the paper's testbed: it owns a slice of
//! every dataset (as micropartition [`TableView`]s), a thread pool that
//! executes leaf `summarize` calls, an in-memory data cache, and a
//! bounded sketch-result cache for deterministic summaries (§5.4,
//! [`SketchCache`]). All of it is soft state (§5.7): `evict_all`/`kill`
//! erase it, and the root reconstructs it by replaying lineage.
//!
//! Every materialized dataset carries a lineage-derived content *version*:
//! loads hash the source spec, filters fold the parent version with the
//! predicate's canonical bytes, maps fold the UDF and column names. The
//! version is what makes cache keys structural — two queries share an
//! entry exactly when their lineage proves identical contents.

use crate::cache::{CacheStats, SketchCache};
use crate::dataset::{DatasetId, SourceRegistry, SourceSpec};
use crate::error::{EngineError, EngineResult};
use crate::fault::{FaultAction, FaultPlan, FaultSite};
use crate::pool::ThreadPool;
use hillview_columnar::predicate::filter_members;
use hillview_columnar::udf::UdfRegistry;
use hillview_columnar::{fnv1a, BlockCache, BlockCacheStats, Predicate, Table, FNV_OFFSET};
use hillview_sketch::TableView;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One materialized dataset on a worker: its partitions plus the
/// lineage-derived content version the sketch cache keys on.
struct DatasetEntry {
    views: Arc<Vec<TableView>>,
    version: u64,
}

/// Content version of a loaded dataset: a pure function of the source
/// spec, so a reload after eviction revalidates old cache entries.
fn load_version(spec: &SourceSpec) -> u64 {
    let h = fnv1a(FNV_OFFSET, b"load\0");
    let h = fnv1a(h, spec.source.as_bytes());
    fnv1a(h, &spec.snapshot.to_le_bytes())
}

/// Content version of a filtered dataset: the parent version chained with
/// the predicate's *canonical* bytes — And/Or order, double negation, and
/// compiler-equivalent numeric bounds all collapse to one identity.
fn filter_version(parent: u64, canonical_predicate: &[u8]) -> u64 {
    let h = fnv1a(parent, b"filter\0");
    fnv1a(h, canonical_predicate)
}

/// Content version of a mapped dataset.
fn map_version(parent: u64, udf: &str, new_column: &str) -> u64 {
    let h = fnv1a(parent, b"map\0");
    let h = fnv1a(h, udf.as_bytes());
    let h = fnv1a(h, &[0]);
    fnv1a(h, new_column.as_bytes())
}

/// One simulated server.
pub struct Worker {
    /// Worker index within the cluster.
    pub id: usize,
    num_workers: usize,
    micropartition_rows: usize,
    pool: Arc<ThreadPool>,
    datasets: Mutex<HashMap<DatasetId, DatasetEntry>>,
    comp_cache: SketchCache,
    /// Byte-budgeted residency cache for out-of-core (mapped) datasets:
    /// every chunk a scan faults in is charged here, and under the `ooc`
    /// feature cold chunks past the budget are evicted back to the file.
    /// Unused (zero-cost) when every source is in-memory.
    block_cache: Arc<BlockCache>,
    alive: AtomicBool,
    sources: SourceRegistry,
    udfs: UdfRegistry,
    /// Cumulative rows loaded from sources (diagnostics).
    rows_loaded: AtomicU64,
    /// Cumulative encoded bytes of loaded datasets (footprint diagnostics).
    bytes_loaded: AtomicU64,
    /// Leaf sub-tasks executed on this worker's pool (diagnostics: a value
    /// above the partition count proves intra-partition splitting ran).
    leaf_tasks: AtomicU64,
    /// Armed fault plan, if any (chaos tests; `None` in production).
    faults: Mutex<Option<Arc<FaultPlan>>>,
    /// Engine-visible operations handled so far — the "Nth message"
    /// counter fault plans key kill/evict decisions on.
    ops: AtomicU64,
}

impl Worker {
    /// Create a worker with `threads` pool threads, a sketch-result
    /// cache bounded at `cache_budget` bytes, and a block-residency cache
    /// bounded at `block_cache_budget` bytes (`0` means unbounded).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        num_workers: usize,
        threads: usize,
        micropartition_rows: usize,
        cache_budget: usize,
        block_cache_budget: usize,
        sources: SourceRegistry,
        udfs: UdfRegistry,
    ) -> Self {
        Worker {
            id,
            num_workers,
            micropartition_rows,
            pool: Arc::new(ThreadPool::new(threads, &format!("worker{id}"))),
            datasets: Mutex::new(HashMap::new()),
            comp_cache: SketchCache::new(cache_budget),
            block_cache: if block_cache_budget == 0 {
                BlockCache::unbounded()
            } else {
                BlockCache::new(block_cache_budget)
            },
            alive: AtomicBool::new(true),
            sources,
            udfs,
            rows_loaded: AtomicU64::new(0),
            bytes_loaded: AtomicU64::new(0),
            leaf_tasks: AtomicU64::new(0),
            faults: Mutex::new(None),
            ops: AtomicU64::new(0),
        }
    }

    /// Arm a fault plan on this worker (kill/evict at operation
    /// boundaries, panic/stall at leaf tasks).
    pub fn arm_faults(&self, plan: Arc<FaultPlan>) {
        *self.faults.lock() = Some(plan);
    }

    /// Remove any armed fault plan.
    pub fn disarm_faults(&self) {
        *self.faults.lock() = None;
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.faults.lock().clone()
    }

    /// Fault-injection point at an engine-visible operation boundary
    /// (load / filter / map / query fan-out). Consults the armed plan with
    /// this worker's next operation index; a `Kill` decision crashes the
    /// worker, an `Evict` decision drops `dataset`'s soft state. Both then
    /// surface through the ordinary failure paths (`WorkerDown`,
    /// `DatasetMissing`) that recovery already handles.
    pub(crate) fn fault_op(&self, dataset: Option<DatasetId>) {
        let Some(plan) = self.fault_plan() else {
            return;
        };
        let index = self.ops.fetch_add(1, Ordering::SeqCst);
        match plan.decide(FaultSite::WorkerOp {
            worker: self.id,
            index,
        }) {
            Some(FaultAction::Kill) => self.kill(),
            Some(FaultAction::Evict) => {
                if let Some(ds) = dataset {
                    self.evict(ds);
                }
            }
            _ => {}
        }
    }

    /// Fault-injection point at the head of a leaf sub-task; returns a
    /// panic/stall decision for the leaf identified by its deterministic
    /// split coordinates.
    pub(crate) fn leaf_fault(&self, partition: u32, lo: usize) -> Option<FaultAction> {
        let plan = self.fault_plan()?;
        match plan.decide(FaultSite::Leaf {
            worker: self.id,
            partition,
            lo: lo as u64,
        }) {
            a @ Some(FaultAction::PanicLeaf) | a @ Some(FaultAction::StallLeaf(_)) => a,
            _ => None,
        }
    }

    /// The worker's thread pool (used by the execution tree for leaves).
    /// Shared so leaf tasks can re-submit their split halves.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// Leaf sub-tasks executed so far (diagnostics; exceeds the partition
    /// count of a query exactly when intra-partition splitting happened).
    pub fn leaf_tasks_executed(&self) -> u64 {
        // lint: allow(relaxed, monotonic diagnostics counter; no data is published through it)
        self.leaf_tasks.load(Ordering::Relaxed)
    }

    /// Record one executed leaf sub-task.
    pub(crate) fn note_leaf_task(&self) {
        // lint: allow(relaxed, monotonic diagnostics counter; no data is published through it)
        self.leaf_tasks.fetch_add(1, Ordering::Relaxed);
    }

    /// True while the worker is up.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Fault injection: the worker "crashes" — all soft state is lost and
    /// queries against it fail until [`Worker::restart`].
    pub fn kill(&self) {
        self.alive.store(false, Ordering::SeqCst);
        self.datasets.lock().clear();
        self.comp_cache.clear();
    }

    /// Bring a crashed worker back, empty ("Worker nodes are stateless, so
    /// restarting the node after a failure is equivalent to deleting all
    /// cached datasets", §5.8).
    pub fn restart(&self) {
        self.alive.store(true, Ordering::SeqCst);
    }

    /// Drop all cached datasets but stay alive — models cache expiry or
    /// memory pressure; the next query triggers lazy reconstruction.
    pub fn evict_all(&self) {
        self.datasets.lock().clear();
        self.comp_cache.clear();
    }

    /// Drop one dataset and its cached summaries.
    pub fn evict(&self, id: DatasetId) {
        self.datasets.lock().remove(&id);
        self.comp_cache.evict_dataset(id);
    }

    /// Whether the worker currently materializes `id`.
    pub fn has_dataset(&self, id: DatasetId) -> bool {
        self.datasets.lock().contains_key(&id)
    }

    /// This worker's partitions of `id`, if materialized.
    pub fn partitions(&self, id: DatasetId) -> Option<Arc<Vec<TableView>>> {
        self.datasets.lock().get(&id).map(|e| e.views.clone())
    }

    /// The lineage-derived content version of `id`, if materialized.
    pub fn dataset_version(&self, id: DatasetId) -> Option<u64> {
        self.datasets.lock().get(&id).map(|e| e.version)
    }

    /// The content version a filter of `parent` by `predicate` would
    /// carry — the exact version [`Worker::filter`] assigns, computed
    /// without materializing anything. Fused queries key their cache
    /// entries on it, so a canonically-equal predicate hits the same
    /// entry whether or not the membership was ever materialized under a
    /// different textual spelling.
    pub fn filtered_version(&self, parent: DatasetId, predicate: &Predicate) -> Option<u64> {
        let (views, version) = {
            let d = self.datasets.lock();
            let e = d.get(&parent)?;
            (e.views.clone(), e.version)
        };
        let table: Option<&Table> = views.first().map(|v| v.table().as_ref());
        Some(filter_version(version, &predicate.canonical_bytes(table)))
    }

    /// Total rows across this worker's partitions of `id`.
    pub fn dataset_rows(&self, id: DatasetId) -> usize {
        self.partitions(id)
            .map(|p| p.iter().map(|v| v.len()).sum())
            .unwrap_or(0)
    }

    /// Approximate in-memory footprint of this worker's partitions of `id`,
    /// in bytes. Reflects the *encoded* column payloads (compressed columns
    /// report their packed size), so tests and capacity planning can assert
    /// the compression ratio a load achieved. Mapped (out-of-core) columns
    /// are *excluded* — they are file windows, not heap; see
    /// [`Worker::dataset_mapped_bytes`].
    pub fn dataset_heap_bytes(&self, id: DatasetId) -> usize {
        self.partitions(id)
            .map(|p| p.iter().map(|v| v.table().heap_bytes()).sum())
            .unwrap_or(0)
    }

    /// Bytes of `id`'s partitions that are windows over mapped files
    /// rather than owned heap payloads — the out-of-core complement of
    /// [`Worker::dataset_heap_bytes`]. Counts the *addressable* span;
    /// how much of it is actually resident is a property of the
    /// [`Worker::block_cache`], not the dataset.
    pub fn dataset_mapped_bytes(&self, id: DatasetId) -> usize {
        self.partitions(id)
            .map(|p| p.iter().map(|v| v.table().mapped_bytes()).sum())
            .unwrap_or(0)
    }

    /// The worker's block-residency cache (out-of-core sources charge
    /// faulted chunks here).
    pub fn block_cache(&self) -> &Arc<BlockCache> {
        &self.block_cache
    }

    /// Counter snapshot of the block-residency cache.
    pub fn block_cache_stats(&self) -> BlockCacheStats {
        self.block_cache.stats()
    }

    /// Rows loaded from sources so far.
    pub fn rows_loaded(&self) -> u64 {
        // lint: allow(relaxed, monotonic diagnostics counter; no data is published through it)
        self.rows_loaded.load(Ordering::Relaxed)
    }

    /// Encoded bytes of datasets loaded from sources so far (the in-memory
    /// footprint counterpart of [`Worker::rows_loaded`]).
    pub fn bytes_loaded(&self) -> u64 {
        // lint: allow(relaxed, monotonic diagnostics counter; no data is published through it)
        self.bytes_loaded.load(Ordering::Relaxed)
    }

    /// Sketch-result cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.comp_cache.stats().hits
    }

    /// The worker's sketch-result cache (execution tree, tests).
    pub fn cache(&self) -> &SketchCache {
        &self.comp_cache
    }

    /// Counter snapshot of the sketch-result cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.comp_cache.stats()
    }

    fn check_alive(&self) -> EngineResult<()> {
        if self.is_alive() {
            Ok(())
        } else {
            Err(EngineError::WorkerDown(self.id))
        }
    }

    /// Materialize a loaded dataset from its source (the leaf of every
    /// lineage chain; paper §5.7 "the recursion ends when data is read from
    /// disk").
    pub fn load(&self, id: DatasetId, spec: &SourceSpec) -> EngineResult<()> {
        self.fault_op(Some(id));
        self.check_alive()?;
        let source = self.sources.get(&spec.source)?;
        let tables = source.load_with_cache(
            self.id,
            self.num_workers,
            self.micropartition_rows,
            spec.snapshot,
            &self.block_cache,
        )?;
        let mut views = Vec::new();
        for t in tables {
            // Split oversized tables into micropartitions (paper §5.3) —
            // except mapped tables: slicing decodes every value, which
            // would fault the whole file in. They stay one partition and
            // rely on intra-partition leaf splitting for parallelism.
            if t.num_rows() > self.micropartition_rows && t.mapped_bytes() == 0 {
                for part in hillview_storage::partition_table(&t, self.micropartition_rows) {
                    views.push(TableView::full(Arc::new(part)));
                }
            } else {
                views.push(TableView::full(Arc::new(t)));
            }
        }
        let rows: usize = views.iter().map(|v| v.len()).sum();
        let bytes: usize = views.iter().map(|v| v.table().heap_bytes()).sum();
        // lint: allow(relaxed, monotonic diagnostics counters; the dataset itself is published via the mutex below)
        self.rows_loaded.fetch_add(rows as u64, Ordering::Relaxed);
        // lint: allow(relaxed, monotonic diagnostics counters; the dataset itself is published via the mutex below)
        self.bytes_loaded.fetch_add(bytes as u64, Ordering::Relaxed);
        self.datasets.lock().insert(
            id,
            DatasetEntry {
                views: Arc::new(views),
                version: load_version(spec),
            },
        );
        Ok(())
    }

    /// Materialize a filtered dataset: same tables, narrowed membership
    /// sets (paper §5.6). Partitions are filtered in parallel on the pool;
    /// each partition runs the block-wise predicate pipeline
    /// ([`hillview_columnar::predicate::filter_members`]) — frame-word
    /// evaluation with zone-map block skipping, intersected word-wise with
    /// the parent membership, no per-row id materialization.
    pub fn filter(
        self: &Arc<Self>,
        id: DatasetId,
        parent: DatasetId,
        predicate: &Predicate,
    ) -> EngineResult<()> {
        self.fault_op(Some(parent));
        self.check_alive()?;
        let version =
            self.filtered_version(parent, predicate)
                .ok_or(EngineError::DatasetMissing {
                    worker: self.id,
                    dataset: parent,
                })?;
        let parent_views = self.partitions(parent).ok_or(EngineError::DatasetMissing {
            worker: self.id,
            dataset: parent,
        })?;
        let n = parent_views.len();
        let (tx, rx) = crossbeam::channel::bounded(n.max(1));
        for (i, view) in parent_views.iter().enumerate() {
            let view = view.clone();
            let predicate = predicate.clone();
            let tx = tx.clone();
            self.pool.submit(move || {
                let result = (|| -> EngineResult<TableView> {
                    let members = filter_members(view.table(), &predicate, view.members())?;
                    Ok(TableView::with_members(
                        view.table().clone(),
                        Arc::new(members),
                    ))
                })();
                let _ = tx.send((i, result));
            });
        }
        drop(tx);
        let mut out: Vec<Option<TableView>> = vec![None; n];
        for _ in 0..n {
            let (i, r) = rx.recv().map_err(|_| EngineError::WorkerDown(self.id))?;
            out[i] = Some(r?);
        }
        let views: Vec<TableView> = out
            .into_iter()
            .enumerate()
            .map(|(i, v)| {
                v.ok_or_else(|| {
                    EngineError::Internal(format!("filter produced no result for partition {i}"))
                })
            })
            .collect::<EngineResult<_>>()?;
        self.datasets.lock().insert(
            id,
            DatasetEntry {
                views: Arc::new(views),
                version,
            },
        );
        Ok(())
    }

    /// Materialize a mapped dataset: each partition's table gains a derived
    /// column computed by the named UDF (paper §5.6). The derived column
    /// lives only in this soft state, recomputed on demand after eviction.
    pub fn map(
        self: &Arc<Self>,
        id: DatasetId,
        parent: DatasetId,
        udf: &str,
        new_column: &str,
    ) -> EngineResult<()> {
        self.fault_op(Some(parent));
        self.check_alive()?;
        let (parent_views, parent_version) = {
            let d = self.datasets.lock();
            let e = d.get(&parent).ok_or(EngineError::DatasetMissing {
                worker: self.id,
                dataset: parent,
            })?;
            (e.views.clone(), e.version)
        };
        let n = parent_views.len();
        let (tx, rx) = crossbeam::channel::bounded(n.max(1));
        for (i, view) in parent_views.iter().enumerate() {
            let view = view.clone();
            let udfs = self.udfs.clone();
            let udf = udf.to_string();
            let new_column = new_column.to_string();
            let tx = tx.clone();
            self.pool.submit(move || {
                let result = (|| -> EngineResult<TableView> {
                    let col = udfs
                        .materialize(&udf, view.table())
                        .map_err(EngineError::from)?;
                    let table = view.table().with_column(&new_column, col)?;
                    Ok(TableView::with_members(
                        Arc::new(table),
                        view.members().clone(),
                    ))
                })();
                let _ = tx.send((i, result));
            });
        }
        drop(tx);
        let mut out: Vec<Option<TableView>> = vec![None; n];
        for _ in 0..n {
            let (i, r) = rx.recv().map_err(|_| EngineError::WorkerDown(self.id))?;
            out[i] = Some(r?);
        }
        let views: Vec<TableView> = out
            .into_iter()
            .enumerate()
            .map(|(i, v)| {
                v.ok_or_else(|| {
                    EngineError::Internal(format!("map produced no result for partition {i}"))
                })
            })
            .collect::<EngineResult<_>>()?;
        self.datasets.lock().insert(
            id,
            DatasetEntry {
                views: Arc::new(views),
                version: map_version(parent_version, udf, new_column),
            },
        );
        Ok(())
    }
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Worker{}(alive={}, datasets={})",
            self.id,
            self.is_alive(),
            self.datasets.lock().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::FnSource;
    use hillview_columnar::column::{Column, I64Column};
    use hillview_columnar::{ColumnKind, Table, Value};

    fn test_worker() -> Arc<Worker> {
        let mut sources = SourceRegistry::new();
        sources.register(Arc::new(FnSource::new("nums", |w, _n, _mp, _snap| {
            let t = Table::builder()
                .column(
                    "X",
                    ColumnKind::Int,
                    Column::Int(I64Column::from_options(
                        (0..100).map(|i| Some(i + w as i64 * 1000)),
                    )),
                )
                .build()
                .unwrap();
            Ok(vec![t])
        })));
        let mut udfs = UdfRegistry::with_builtins();
        udfs.register_sum("X2", "X", "X");
        Arc::new(Worker::new(0, 2, 2, 30, 1 << 20, 0, sources, udfs))
    }

    fn spec() -> SourceSpec {
        SourceSpec {
            source: Arc::from("nums"),
            snapshot: 0,
        }
    }

    #[test]
    fn load_splits_into_micropartitions() {
        let w = test_worker();
        w.load(DatasetId(1), &spec()).unwrap();
        let parts = w.partitions(DatasetId(1)).unwrap();
        assert_eq!(parts.len(), 4, "100 rows at 30/partition");
        assert_eq!(w.dataset_rows(DatasetId(1)), 100);
        assert_eq!(w.rows_loaded(), 100);
    }

    #[test]
    fn load_reports_compressed_footprint() {
        // A sorted low-cardinality column: the encoding layer must land the
        // dataset at a fraction of the 8-bytes-per-value plain footprint.
        let mut sources = SourceRegistry::new();
        sources.register(Arc::new(FnSource::new("sorted", |_w, _n, _mp, _snap| {
            let t = Table::builder()
                .column(
                    "Bucket",
                    ColumnKind::Int,
                    Column::Int(I64Column::from_options((0..40_000).map(|i| Some(i / 100)))),
                )
                .build()
                .unwrap();
            Ok(vec![t])
        })));
        let w = Arc::new(Worker::new(
            0,
            1,
            1,
            10_000,
            1 << 20,
            0,
            sources,
            UdfRegistry::with_builtins(),
        ));
        w.load(
            DatasetId(1),
            &SourceSpec {
                source: Arc::from("sorted"),
                snapshot: 0,
            },
        )
        .unwrap();
        let plain_bytes = 40_000 * 8;
        let actual = w.dataset_heap_bytes(DatasetId(1));
        assert!(actual > 0);
        assert!(
            actual * 4 <= plain_bytes,
            "footprint {actual} not >=4x below plain {plain_bytes}"
        );
        assert_eq!(w.bytes_loaded(), actual as u64);
        w.evict(DatasetId(1));
        assert_eq!(w.dataset_heap_bytes(DatasetId(1)), 0);
    }

    #[test]
    fn filter_narrows_membership() {
        let w = test_worker();
        w.load(DatasetId(1), &spec()).unwrap();
        w.filter(
            DatasetId(2),
            DatasetId(1),
            &Predicate::range("X", 0.0, 50.0),
        )
        .unwrap();
        assert_eq!(w.dataset_rows(DatasetId(2)), 50);
        // Parent untouched.
        assert_eq!(w.dataset_rows(DatasetId(1)), 100);
        // Tables are shared, not copied.
        let p1 = w.partitions(DatasetId(1)).unwrap();
        let p2 = w.partitions(DatasetId(2)).unwrap();
        assert!(Arc::ptr_eq(p1[0].table(), p2[0].table()));
    }

    #[test]
    fn map_adds_derived_column() {
        let w = test_worker();
        w.load(DatasetId(1), &spec()).unwrap();
        w.map(DatasetId(3), DatasetId(1), "X2", "Doubled").unwrap();
        let parts = w.partitions(DatasetId(3)).unwrap();
        let t = parts[0].table();
        assert_eq!(t.get(5, "Doubled").unwrap(), Value::Double(10.0));
        assert_eq!(t.num_columns(), 2);
    }

    #[test]
    fn scripted_faults_evict_then_kill_surface_as_structured_errors() {
        let w = test_worker();
        w.load(DatasetId(1), &spec()).unwrap();
        w.arm_faults(Arc::new(FaultPlan::scripted([
            (
                FaultSite::WorkerOp {
                    worker: 0,
                    index: 0,
                },
                FaultAction::Evict,
            ),
            (
                FaultSite::WorkerOp {
                    worker: 0,
                    index: 1,
                },
                FaultAction::Kill,
            ),
        ])));
        // Op 0: the parent is evicted right before the filter reads it.
        let err = w
            .filter(
                DatasetId(2),
                DatasetId(1),
                &Predicate::range("X", 0.0, 50.0),
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::DatasetMissing { .. }), "{err}");
        // Op 1: the worker is killed at the next boundary.
        let err = w.load(DatasetId(1), &spec()).unwrap_err();
        assert!(matches!(err, EngineError::WorkerDown(0)), "{err}");
        // Disarmed + restarted, the worker heals completely.
        w.disarm_faults();
        w.restart();
        w.load(DatasetId(1), &spec()).unwrap();
        assert_eq!(w.dataset_rows(DatasetId(1)), 100);
    }

    #[test]
    fn filter_of_filter_composes() {
        let w = test_worker();
        w.load(DatasetId(1), &spec()).unwrap();
        w.filter(
            DatasetId(2),
            DatasetId(1),
            &Predicate::range("X", 0.0, 50.0),
        )
        .unwrap();
        w.filter(
            DatasetId(3),
            DatasetId(2),
            &Predicate::range("X", 25.0, 100.0),
        )
        .unwrap();
        assert_eq!(w.dataset_rows(DatasetId(3)), 25);
    }

    #[test]
    fn missing_parent_reports_dataset_missing() {
        let w = test_worker();
        let e = w
            .filter(DatasetId(9), DatasetId(8), &Predicate::True)
            .unwrap_err();
        assert!(matches!(
            e,
            EngineError::DatasetMissing {
                dataset: DatasetId(8),
                ..
            }
        ));
    }

    #[test]
    fn kill_drops_state_and_rejects_work() {
        let w = test_worker();
        w.load(DatasetId(1), &spec()).unwrap();
        w.kill();
        assert!(!w.is_alive());
        assert!(!w.has_dataset(DatasetId(1)));
        assert!(matches!(
            w.load(DatasetId(1), &spec()),
            Err(EngineError::WorkerDown(0))
        ));
        w.restart();
        assert!(w.is_alive());
        assert!(
            !w.has_dataset(DatasetId(1)),
            "restart does not restore data"
        );
        w.load(DatasetId(1), &spec()).unwrap();
        assert_eq!(w.dataset_rows(DatasetId(1)), 100);
    }

    #[test]
    fn eviction_is_soft() {
        let w = test_worker();
        w.load(DatasetId(1), &spec()).unwrap();
        w.evict(DatasetId(1));
        assert!(!w.has_dataset(DatasetId(1)));
        assert!(w.is_alive(), "eviction is not a crash");
    }

    #[test]
    fn sketch_cache_round_trip_and_eviction() {
        use crate::cache::{CacheKey, Lookup};
        use bytes::Bytes;
        let w = test_worker();
        let key = CacheKey {
            dataset: DatasetId(1),
            version: 42,
            query: [7, 8],
        };
        match w.cache().lookup(key) {
            Lookup::Miss(g) => g.complete(Bytes::from_static(b"summary")),
            _ => panic!("fresh cache must miss"),
        }
        match w.cache().lookup(key) {
            Lookup::Hit(b) => assert_eq!(b, Bytes::from_static(b"summary")),
            _ => panic!("stored entry must hit"),
        }
        assert_eq!(w.cache_hits(), 1);
        w.evict(DatasetId(1));
        assert!(
            matches!(w.cache().lookup(key), Lookup::Miss(_)),
            "evicting the dataset drops its cache entries"
        );
    }

    #[test]
    fn dataset_versions_chain_through_lineage() {
        let w = test_worker();
        w.load(DatasetId(1), &spec()).unwrap();
        let base = w.dataset_version(DatasetId(1)).unwrap();
        // Reload after eviction: same spec, same version.
        w.evict(DatasetId(1));
        w.load(DatasetId(1), &spec()).unwrap();
        assert_eq!(w.dataset_version(DatasetId(1)).unwrap(), base);
        // A different snapshot is different content.
        w.load(
            DatasetId(5),
            &SourceSpec {
                source: Arc::from("nums"),
                snapshot: 1,
            },
        )
        .unwrap();
        assert_ne!(w.dataset_version(DatasetId(5)).unwrap(), base);
        // Canonically-equal predicates derive the same filtered version;
        // semantically distinct ones never do.
        let a = Predicate::range("X", 0.0, 50.0).and(Predicate::range("X", 10.0, 100.0));
        let b = Predicate::range("X", 10.0, 100.0).and(Predicate::range("X", 0.0, 50.0));
        let c = Predicate::range("X", 0.0, 49.0);
        let va = w.filtered_version(DatasetId(1), &a).unwrap();
        assert_eq!(va, w.filtered_version(DatasetId(1), &b).unwrap());
        assert_ne!(va, w.filtered_version(DatasetId(1), &c).unwrap());
        // Materializing the filter assigns exactly the predicted version.
        w.filter(DatasetId(2), DatasetId(1), &a).unwrap();
        assert_eq!(w.dataset_version(DatasetId(2)).unwrap(), va);
        // Mapped datasets fold the UDF identity in.
        w.map(DatasetId(3), DatasetId(1), "X2", "Doubled").unwrap();
        let vm = w.dataset_version(DatasetId(3)).unwrap();
        assert_ne!(vm, base);
        w.map(DatasetId(4), DatasetId(1), "X2", "Tripled").unwrap();
        assert_ne!(w.dataset_version(DatasetId(4)).unwrap(), vm);
    }

    #[test]
    fn unknown_source_is_unregistered() {
        let w = test_worker();
        let bad = SourceSpec {
            source: Arc::from("nope"),
            snapshot: 0,
        };
        assert!(matches!(
            w.load(DatasetId(1), &bad),
            Err(EngineError::Unregistered(_))
        ));
    }

    #[test]
    fn unknown_udf_errors() {
        let w = test_worker();
        w.load(DatasetId(1), &spec()).unwrap();
        assert!(w.map(DatasetId(2), DatasetId(1), "nope", "Y").is_err());
    }
}
