//! The simulated cluster and its execution trees.
//!
//! A query runs as the paper's two-phase tree (Fig. 1): the root broadcasts
//! the sketch to every worker's aggregation node; each aggregation node
//! fans leaf tasks onto the worker's thread pool, merges completions, and
//! — every [`ClusterConfig::batch_interval`] — ships its current partial
//! merge to the root ("nodes periodically propagate partially merged
//! results of the vizketch without waiting for all children to respond",
//! §5.3). The root folds per-worker partials, streams progressive results
//! to the client callback, and returns the final merge. Every edge message
//! is wire-encoded and byte-counted.
//!
//! ## Intra-partition parallelism
//!
//! A leaf is no longer one task per micropartition: for splittable
//! sketches, the initial per-partition task *recursively splits* its
//! row range in balanced halves (`SplittableSelection`) until each piece
//! holds at most [`ClusterConfig::leaf_grain_rows`] selected rows, pushing
//! the peeled halves onto the pool's work-stealing deques. Idle pool
//! threads steal the largest pending pieces, so one skewed micropartition
//! saturates every core instead of serializing the query.
//!
//! Sub-task partials arrive in completion order and feed the progressive
//! partial stream, but the *final* worker summary folds them sorted by
//! `(partition, range start)`. Split boundaries depend only on the
//! membership shape and the (fixed) grain, so the folded result is a pure
//! function of `(data, sketch, seed, grain)` — bit-identical across thread
//! counts, steal interleavings, and replay after failures (§5.8). Progress
//! is reported in row-weighted work units per completed sub-task.

use crate::cache::{CacheKey, CacheStats, Lookup};
use crate::dataset::{DatasetId, SourceRegistry, SourceSpec};
use crate::erased::ErasedSketch;
use crate::error::{EngineError, EngineResult};
use crate::fault::{self, FaultAction, FaultPlan, FaultSite};
use crate::progress::{CancellationToken, Partial, PartialCallback};
use crate::worker::Worker;
use bytes::Bytes;
use hillview_columnar::udf::UdfRegistry;
use hillview_columnar::{
    estimate_selectivity, fnv1a as fnv_mix, Predicate, SelectivityEstimate, FNV_OFFSET,
};
use hillview_net::{
    link_pair, FrameFault, LinkConfig, LinkSender, Wire as _, WireReader, WireWriter,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cluster topology and timing parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated servers.
    pub workers: usize,
    /// Pool threads per server (the paper's cores).
    pub threads_per_worker: usize,
    /// Rows per micropartition (paper §5.3: 10–20M; scaled down here).
    pub micropartition_rows: usize,
    /// Partial-result aggregation window (paper §5.3: 100 ms).
    pub batch_interval: Duration,
    /// Delay model for tree edges.
    pub link: LinkConfig,
    /// Target selected rows per leaf sub-task: a splittable sketch's
    /// partition is recursively halved until each piece holds at most this
    /// many rows. Must be a pure config constant (never derived from load
    /// or thread count) — the split plan determines the floating-point
    /// fold structure, so it must be identical across runs and replays for
    /// results to reproduce bit-for-bit (§5.8).
    pub leaf_grain_rows: usize,
    /// Liveness bound: if the root hears nothing from a worker's
    /// aggregation node for this long (summaries *or* heartbeats — nodes
    /// heartbeat every [`ClusterConfig::batch_interval`] even when idle),
    /// the worker is declared down. Must comfortably exceed the batch
    /// interval plus worst-case link delay, or healthy-but-slow workers
    /// get falsely convicted.
    pub worker_timeout: Duration,
    /// Byte budget of each worker's sketch-result cache (§5.4): merged
    /// worker-level summaries, LRU-evicted past this bound.
    pub cache_budget_bytes: usize,
    /// Byte budget of each worker's block-residency cache: chunks of
    /// mapped (out-of-core) columns faulted in by scans are charged here,
    /// and — under the `ooc` feature — evicted LRU past this bound so a
    /// worker can browse datasets far larger than its memory. `0` means
    /// unbounded. Overridable at cluster construction with the
    /// `HILLVIEW_BLOCK_CACHE_BYTES` environment variable (CI shrinks it to
    /// force eviction churn without rebuilding configs).
    pub block_cache_bytes: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 2,
            threads_per_worker: 2,
            micropartition_rows: 50_000,
            batch_interval: Duration::from_millis(100),
            link: LinkConfig::instant(),
            leaf_grain_rows: 65_536,
            worker_timeout: Duration::from_secs(2),
            cache_budget_bytes: 32 << 20,
            block_cache_bytes: 256 << 20,
        }
    }
}

impl ClusterConfig {
    /// Small fast topology for unit tests.
    pub fn test() -> Self {
        ClusterConfig {
            workers: 2,
            threads_per_worker: 2,
            micropartition_rows: 1_000,
            batch_interval: Duration::from_millis(2),
            link: LinkConfig::instant(),
            leaf_grain_rows: 65_536,
            worker_timeout: Duration::from_millis(500),
            cache_budget_bytes: 32 << 20,
            block_cache_bytes: 256 << 20,
        }
    }

    /// The effective block-cache budget: the `HILLVIEW_BLOCK_CACHE_BYTES`
    /// environment variable when set and parseable, else
    /// [`ClusterConfig::block_cache_bytes`].
    pub fn effective_block_cache_bytes(&self) -> usize {
        std::env::var("HILLVIEW_BLOCK_CACHE_BYTES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(self.block_cache_bytes)
    }
}

/// Per-query options.
#[derive(Clone)]
pub struct QueryOptions {
    /// Seed for randomized sketches (logged for replay determinism, §5.8).
    pub seed: u64,
    /// Cooperative cancellation.
    pub cancel: CancellationToken,
    /// Client callback for progressive results.
    pub on_partial: Option<PartialCallback>,
    /// Use the per-worker sketch-result cache (on by default). The key is
    /// *structural* — dataset lineage version (canonical predicate bytes
    /// folded in for fused trees) × 128-bit sketch identity — so this is
    /// purely an off-switch for measurements and degraded attempts, never
    /// a correctness knob. Sketches without a
    /// [cache identity](crate::erased::ErasedSketch::cache_identity)
    /// (seed-dependent sampling, positional kernels) never cache
    /// regardless (§5.4: only deterministic summaries are sound).
    pub cache: bool,
    /// Total wall-clock budget for the query; when exceeded the tree is
    /// torn down and the query fails with
    /// [`EngineError::DeadlineExceeded`]. `None` means unbounded (but the
    /// per-worker [`ClusterConfig::worker_timeout`] still catches silent
    /// workers).
    pub deadline: Option<Duration>,
    /// Graceful degradation (opt-in): when `true`, the
    /// [`Engine`](crate::engine::Engine) may — after exhausting its retry budget —
    /// return a summary folded from the surviving workers only, honestly
    /// labelled with [`QueryOutcome::coverage`] `< 1` and the failed
    /// worker set, instead of an error.
    pub allow_degraded: bool,
    /// Tolerate worker failures in this single tree: a failed worker is
    /// excluded from the fold instead of failing the query. Set internally
    /// by the engine's final degraded attempt; hidden because outcomes
    /// bypass recovery/replay — use [`QueryOptions::allow_degraded`].
    #[doc(hidden)]
    pub tolerate_failures: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            seed: 0,
            cancel: CancellationToken::default(),
            on_partial: None,
            cache: true,
            deadline: None,
            allow_degraded: false,
            tolerate_failures: false,
        }
    }
}

impl std::fmt::Debug for QueryOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QueryOptions(seed={}, cache={})", self.seed, self.cache)
    }
}

/// Outcome of one query: the final summary bytes plus traffic/timing stats.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Final merged summary, wire-encoded.
    pub bytes: Bytes,
    /// Wall-clock duration.
    pub duration: Duration,
    /// Bytes received by the root across the query.
    pub root_bytes: u64,
    /// Messages received by the root.
    pub root_messages: u64,
    /// Time until the first partial result reached the client.
    pub first_partial: Option<Duration>,
    /// Number of partial updates delivered.
    pub partials: usize,
    /// Fraction of the estimated total work represented in the final
    /// summary. `1.0` for a complete result; `< 1.0` only for a degraded
    /// result (failed workers excluded under
    /// [`QueryOptions::allow_degraded`]), estimated with the same
    /// machinery as the progressive-progress fraction.
    pub coverage: f64,
    /// Workers whose contribution is missing from a degraded result
    /// (empty for complete results).
    pub failed_workers: Vec<usize>,
}

/// One message from a worker's aggregation node to the root. Progress is
/// in row-weighted work units (selected rows + 1 per micropartition), so
/// split sub-tasks advance the bar smoothly.
struct WorkerMsg {
    worker: u32,
    work_done: u64,
    work_total: u64,
    is_final: bool,
    payload: MsgPayload,
}

enum MsgPayload {
    Summary(Vec<u8>),
    DatasetMissing(u64),
    WorkerDown,
    Error(String),
    /// Liveness beacon: sent on every batch tick with no new merge so the
    /// root's `worker_timeout` sweep can tell "slow" from "dead".
    Heartbeat,
    /// A leaf task (or the aggregation node itself) panicked; carries the
    /// panic message so the root rebuilds a structured
    /// [`EngineError::LeafPanicked`].
    LeafPanicked(String),
}

/// FNV-1a over a frame body. Root-link frames carry this checksum so a
/// corrupted frame (fault injection or a real flaky transport) is
/// *detected* and dropped instead of silently merging garbage — a single
/// flipped bit inside summary bytes would otherwise decode fine and skew
/// the result.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xCBF29CE484222325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

impl WorkerMsg {
    fn encode(&self) -> Bytes {
        let body = self.encode_body();
        let mut framed = WireWriter::new();
        framed.put_varint(fnv1a(&body));
        framed.put_bytes(&body);
        framed.finish()
    }

    fn encode_body(&self) -> Bytes {
        let mut w = WireWriter::new();
        w.put_varint(self.worker as u64);
        w.put_varint(self.work_done);
        w.put_varint(self.work_total);
        w.put_u8(self.is_final as u8);
        match &self.payload {
            MsgPayload::Summary(b) => {
                w.put_u8(0);
                w.put_bytes(b);
            }
            MsgPayload::DatasetMissing(d) => {
                w.put_u8(1);
                w.put_varint(*d);
            }
            MsgPayload::WorkerDown => w.put_u8(2),
            MsgPayload::Error(e) => {
                w.put_u8(3);
                w.put_str(e);
            }
            MsgPayload::Heartbeat => w.put_u8(4),
            MsgPayload::LeafPanicked(m) => {
                w.put_u8(5);
                w.put_str(m);
            }
        }
        w.finish()
    }

    fn decode(bytes: Bytes) -> EngineResult<Self> {
        let mut r = WireReader::new(bytes);
        let sum = r.get_varint()?;
        let body = r.get_bytes()?;
        if fnv1a(&body) != sum {
            return Err(EngineError::Wire("WorkerMsg checksum mismatch".into()));
        }
        let mut r = WireReader::new(Bytes::from(body));
        let worker = u32::decode(&mut r)?;
        let work_done = r.get_varint()?;
        let work_total = r.get_varint()?;
        let is_final = r.get_u8()? != 0;
        let payload = match r.get_u8()? {
            0 => MsgPayload::Summary(r.get_bytes()?),
            1 => MsgPayload::DatasetMissing(r.get_varint()?),
            2 => MsgPayload::WorkerDown,
            3 => MsgPayload::Error(r.get_str()?),
            4 => MsgPayload::Heartbeat,
            5 => MsgPayload::LeafPanicked(r.get_str()?),
            tag => {
                return Err(EngineError::Wire(format!("bad WorkerMsg tag {tag}")));
            }
        };
        Ok(WorkerMsg {
            worker,
            work_done,
            work_total,
            is_final,
            payload,
        })
    }
}

/// The simulated cluster: N workers plus the root's view of them.
pub struct Cluster {
    cfg: ClusterConfig,
    workers: Vec<Arc<Worker>>,
    faults: parking_lot::Mutex<Option<Arc<FaultPlan>>>,
}

impl Cluster {
    /// Build a cluster; every worker shares the source and UDF registries.
    pub fn new(cfg: ClusterConfig, sources: SourceRegistry, udfs: UdfRegistry) -> Arc<Self> {
        let block_cache_bytes = cfg.effective_block_cache_bytes();
        let workers = (0..cfg.workers)
            .map(|id| {
                Arc::new(Worker::new(
                    id,
                    cfg.workers,
                    cfg.threads_per_worker,
                    cfg.micropartition_rows,
                    cfg.cache_budget_bytes,
                    block_cache_bytes,
                    sources.clone(),
                    udfs.clone(),
                ))
            })
            .collect();
        Arc::new(Cluster {
            cfg,
            workers,
            faults: parking_lot::Mutex::new(None),
        })
    }

    /// Arm a deterministic fault plan on the whole tree: worker operation
    /// boundaries, leaf tasks, and every aggregation-node→root link consult
    /// it. The plan's epoch is bumped once per execution-tree launch so
    /// random plans re-roll on retry (§5.8 determinism: the schedule is
    /// still a pure function of the seed and the attempt sequence).
    pub fn arm_faults(&self, plan: FaultPlan) {
        let plan = Arc::new(plan);
        *self.faults.lock() = Some(plan.clone());
        for w in &self.workers {
            w.arm_faults(plan.clone());
        }
    }

    /// Remove any armed fault plan from the cluster and its workers.
    pub fn disarm_faults(&self) {
        *self.faults.lock() = None;
        for w in &self.workers {
            w.disarm_faults();
        }
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.faults.lock().clone()
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Access a worker (tests, fault injection).
    pub fn worker(&self, i: usize) -> &Arc<Worker> {
        &self.workers[i]
    }

    /// Total rows of `dataset` across live workers.
    pub fn dataset_rows(&self, dataset: DatasetId) -> usize {
        self.workers.iter().map(|w| w.dataset_rows(dataset)).sum()
    }

    /// Total encoded in-memory bytes of `dataset` across live workers
    /// (compressed columns report their packed size). Mapped out-of-core
    /// columns are excluded; see [`Cluster::dataset_mapped_bytes`].
    pub fn dataset_heap_bytes(&self, dataset: DatasetId) -> usize {
        self.workers
            .iter()
            .map(|w| w.dataset_heap_bytes(dataset))
            .sum()
    }

    /// Total file-window bytes of `dataset` across live workers: the
    /// addressable span of mapped (out-of-core) columns. Residency of that
    /// span is bounded by each worker's block cache, not by this figure.
    pub fn dataset_mapped_bytes(&self, dataset: DatasetId) -> usize {
        self.workers
            .iter()
            .map(|w| w.dataset_mapped_bytes(dataset))
            .sum()
    }

    /// Aggregate block-residency cache counters across all workers
    /// (faults, faulted bytes, hits, evictions; budgets and resident
    /// bytes sum).
    pub fn block_cache_stats(&self) -> hillview_columnar::BlockCacheStats {
        let mut acc = hillview_columnar::BlockCacheStats::default();
        for w in &self.workers {
            acc.merge(&w.block_cache_stats());
        }
        acc
    }

    /// Drop all cached data everywhere (cold-start experiments).
    pub fn evict_all(&self) {
        for w in &self.workers {
            w.evict_all();
        }
    }

    /// Aggregate sketch-result cache counters across all workers
    /// (hits/misses/insertions/evictions/coalesced flights, resident
    /// entries and bytes). Budgets sum, so `bytes <= budget` still holds
    /// cluster-wide.
    pub fn cache_stats(&self) -> CacheStats {
        self.workers
            .iter()
            .map(|w| w.cache_stats())
            .fold(CacheStats::default(), CacheStats::merge)
    }

    /// Fingerprint of `dataset`'s lineage-derived content version across
    /// the workers currently materializing it. Changes exactly when the
    /// dataset's contents change under the same id — e.g. a root-load
    /// [`reload`](crate::engine::Engine::reload) at a new snapshot — so
    /// cached planning artifacts (selectivity estimates) can detect
    /// staleness without re-probing. Workers without the dataset
    /// contribute nothing; a fully-evicted dataset fingerprints as the
    /// empty fold, which conservatively invalidates.
    pub fn dataset_version_fingerprint(&self, dataset: DatasetId) -> u64 {
        let mut h = FNV_OFFSET;
        for w in &self.workers {
            if let Some(v) = w.dataset_version(dataset) {
                h = fnv_mix(h, &v.to_le_bytes());
            }
        }
        h
    }

    /// Estimate the selectivity of `predicate` over `dataset` from zone
    /// maps plus a bounded per-partition block probe — no full scan, no
    /// execution tree. Dead workers and missing partitions contribute
    /// nothing (a conservative estimate is fine: the planner only uses
    /// this to rank fuse vs. materialize, and `blocks == 0` degrades to
    /// "never promote").
    pub fn estimate_filter(
        &self,
        dataset: DatasetId,
        predicate: &Predicate,
    ) -> SelectivityEstimate {
        let mut est = SelectivityEstimate::default();
        for w in &self.workers {
            if !w.is_alive() {
                continue;
            }
            let Some(views) = w.partitions(dataset) else {
                continue;
            };
            for v in views.iter() {
                if let Ok(e) = estimate_selectivity(v.table(), predicate, 2) {
                    est = est.merge(&e);
                }
            }
        }
        est
    }

    /// Execute a dataset-producing operation on every worker in parallel.
    fn on_all_workers(
        &self,
        f: impl Fn(&Arc<Worker>) -> EngineResult<()> + Send + Sync,
    ) -> EngineResult<()> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = self.workers.iter().map(|w| scope.spawn(|| f(w))).collect();
            let mut result = Ok(());
            for (worker, h) in handles.into_iter().enumerate() {
                // A panicking worker op must not take the root down with
                // it: map the panic into a structured, retryable error.
                let r = h.join().unwrap_or_else(|payload| {
                    Err(EngineError::LeafPanicked {
                        worker,
                        message: fault::panic_message(payload),
                    })
                });
                if result.is_ok() {
                    result = r;
                }
            }
            result
        })
    }

    /// Load a dataset on every worker.
    pub fn load(&self, id: DatasetId, spec: &SourceSpec) -> EngineResult<()> {
        self.on_all_workers(|w| w.load(id, spec))
    }

    /// Load on one worker only (lineage replay).
    pub fn load_on(&self, worker: usize, id: DatasetId, spec: &SourceSpec) -> EngineResult<()> {
        self.workers[worker].load(id, spec)
    }

    /// Filter a dataset on every worker.
    pub fn filter(&self, id: DatasetId, parent: DatasetId, p: &Predicate) -> EngineResult<()> {
        self.on_all_workers(|w| w.filter(id, parent, p))
    }

    /// Filter on one worker only (lineage replay).
    pub fn filter_on(
        &self,
        worker: usize,
        id: DatasetId,
        parent: DatasetId,
        p: &Predicate,
    ) -> EngineResult<()> {
        self.workers[worker].filter(id, parent, p)
    }

    /// Map a dataset on every worker.
    pub fn map(
        &self,
        id: DatasetId,
        parent: DatasetId,
        udf: &str,
        new_column: &str,
    ) -> EngineResult<()> {
        self.on_all_workers(|w| w.map(id, parent, udf, new_column))
    }

    /// Map on one worker only (lineage replay).
    pub fn map_on(
        &self,
        worker: usize,
        id: DatasetId,
        parent: DatasetId,
        udf: &str,
        new_column: &str,
    ) -> EngineResult<()> {
        self.workers[worker].map(id, parent, udf, new_column)
    }

    /// Run an erased sketch over `dataset` as one execution tree.
    pub fn run_erased(
        &self,
        dataset: DatasetId,
        sketch: &Arc<dyn ErasedSketch>,
        opts: &QueryOptions,
    ) -> EngineResult<QueryOutcome> {
        self.run_erased_filtered(dataset, None, sketch, opts)
    }

    /// Run an erased sketch over `dataset`, optionally narrowed by a fused
    /// predicate: instead of materializing a filtered membership first,
    /// every leaf compiles `filter` into the sketch's own block pass — the
    /// predicate evaluates per 64-row frame, its match word ANDs into the
    /// selection word, and surviving lanes feed the kernel directly (one
    /// decode per frame, zone maps pruning for both stages).
    pub fn run_erased_filtered(
        &self,
        dataset: DatasetId,
        filter: Option<&Predicate>,
        sketch: &Arc<dyn ErasedSketch>,
        opts: &QueryOptions,
    ) -> EngineResult<QueryOutcome> {
        let filter: Option<Arc<Predicate>> = filter.map(|p| Arc::new(p.clone()));
        let started = Instant::now();
        let (tx, rx) = link_pair(self.cfg.link);
        // Internal token: stops this tree's outstanding work on errors
        // without cancelling the caller's query (which may retry after
        // recovery). Leaves observe both tokens.
        let tree_cancel = CancellationToken::new();

        // One epoch per tree launch: a random fault plan re-rolls every
        // site on retry (transient faults heal), while the schedule stays
        // a pure function of (seed, attempt index) — §5.8 replayability.
        let plan = self.fault_plan();
        if let Some(p) = &plan {
            p.bump_epoch();
        }

        // Structural query identity: half of the sketch-result cache key.
        // `None` (caller opted out, or the sketch has no deterministic
        // identity) disables caching for this tree on every worker.
        let query: Option<[u64; 2]> = if opts.cache {
            sketch
                .cache_identity()
                .map(|ident| query_hash(sketch.name(), &ident))
        } else {
            None
        };

        // Launch one aggregation node per worker.
        let mut aggregators = Vec::with_capacity(self.workers.len());
        for worker in &self.workers {
            let worker = worker.clone();
            let sketch = sketch.clone();
            // Each aggregator gets its own link clone; arming the
            // frame-fault hook gives it a fresh sequence counter, so a
            // `Frame { worker, index }` site names the index-th frame
            // *this* node sends — deterministic under replay.
            let tx = match &plan {
                Some(p) => {
                    let p = p.clone();
                    let wid = worker.id;
                    tx.clone().with_faults(Arc::new(move |index, _len| {
                        match p.decide(FaultSite::Frame { worker: wid, index }) {
                            Some(FaultAction::DropFrame) => FrameFault::Drop,
                            Some(FaultAction::DuplicateFrame) => FrameFault::Duplicate,
                            Some(FaultAction::CorruptFrame(seed)) => FrameFault::Corrupt { seed },
                            Some(FaultAction::DelayFrame(d)) => FrameFault::Delay(d),
                            _ => FrameFault::Deliver,
                        }
                    }))
                }
                None => tx.clone(),
            };
            let cancel = opts.cancel.clone();
            let tree = tree_cancel.clone();
            let seed = opts.seed;
            let batch = self.cfg.batch_interval;
            let grain = self.cfg.leaf_grain_rows;
            let flt = filter.clone();
            aggregators.push(std::thread::spawn(move || {
                aggregate_worker(
                    worker, sketch, dataset, flt, seed, cancel, tree, tx, batch, query, grain,
                );
            }));
        }
        drop(tx);

        // Root merge loop.
        let n = self.workers.len();
        let mut latest: Vec<Option<Bytes>> = vec![None; n];
        let mut done = vec![0u64; n];
        let mut total = vec![0u64; n];
        // A worker is *resolved* once its contribution is settled: final
        // summary received, or (tolerate mode) failure accepted and the
        // worker excluded from the fold.
        let mut resolved = vec![false; n];
        let mut final_seen = vec![false; n];
        let mut resolved_count = 0usize;
        let mut failed_workers: Vec<usize> = Vec::new();
        let mut last_heard: Vec<Instant> = vec![Instant::now(); n];
        let mut first_partial = None;
        let mut partials = 0usize;
        let mut error: Option<EngineError> = None;
        let tolerate = opts.tolerate_failures;

        // The single failure transition, shared by explicit failure
        // frames, the liveness sweep, and channel disconnect. Free
        // function (not a closure) so call sites can hold other borrows.
        #[allow(clippy::too_many_arguments)]
        fn fail_worker(
            w: usize,
            e: EngineError,
            tolerate: bool,
            resolved: &mut [bool],
            latest: &mut [Option<Bytes>],
            failed_workers: &mut Vec<usize>,
            resolved_count: &mut usize,
            error: &mut Option<EngineError>,
        ) {
            if tolerate {
                if !resolved[w] {
                    resolved[w] = true;
                    latest[w] = None;
                    failed_workers.push(w);
                    *resolved_count += 1;
                }
            } else if error.is_none() {
                *error = Some(e);
            }
        }

        while resolved_count < n && error.is_none() {
            if opts.cancel.is_cancelled() {
                break;
            }
            if let Some(d) = opts.deadline {
                if started.elapsed() > d {
                    error = Some(EngineError::DeadlineExceeded {
                        elapsed: started.elapsed(),
                    });
                    break;
                }
            }
            // Liveness sweep on every iteration (heartbeats from healthy
            // workers keep the channel busy, so a quiet-tick-only sweep
            // could starve): a worker silent past `worker_timeout` —
            // aggregation nodes heartbeat every batch tick even when no
            // leaf has finished — is declared down.
            for w in 0..n {
                if !resolved[w] && last_heard[w].elapsed() > self.cfg.worker_timeout {
                    fail_worker(
                        w,
                        EngineError::WorkerDown(w),
                        tolerate,
                        &mut resolved,
                        &mut latest,
                        &mut failed_workers,
                        &mut resolved_count,
                        &mut error,
                    );
                }
            }
            let frame = match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(Some(f)) => f,
                Ok(None) => continue,
                Err(_) => {
                    // Every aggregation node hung up. Any unresolved
                    // worker died without shipping a final frame (its
                    // thread panicked past all guards, or its finale was
                    // lost) — this must break the loop, never hang.
                    for w in 0..n {
                        if !resolved[w] {
                            fail_worker(
                                w,
                                EngineError::WorkerDown(w),
                                tolerate,
                                &mut resolved,
                                &mut latest,
                                &mut failed_workers,
                                &mut resolved_count,
                                &mut error,
                            );
                        }
                    }
                    break;
                }
            };
            let msg = match WorkerMsg::decode(frame) {
                Ok(m) if (m.worker as usize) < n => m,
                // Corrupt frame (checksum mismatch, bad tag, truncated,
                // or an out-of-range worker id): drop it. The sender is
                // alive and its next batch tick re-ships the running
                // summary; a lost *final* frame is converted to a worker
                // failure by the liveness sweep. Never fatal at the root.
                _ => continue,
            };
            let w = msg.worker as usize;
            last_heard[w] = Instant::now();
            if resolved[w] {
                // Duplicate final or frames racing a failure verdict.
                continue;
            }
            match msg.payload {
                MsgPayload::Summary(bytes) => {
                    latest[w] = Some(Bytes::from(bytes));
                    done[w] = msg.work_done;
                    total[w] = msg.work_total;
                    if msg.is_final {
                        final_seen[w] = true;
                        resolved[w] = true;
                        resolved_count += 1;
                    }
                    // Progressive delivery to the client.
                    if let Some(cb) = &opts.on_partial {
                        let merged = self.fold(sketch, &latest)?;
                        // Workers that have not reported yet contribute an
                        // estimated work total (the mean of reporting
                        // workers) so early progress is not overstated.
                        let reported: Vec<u64> = total.iter().copied().filter(|&t| t > 0).collect();
                        let mean = (reported.iter().sum::<u64>() as f64
                            / reported.len().max(1) as f64)
                            .max(1.0);
                        let total_work: f64 = total
                            .iter()
                            .map(|&t| if t == 0 { mean } else { t as f64 })
                            .sum();
                        let fraction = if total_work == 0.0 {
                            0.0
                        } else {
                            (done.iter().sum::<u64>() as f64 / total_work).min(1.0)
                        };
                        if first_partial.is_none() {
                            first_partial = Some(started.elapsed());
                        }
                        partials += 1;
                        cb(&Partial {
                            fraction,
                            work_done: done.iter().sum(),
                            work_total: total.iter().sum(),
                            summary: merged,
                        });
                    } else if first_partial.is_none() {
                        first_partial = Some(started.elapsed());
                    }
                }
                MsgPayload::Heartbeat => {
                    done[w] = msg.work_done;
                    total[w] = msg.work_total;
                }
                MsgPayload::DatasetMissing(d) => fail_worker(
                    w,
                    EngineError::DatasetMissing {
                        worker: w,
                        dataset: DatasetId(d),
                    },
                    tolerate,
                    &mut resolved,
                    &mut latest,
                    &mut failed_workers,
                    &mut resolved_count,
                    &mut error,
                ),
                MsgPayload::WorkerDown => fail_worker(
                    w,
                    EngineError::WorkerDown(w),
                    tolerate,
                    &mut resolved,
                    &mut latest,
                    &mut failed_workers,
                    &mut resolved_count,
                    &mut error,
                ),
                MsgPayload::LeafPanicked(m) => fail_worker(
                    w,
                    EngineError::LeafPanicked {
                        worker: w,
                        message: m,
                    },
                    tolerate,
                    &mut resolved,
                    &mut latest,
                    &mut failed_workers,
                    &mut resolved_count,
                    &mut error,
                ),
                MsgPayload::Error(e) => fail_worker(
                    w,
                    EngineError::Sketch(e),
                    tolerate,
                    &mut resolved,
                    &mut latest,
                    &mut failed_workers,
                    &mut resolved_count,
                    &mut error,
                ),
            }
        }

        // Stop outstanding work, then release aggregator threads.
        if error.is_some() || opts.cancel.is_cancelled() || !failed_workers.is_empty() {
            tree_cancel.cancel();
        }
        let root_bytes = rx.metrics().bytes();
        let root_messages = rx.metrics().messages();
        drop(rx);
        for a in aggregators {
            let _ = a.join();
        }
        if let Some(e) = error {
            return Err(e);
        }

        // Degraded-mode accounting. Zero survivors is not a result.
        if !failed_workers.is_empty() && failed_workers.len() == n {
            return Err(EngineError::WorkerDown(failed_workers[0]));
        }
        let coverage = if failed_workers.is_empty() {
            1.0
        } else {
            // Same estimation the progress fraction uses: a worker that
            // never reported a work total contributes the mean of those
            // that did, so coverage is not overstated by silent failures.
            let reported: Vec<u64> = total.iter().copied().filter(|&t| t > 0).collect();
            let mean =
                (reported.iter().sum::<u64>() as f64 / reported.len().max(1) as f64).max(1.0);
            let est: Vec<f64> = total
                .iter()
                .map(|&t| if t == 0 { mean } else { t as f64 })
                .collect();
            let covered: f64 = (0..n).filter(|&w| final_seen[w]).map(|w| est[w]).sum();
            let total_est: f64 = est.iter().sum();
            if total_est == 0.0 {
                0.0
            } else {
                (covered / total_est).clamp(0.0, 1.0)
            }
        };

        let merged = self.fold(sketch, &latest)?;
        Ok(QueryOutcome {
            bytes: merged,
            duration: started.elapsed(),
            root_bytes,
            root_messages,
            first_partial,
            partials,
            coverage,
            failed_workers,
        })
    }

    /// Fold per-worker partials with the sketch's merge, starting from its
    /// identity.
    fn fold(
        &self,
        sketch: &Arc<dyn ErasedSketch>,
        latest: &[Option<Bytes>],
    ) -> EngineResult<Bytes> {
        let mut acc = sketch.identity_bytes();
        for slot in latest.iter().flatten() {
            acc = sketch.merge_bytes(&acc, slot)?;
        }
        Ok(acc)
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cluster({} workers)", self.workers.len())
    }
}

/// One sub-task completion flowing from a pool thread to the aggregation
/// node: which partition, where its range started (the fold key), how many
/// work units it covered, and the summary bytes (or `None` if skipped by
/// cancellation).
struct LeafMsg {
    partition: u32,
    lo: usize,
    work: u64,
    result: EngineResult<Option<Bytes>>,
}

/// Execute one leaf sub-task. While the piece is larger than `grain`
/// selected rows, peel off balanced right halves onto the pool — they land
/// on this thread's deque, where idle siblings steal them — then summarize
/// the remaining leftmost piece and report it keyed by range start.
///
/// With a fused `filter`, the leaf calls the sketch's filtered entry
/// points: the predicate is compiled once per leaf and evaluated inside
/// the block scan, so no filtered membership ever exists. Split bounds and
/// work weights stay those of the *unfiltered* membership — filtering
/// narrows rows, never renumbers them — so the split plan (and therefore
/// the deterministic fold order) is identical with and without a filter.
///
/// `bonus` is 1 on the initial per-partition task (the extra work unit
/// that makes empty partitions observable) and 0 on split-off halves;
/// weights are conserved exactly across splits, so the aggregation node
/// detects completion when reported work matches the precomputed total.
#[allow(clippy::too_many_arguments)]
fn run_leaf_task(
    worker: Arc<Worker>,
    view: hillview_sketch::TableView,
    sketch: Arc<dyn ErasedSketch>,
    filter: Option<Arc<Predicate>>,
    partition: u32,
    lo: usize,
    hi: usize,
    weight: usize,
    bonus: u64,
    grain: usize,
    seed: u64,
    cancel: CancellationToken,
    tree: CancellationToken,
    tx: crossbeam::channel::Sender<LeafMsg>,
) {
    use hillview_columnar::SplittableSelection;

    worker.note_leaf_task();
    // Cancellation skips pieces not yet started (§5.3) — including any
    // splitting they would have done.
    let cancelled = cancel.is_cancelled() || tree.is_cancelled();
    let (mut lo, mut hi, mut weight) = (lo, hi, weight);
    if !cancelled {
        let mut part = SplittableSelection::with_weight(view.members(), lo, hi, weight);
        while part.weight() > grain {
            let Some((left, right)) = part.split() else {
                break;
            };
            let (rlo, rhi) = right.bounds();
            let rweight = right.weight();
            let w2 = worker.clone();
            let v2 = view.clone();
            let s2 = sketch.clone();
            let f2 = filter.clone();
            let c2 = cancel.clone();
            let t2 = tree.clone();
            let tx2 = tx.clone();
            worker.pool().submit(move || {
                run_leaf_task(
                    w2, v2, s2, f2, partition, rlo, rhi, rweight, 0, grain, seed, c2, t2, tx2,
                );
            });
            part = left;
        }
        (lo, hi) = part.bounds();
        weight = part.weight();
    }
    let result = if cancelled {
        Ok(None)
    } else {
        // Panic isolation: a panicking summarize (organic bug or injected
        // fault) must surface as a structured, retryable error that still
        // carries this piece's work weight — weight conservation is what
        // lets the aggregation node distinguish "done" from "lost".
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match worker.leaf_fault(partition, lo) {
                // lint: allow(panic, deliberate fault injection; caught by the catch_unwind directly above)
                Some(FaultAction::PanicLeaf) => panic!(
                    "injected leaf panic (worker {}, partition {partition}, lo {lo})",
                    worker.id
                ),
                Some(FaultAction::StallLeaf(d)) => std::thread::sleep(d),
                _ => {}
            }
            match &filter {
                // Fused filter + sketch: one block pass, no membership.
                Some(pred) => {
                    if lo == 0 && hi >= view.members().universe() {
                        sketch
                            .summarize_filtered_to_bytes(&view, pred, seed)
                            .map(Some)
                    } else {
                        sketch
                            .summarize_filtered_range_to_bytes(&view, pred, lo, hi, seed)
                            .map(Some)
                    }
                }
                None if lo == 0 && hi >= view.members().universe() => {
                    // Unsplit partition: the plain summarize path.
                    sketch.summarize_to_bytes(&view, seed).map(Some)
                }
                None => sketch
                    .summarize_range_to_bytes(&view, lo, hi, seed)
                    .map(Some),
            }
        }));
        match run {
            Ok(r) => r,
            Err(payload) => Err(EngineError::LeafPanicked {
                worker: worker.id,
                message: fault::panic_message(payload),
            }),
        }
    };
    let _ = tx.send(LeafMsg {
        partition,
        lo,
        work: weight as u64 + bonus,
        result,
    });
}

/// The aggregation-node body for one worker (paper Fig. 1): fan leaf tasks
/// (splitting oversized partitions into sub-range tasks), merge
/// completions, ship batched partials to the root.
///
/// 128-bit query identity for the sketch-result cache: two independent
/// FNV-1a streams over (stream tag, sketch name, 0, cache-identity bytes).
/// Two streams because 64 bits of FNV over arbitrary parameter encodings
/// is too collidable for a cache whose hits silently replace computation.
fn query_hash(name: &str, identity: &[u8]) -> [u64; 2] {
    let mut out = [FNV_OFFSET, FNV_OFFSET ^ 0x9E37_79B9_7F4A_7C15];
    for (i, h) in out.iter_mut().enumerate() {
        let mut state = fnv_mix(*h, &[i as u8]);
        state = fnv_mix(state, name.as_bytes());
        state = fnv_mix(state, &[0]);
        *h = fnv_mix(state, identity);
    }
    out
}

/// This wrapper is the node's crash barrier: if the body itself panics the
/// root still receives a final frame carrying the panic message, so the
/// merge loop terminates with a structured error instead of waiting out
/// the liveness timeout (or, before timeouts existed, hanging forever).
#[allow(clippy::too_many_arguments)]
fn aggregate_worker(
    worker: Arc<Worker>,
    sketch: Arc<dyn ErasedSketch>,
    dataset: DatasetId,
    filter: Option<Arc<Predicate>>,
    seed: u64,
    cancel: CancellationToken,
    tree_cancel: CancellationToken,
    tx: LinkSender,
    batch: Duration,
    query: Option<[u64; 2]>,
    grain: usize,
) {
    let wid = worker.id as u32;
    if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        aggregate_worker_inner(
            &worker,
            sketch,
            dataset,
            filter,
            seed,
            cancel,
            tree_cancel,
            &tx,
            batch,
            query,
            grain,
        );
    })) {
        let msg = WorkerMsg {
            worker: wid,
            work_done: 0,
            work_total: 0,
            is_final: true,
            payload: MsgPayload::LeafPanicked(fault::panic_message(payload)),
        };
        let _ = tx.send(msg.encode());
    }
}

#[allow(clippy::too_many_arguments)]
fn aggregate_worker_inner(
    worker: &Arc<Worker>,
    sketch: Arc<dyn ErasedSketch>,
    dataset: DatasetId,
    filter: Option<Arc<Predicate>>,
    seed: u64,
    cancel: CancellationToken,
    tree_cancel: CancellationToken,
    tx: &LinkSender,
    batch: Duration,
    query: Option<[u64; 2]>,
    grain: usize,
) {
    let wid = worker.id as u32;
    let send = |msg: WorkerMsg| {
        let _ = tx.send(msg.encode());
    };

    // Fault-injection point for "the worker fails *mid-query*": a Kill or
    // Evict decided here happens after the root committed to this tree.
    worker.fault_op(Some(dataset));

    if !worker.is_alive() {
        send(WorkerMsg {
            worker: wid,
            work_done: 0,
            work_total: 0,
            is_final: true,
            payload: MsgPayload::WorkerDown,
        });
        return;
    }

    let views = match worker.partitions(dataset) {
        Some(v) => v,
        None => {
            send(WorkerMsg {
                worker: wid,
                work_done: 0,
                work_total: 0,
                is_final: true,
                payload: MsgPayload::DatasetMissing(dataset.0),
            });
            return;
        }
    };

    if views.is_empty() {
        send(WorkerMsg {
            worker: wid,
            work_done: 0,
            work_total: 0,
            is_final: true,
            payload: MsgPayload::Summary(sketch.identity_bytes().to_vec()),
        });
        return;
    }

    // Work units: selected rows plus one per partition (the +1 keeps empty
    // partitions observable). Split halves conserve their weight exactly,
    // so completion is "reported work == precomputed total".
    let total_work: u64 = views.iter().map(|v| v.len() as u64 + 1).sum();

    // Sketch-result cache (paper §5.4), keyed structurally: the dataset's
    // lineage version — with the fused predicate's *canonical* bytes
    // folded in exactly as materializing it would — crossed with the
    // sketch's 128-bit query identity. A fused tree therefore shares
    // entries with any canonically-equal respelling of itself, but never
    // with the materialized two-pass plan (different fold boundaries may
    // legally differ in float ulps; cross-plan sharing would make results
    // cache-state-dependent). A hit reports the same row-weighted work
    // total as the compute path would, so the root's progress fraction
    // never mixes incomparable units across workers.
    let cache_key: Option<CacheKey> = query.and_then(|q| {
        let version = match &filter {
            Some(p) => worker.filtered_version(dataset, p),
            None => worker.dataset_version(dataset),
        }?;
        Some(CacheKey {
            dataset,
            version,
            query: q,
        })
    });
    let cache = worker.cache();
    let mut flight = None;
    if let Some(key) = cache_key {
        // Single-flight: if another tree is already computing this exact
        // key, wait for it in `batch`-sized slices — heartbeating between
        // slices so the root's liveness sweep sees us — instead of
        // duplicating the scan.
        let mut waited = false;
        loop {
            match cache.lookup(key) {
                Lookup::Hit(hit) => {
                    if waited {
                        cache.note_coalesced();
                    }
                    send(WorkerMsg {
                        worker: wid,
                        work_done: total_work,
                        work_total: total_work,
                        is_final: true,
                        payload: MsgPayload::Summary(hit.to_vec()),
                    });
                    return;
                }
                Lookup::Miss(guard) => {
                    flight = Some(guard);
                    break;
                }
                Lookup::InFlight => {
                    if cancel.is_cancelled() || tree_cancel.is_cancelled() {
                        break;
                    }
                    waited = true;
                    send(WorkerMsg {
                        worker: wid,
                        work_done: 0,
                        work_total: total_work,
                        is_final: false,
                        payload: MsgPayload::Heartbeat,
                    });
                    cache.wait(&key, batch);
                }
            }
        }
    }
    // Non-splittable sketches run one task per partition, as before.
    let grain = if sketch.splittable() {
        grain.max(1)
    } else {
        usize::MAX
    };

    let (leaf_tx, leaf_rx) = crossbeam::channel::unbounded::<LeafMsg>();
    for (i, view) in views.iter().enumerate() {
        // Leaf seed mixes the query seed with worker and partition indexes
        // so samples are independent yet reproducible (§5.8). Sub-tasks of
        // one partition share its seed: each draws the partition-wide
        // sample and clips it to its range.
        let leaf_seed = seed
            ^ (worker.id as u64).wrapping_mul(0x9E3779B97F4A7C15)
            ^ (i as u64).wrapping_mul(0xC2B2AE3D27D4EB4F);
        let universe = view.members().universe();
        let w2 = worker.clone();
        let v2 = view.clone();
        let s2 = sketch.clone();
        let f2 = filter.clone();
        let c2 = cancel.clone();
        let t2 = tree_cancel.clone();
        let tx2 = leaf_tx.clone();
        let weight = view.len();
        worker.pool().submit(move || {
            run_leaf_task(
                w2, v2, s2, f2, i as u32, 0, universe, weight, 1, grain, leaf_seed, c2, t2, tx2,
            );
        });
    }
    drop(leaf_tx);

    // Merge completions; propagate partials every `batch`. The running
    // `acc` merges in completion order and only feeds the transient
    // partial stream; the final summary is folded deterministically below.
    let mut pieces: Vec<(u32, usize, Bytes)> = Vec::new();
    let mut acc = sketch.identity_bytes();
    let mut done_work = 0u64;
    let mut skipped = 0u64;
    let mut dirty = false;
    while done_work < total_work {
        match leaf_rx.recv_timeout(batch) {
            Ok(msg) => {
                match msg.result {
                    Ok(Some(bytes)) => {
                        match sketch.merge_bytes(&acc, &bytes) {
                            Ok(merged) => acc = merged,
                            Err(e) => {
                                send(WorkerMsg {
                                    worker: wid,
                                    work_done: done_work,
                                    work_total: total_work,
                                    is_final: true,
                                    payload: MsgPayload::Error(e.to_string()),
                                });
                                return;
                            }
                        }
                        pieces.push((msg.partition, msg.lo, bytes));
                        dirty = true;
                    }
                    // Cancelled piece: counts as completed-with-nothing.
                    Ok(None) => skipped += 1,
                    Err(e) => {
                        // Keep panics structured end-to-end: the root
                        // rebuilds `LeafPanicked` from its own tag.
                        let payload = match e {
                            EngineError::LeafPanicked { message, .. } => {
                                MsgPayload::LeafPanicked(message)
                            }
                            other => MsgPayload::Error(other.to_string()),
                        };
                        send(WorkerMsg {
                            worker: wid,
                            work_done: done_work,
                            work_total: total_work,
                            is_final: true,
                            payload,
                        });
                        return;
                    }
                }
                done_work += msg.work;
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                if dirty {
                    send(WorkerMsg {
                        worker: wid,
                        work_done: done_work,
                        work_total: total_work,
                        is_final: false,
                        payload: MsgPayload::Summary(acc.to_vec()),
                    });
                    dirty = false;
                } else {
                    // Nothing new merged this tick: heartbeat so the
                    // root's liveness sweep can tell slow from dead.
                    send(WorkerMsg {
                        worker: wid,
                        work_done: done_work,
                        work_total: total_work,
                        is_final: false,
                        payload: MsgPayload::Heartbeat,
                    });
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
        }
    }

    // The leaf channel can only disconnect short of the work total if
    // completions were *lost* — a pool thread died past every in-task
    // guard (the pool's own catch_unwind backstop swallows the panic but
    // not the piece's weight). Folding the surviving pieces would
    // silently drop rows; report the loss instead.
    if done_work < total_work {
        send(WorkerMsg {
            worker: wid,
            work_done: done_work,
            work_total: total_work,
            is_final: true,
            payload: MsgPayload::LeafPanicked(format!(
                "leaf completions lost on worker {wid}: {done_work}/{total_work} work units reported"
            )),
        });
        return;
    }

    // Deterministic final fold: partials sorted by (partition, range
    // start). The piece set is a pure function of (membership, grain), so
    // this fold — unlike the completion-order `acc` — is bit-identical
    // across thread counts, steal orders, and replays, even for
    // order-sensitive merges (Misra-Gries) and floating-point sums.
    pieces.sort_by_key(|&(p, lo, _)| (p, lo));
    let mut final_acc = sketch.identity_bytes();
    for (_, _, bytes) in &pieces {
        match sketch.merge_bytes(&final_acc, bytes) {
            Ok(merged) => final_acc = merged,
            Err(e) => {
                send(WorkerMsg {
                    worker: wid,
                    work_done: done_work,
                    work_total: total_work,
                    is_final: true,
                    payload: MsgPayload::Error(e.to_string()),
                });
                return;
            }
        }
    }

    // Cache only complete summaries: a tree cancelled mid-flight (user
    // cancel or a sibling worker's failure) leaves the fold partial, and
    // caching it would silently corrupt every later query (§5.4 caches
    // must hold deterministic, complete results). Every early return
    // above drops the flight guard un-completed, which abandons the
    // in-flight slot and wakes coalesced waiters to take over.
    if let Some(guard) = flight {
        if skipped == 0 && !cancel.is_cancelled() && !tree_cancel.is_cancelled() {
            guard.complete(final_acc.clone());
        }
    }
    send(WorkerMsg {
        worker: wid,
        work_done: done_work,
        work_total: total_work,
        is_final: true,
        payload: MsgPayload::Summary(final_acc.to_vec()),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::FnSource;
    use crate::erased::erase;
    use hillview_columnar::column::{Column, I64Column};
    use hillview_columnar::{ColumnKind, Table};
    use hillview_sketch::count::{CountSketch, CountSummary};
    use hillview_sketch::histogram::{HistogramSketch, HistogramSummary};
    use hillview_sketch::BucketSpec;

    fn cluster(workers: usize) -> Arc<Cluster> {
        let mut sources = SourceRegistry::new();
        sources.register(Arc::new(FnSource::new("nums", |w, _n, _mp, _snap| {
            let t = Table::builder()
                .column(
                    "X",
                    ColumnKind::Int,
                    Column::Int(I64Column::from_options(
                        (0..10_000).map(|i| Some((i + w as i64 * 10_000) % 100)),
                    )),
                )
                .build()
                .unwrap();
            Ok(vec![t])
        })));
        let mut cfg = ClusterConfig::test();
        cfg.workers = workers;
        Cluster::new(cfg, sources, UdfRegistry::with_builtins())
    }

    fn load(c: &Cluster) -> DatasetId {
        let id = DatasetId(1);
        c.load(
            id,
            &SourceSpec {
                source: Arc::from("nums"),
                snapshot: 0,
            },
        )
        .unwrap();
        id
    }

    #[test]
    fn count_query_spans_workers() {
        let c = cluster(3);
        let ds = load(&c);
        let outcome = c
            .run_erased(ds, &erase(CountSketch::rows()), &QueryOptions::default())
            .unwrap();
        let s = CountSummary::from_bytes(outcome.bytes).unwrap();
        assert_eq!(s.rows, 30_000);
        assert!(outcome.root_bytes > 0);
        assert!(outcome.root_messages >= 3, "≥1 message per worker");
    }

    #[test]
    fn histogram_query_merges_across_partitions() {
        let c = cluster(2);
        let ds = load(&c);
        let sk = HistogramSketch::streaming("X", BucketSpec::numeric(0.0, 100.0, 10));
        let outcome = c
            .run_erased(ds, &erase(sk), &QueryOptions::default())
            .unwrap();
        let s = HistogramSummary::from_bytes(outcome.bytes).unwrap();
        assert_eq!(s.buckets, vec![2000; 10]);
        assert_eq!(s.rows_inspected, 20_000);
    }

    #[test]
    fn partial_results_stream_to_client() {
        let c = cluster(2);
        let ds = load(&c);
        let seen = Arc::new(parking_lot::Mutex::new(Vec::<f64>::new()));
        let seen2 = seen.clone();
        let opts = QueryOptions {
            on_partial: Some(Arc::new(move |p: &Partial| {
                seen2.lock().push(p.fraction);
            })),
            ..Default::default()
        };
        let outcome = c
            .run_erased(ds, &erase(CountSketch::rows()), &opts)
            .unwrap();
        let fractions = seen.lock().clone();
        assert!(!fractions.is_empty(), "client saw partial updates");
        assert!(outcome.first_partial.is_some());
        assert!(
            fractions.windows(2).all(|w| w[0] <= w[1] + 1e-9),
            "monotone progress: {fractions:?}"
        );
        assert!((fractions.last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missing_dataset_reported_with_worker() {
        let c = cluster(2);
        let e = c
            .run_erased(
                DatasetId(99),
                &erase(CountSketch::rows()),
                &QueryOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(e, EngineError::DatasetMissing { .. }));
    }

    #[test]
    fn dead_worker_reported() {
        let c = cluster(2);
        let ds = load(&c);
        c.worker(1).kill();
        let e = c
            .run_erased(ds, &erase(CountSketch::rows()), &QueryOptions::default())
            .unwrap_err();
        assert_eq!(e, EngineError::WorkerDown(1));
    }

    #[test]
    fn sketch_error_propagates_from_leaves() {
        let c = cluster(2);
        let ds = load(&c);
        let e = c
            .run_erased(
                ds,
                &erase(CountSketch::of_column("Nope")),
                &QueryOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(e, EngineError::Sketch(_)));
    }

    #[test]
    fn computation_cache_serves_second_query() {
        let c = cluster(2);
        let ds = load(&c);
        let opts = QueryOptions::default();
        let a = c
            .run_erased(ds, &erase(CountSketch::rows()), &opts)
            .unwrap();
        let hits_before = c.cache_stats().hits;
        let b = c
            .run_erased(ds, &erase(CountSketch::rows()), &opts)
            .unwrap();
        let stats = c.cache_stats();
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(stats.hits - hits_before, 2, "both workers hit their cache");
        assert!(stats.bytes > 0 && stats.entries >= 2);
    }

    #[test]
    fn failed_tree_never_caches_partial_summaries() {
        // Regression: a worker failure cancels the tree; surviving workers
        // skip leaves and must NOT cache their incomplete summaries.
        let c = cluster(2);
        let ds = load(&c);
        c.worker(0).kill();
        let opts = QueryOptions::default();
        let _ = c.run_erased(ds, &erase(CountSketch::rows()), &opts);
        c.worker(0).restart();
        c.worker(0)
            .load(
                ds,
                &SourceSpec {
                    source: Arc::from("nums"),
                    snapshot: 0,
                },
            )
            .unwrap();
        let outcome = c
            .run_erased(ds, &erase(CountSketch::rows()), &opts)
            .unwrap();
        let s = CountSummary::from_bytes(outcome.bytes).unwrap();
        assert_eq!(s.rows, 20_000, "no stale partial summary served");
    }

    #[test]
    fn cancellation_returns_partial_cleanly() {
        let c = cluster(2);
        let ds = load(&c);
        let cancel = CancellationToken::new();
        cancel.cancel(); // cancel before starting: all leaves skipped
        let opts = QueryOptions {
            cancel: cancel.clone(),
            ..Default::default()
        };
        let outcome = c.run_erased(ds, &erase(CountSketch::rows()), &opts);
        // Either an identity result or an early return; never a hang/panic.
        if let Ok(o) = outcome {
            let s = CountSummary::from_bytes(o.bytes).unwrap();
            assert!(s.rows <= 30_000);
        }
    }

    #[test]
    fn deterministic_across_runs_with_same_seed() {
        let c = cluster(2);
        let ds = load(&c);
        let sk = HistogramSketch::sampled("X", BucketSpec::numeric(0.0, 100.0, 10), 0.2);
        let opts = QueryOptions {
            seed: 42,
            ..Default::default()
        };
        let a = c.run_erased(ds, &erase(sk.clone()), &opts).unwrap();
        let b = c.run_erased(ds, &erase(sk), &opts).unwrap();
        assert_eq!(a.bytes, b.bytes, "same seed ⇒ identical summaries");
    }

    /// Cluster with an explicit thread count and leaf grain, holding one
    /// worker with a 40k-row low-cardinality dataset (8 micropartitions).
    fn split_cluster(threads: usize, grain: usize) -> Arc<Cluster> {
        let mut sources = SourceRegistry::new();
        sources.register(Arc::new(FnSource::new("skewed", |_w, _n, _mp, _snap| {
            let t = Table::builder()
                .column(
                    "X",
                    ColumnKind::Int,
                    Column::Int(I64Column::from_options(
                        (0..40_000).map(|i| Some((i * 7919) % 100)),
                    )),
                )
                .build()
                .unwrap();
            Ok(vec![t])
        })));
        let cfg = ClusterConfig {
            workers: 1,
            threads_per_worker: threads,
            micropartition_rows: 5_000,
            batch_interval: Duration::from_millis(2),
            link: LinkConfig::instant(),
            leaf_grain_rows: grain,
            ..ClusterConfig::test()
        };
        Cluster::new(cfg, sources, UdfRegistry::with_builtins())
    }

    fn load_skewed(c: &Cluster) -> DatasetId {
        let id = DatasetId(1);
        c.load(
            id,
            &SourceSpec {
                source: Arc::from("skewed"),
                snapshot: 0,
            },
        )
        .unwrap();
        id
    }

    #[test]
    fn split_execution_matches_unsplit_bytes_for_exact_sketches() {
        // Tiny grain (forces ~8 sub-tasks per partition) vs huge grain (no
        // splitting): integer-merge sketches must produce identical bytes.
        use hillview_sketch::heavy::SampledHeavyHittersSketch;
        let split = split_cluster(4, 512);
        let unsplit = split_cluster(2, usize::MAX);
        let (da, db) = (load_skewed(&split), load_skewed(&unsplit));
        let sketches: Vec<Arc<dyn crate::erased::ErasedSketch>> = vec![
            erase(HistogramSketch::streaming(
                "X",
                BucketSpec::numeric(0.0, 100.0, 10),
            )),
            erase(HistogramSketch::sampled(
                "X",
                BucketSpec::numeric(0.0, 100.0, 10),
                0.25,
            )),
            erase(CountSketch::of_column("X")),
            erase(SampledHeavyHittersSketch::new("X", 4, 0.5)),
        ];
        for sk in sketches {
            let opts = QueryOptions {
                seed: 99,
                ..Default::default()
            };
            let a = split.run_erased(da, &sk, &opts).unwrap();
            let b = unsplit.run_erased(db, &sk, &opts).unwrap();
            assert_eq!(a.bytes, b.bytes, "sketch {}", sk.name());
        }
        // The split cluster really did split: more leaf tasks than the 8
        // partitions per query.
        assert!(
            split.worker(0).leaf_tasks_executed() > 4 * 8,
            "leaf tasks {} show no intra-partition splitting",
            split.worker(0).leaf_tasks_executed()
        );
        assert_eq!(unsplit.worker(0).leaf_tasks_executed(), 4 * 8);
    }

    #[test]
    fn split_results_independent_of_thread_count() {
        // Order-sensitive (Misra-Gries) and floating-point (moments)
        // sketches: the split plan and range-ordered fold are fixed, so
        // 1-thread and 4-thread execution produce identical bytes.
        use hillview_sketch::heavy::MisraGriesSketch;
        use hillview_sketch::moments::MomentsSketch;
        let one = split_cluster(1, 700);
        let four = split_cluster(4, 700);
        let (da, db) = (load_skewed(&one), load_skewed(&four));
        let sketches: Vec<Arc<dyn crate::erased::ErasedSketch>> = vec![
            erase(MisraGriesSketch::new("X", 5)),
            erase(MomentsSketch::new("X", 4)),
            erase(HistogramSketch::streaming(
                "X",
                BucketSpec::numeric(0.0, 100.0, 16),
            )),
        ];
        for sk in sketches {
            let opts = QueryOptions::default();
            let a = one.run_erased(da, &sk, &opts).unwrap();
            let b = four.run_erased(db, &sk, &opts).unwrap();
            assert_eq!(a.bytes, b.bytes, "sketch {}", sk.name());
            // Re-running on the same cluster is also stable.
            let a2 = one.run_erased(da, &sk, &opts).unwrap();
            assert_eq!(a.bytes, a2.bytes, "sketch {} re-run", sk.name());
        }
    }

    #[test]
    fn split_progress_reports_row_weighted_work() {
        let c = split_cluster(2, 512);
        let ds = load_skewed(&c);
        let seen = Arc::new(parking_lot::Mutex::new(Vec::<(u64, u64)>::new()));
        let seen2 = seen.clone();
        let opts = QueryOptions {
            on_partial: Some(Arc::new(move |p: &Partial| {
                seen2.lock().push((p.work_done, p.work_total));
            })),
            ..Default::default()
        };
        let sk = erase(HistogramSketch::streaming(
            "X",
            BucketSpec::numeric(0.0, 100.0, 10),
        ));
        c.run_erased(ds, &sk, &opts).unwrap();
        let partials = seen.lock().clone();
        assert!(!partials.is_empty());
        let (done, total) = *partials.last().unwrap();
        // 40k rows + 8 partitions worth of work units.
        assert_eq!(total, 40_000 + 8);
        assert_eq!(done, total, "final partial reports complete work");
        assert!(
            partials.windows(2).all(|w| w[0].0 <= w[1].0),
            "work progress is monotone: {partials:?}"
        );
    }

    #[test]
    fn results_independent_of_worker_count() {
        // Partition-invariance: the same logical dataset spread over 1 vs 4
        // workers yields identical exact summaries.
        let mut sources = SourceRegistry::new();
        sources.register(Arc::new(FnSource::new("span", |w, n, _mp, _snap| {
            // 40k logical rows split contiguously across n workers.
            let per = 40_000 / n as i64;
            let lo = w as i64 * per;
            let t = Table::builder()
                .column(
                    "X",
                    ColumnKind::Int,
                    Column::Int(I64Column::from_options(
                        (lo..lo + per).map(|i| Some(i % 100)),
                    )),
                )
                .build()
                .unwrap();
            Ok(vec![t])
        })));
        let mut results = Vec::new();
        for workers in [1usize, 4] {
            let mut cfg = ClusterConfig::test();
            cfg.workers = workers;
            let c = Cluster::new(cfg, sources.clone(), UdfRegistry::new());
            let ds = DatasetId(5);
            c.load(
                ds,
                &SourceSpec {
                    source: Arc::from("span"),
                    snapshot: 0,
                },
            )
            .unwrap();
            let sk = HistogramSketch::streaming("X", BucketSpec::numeric(0.0, 100.0, 20));
            let o = c
                .run_erased(ds, &erase(sk), &QueryOptions::default())
                .unwrap();
            results.push(o.bytes);
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn fused_tree_matches_materialized_filter_for_exact_sketches() {
        // Integer-merge sketches: a fused tree over the parent must equal
        // a plain tree over the materialized filtered dataset byte-for-
        // byte, even though the two trees split along different plans
        // (fused splits the unfiltered membership, two-pass the narrowed
        // one — both folds are exact sums, so the bytes agree).
        use hillview_sketch::distinct::DistinctSketch;
        let c = split_cluster(4, 512);
        let ds = load_skewed(&c);
        let pred = Predicate::range("X", 10.0, 60.0);
        let filtered = DatasetId(2);
        c.filter(filtered, ds, &pred).unwrap();
        let sketches: Vec<Arc<dyn crate::erased::ErasedSketch>> = vec![
            erase(CountSketch::rows()),
            erase(HistogramSketch::streaming(
                "X",
                BucketSpec::numeric(0.0, 100.0, 10),
            )),
            erase(DistinctSketch::new("X")),
        ];
        for sk in sketches {
            let opts = QueryOptions {
                seed: 7,
                ..Default::default()
            };
            let fused = c.run_erased_filtered(ds, Some(&pred), &sk, &opts).unwrap();
            let two_pass = c.run_erased(filtered, &sk, &opts).unwrap();
            assert_eq!(fused.bytes, two_pass.bytes, "sketch {}", sk.name());
        }
    }

    #[test]
    fn fused_tree_deterministic_across_thread_counts() {
        // The fused split plan derives from the *unfiltered* membership and
        // the grain — both fixed — so order-sensitive (Misra-Gries) and
        // floating-point (moments) sketches produce identical bytes on 1
        // and 4 threads, exactly like the unfiltered trees do.
        use hillview_sketch::heavy::MisraGriesSketch;
        use hillview_sketch::moments::MomentsSketch;
        let one = split_cluster(1, 700);
        let four = split_cluster(4, 700);
        let (da, db) = (load_skewed(&one), load_skewed(&four));
        let pred = Predicate::range("X", 5.0, 95.0);
        let sketches: Vec<Arc<dyn crate::erased::ErasedSketch>> = vec![
            erase(MisraGriesSketch::new("X", 5)),
            erase(MomentsSketch::new("X", 4)),
            erase(HistogramSketch::streaming(
                "X",
                BucketSpec::numeric(0.0, 100.0, 16),
            )),
        ];
        for sk in sketches {
            let opts = QueryOptions::default();
            let a = one
                .run_erased_filtered(da, Some(&pred), &sk, &opts)
                .unwrap();
            let b = four
                .run_erased_filtered(db, Some(&pred), &sk, &opts)
                .unwrap();
            assert_eq!(a.bytes, b.bytes, "sketch {}", sk.name());
            let a2 = one
                .run_erased_filtered(da, Some(&pred), &sk, &opts)
                .unwrap();
            assert_eq!(a.bytes, a2.bytes, "sketch {} re-run", sk.name());
        }
    }

    #[test]
    fn fused_and_unfiltered_queries_cache_without_collision() {
        // The structural key folds the fused predicate's canonical bytes
        // into the dataset version, so the fused and unfiltered entries
        // for the same sketch coexist — and canonically-equal respellings
        // of the predicate share the fused entry.
        let c = cluster(2);
        let ds = load(&c);
        let opts = QueryOptions::default();
        let pred = Predicate::range("X", 0.0, 50.0);
        let sk = erase(CountSketch::rows());
        let narrowed = c.run_erased_filtered(ds, Some(&pred), &sk, &opts).unwrap();
        assert_eq!(
            CountSummary::from_bytes(narrowed.bytes).unwrap().rows,
            10_000
        );
        let full = c.run_erased(ds, &sk, &opts).unwrap();
        assert_eq!(CountSummary::from_bytes(full.bytes).unwrap().rows, 20_000);

        // Repeats of both shapes are pure cache hits.
        let hits_before = c.cache_stats().hits;
        let narrowed2 = c.run_erased_filtered(ds, Some(&pred), &sk, &opts).unwrap();
        let full2 = c.run_erased(ds, &sk, &opts).unwrap();
        assert_eq!(
            CountSummary::from_bytes(narrowed2.bytes).unwrap().rows,
            10_000
        );
        assert_eq!(CountSummary::from_bytes(full2.bytes).unwrap().rows, 20_000);
        assert_eq!(c.cache_stats().hits - hits_before, 4);

        // A canonically-equal respelling (`p AND true` canonicalizes to
        // `p`) hits the same fused entry instead of recomputing.
        let respelled = pred.clone().and(Predicate::True);
        let hits_before = c.cache_stats().hits;
        let narrowed3 = c
            .run_erased_filtered(ds, Some(&respelled), &sk, &opts)
            .unwrap();
        assert_eq!(
            CountSummary::from_bytes(narrowed3.bytes).unwrap().rows,
            10_000
        );
        assert_eq!(c.cache_stats().hits - hits_before, 2);
    }

    #[test]
    fn concurrent_identical_queries_coalesce_onto_one_flight() {
        let c = cluster(2);
        let ds = load(&c);
        let sk = erase(CountSketch::rows());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let (c, sk) = (&c, &sk);
                    scope.spawn(move || {
                        c.run_erased(ds, sk, &QueryOptions::default())
                            .unwrap()
                            .bytes
                    })
                })
                .collect();
            let results: Vec<Bytes> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for r in &results {
                assert_eq!(r, &results[0]);
            }
        });
        let stats = c.cache_stats();
        // Exactly one scan per worker; the other three trees either hit
        // the finished entry or coalesced onto the in-flight scan.
        assert_eq!(stats.insertions, 2, "{stats:?}");
        assert_eq!(stats.misses, 2, "{stats:?}");
        assert_eq!(stats.hits, 6, "{stats:?}");
    }

    #[test]
    fn worker_msg_decode_rejects_corruption() {
        // Satellite of the wire-corruption work: every mutation of an
        // encoded root-link frame must yield a structured error (checksum
        // or parse), never a panic — and single-bit flips must never
        // decode into a different valid message.
        let msg = WorkerMsg {
            worker: 1,
            work_done: 12_345,
            work_total: 99_999,
            is_final: true,
            payload: MsgPayload::Summary(vec![7u8; 64]),
        };
        let good = msg.encode();
        assert!(WorkerMsg::decode(good.clone()).is_ok());
        // Truncations at every boundary.
        for cut in 0..good.len() {
            let t = Bytes::from(good[..cut].to_vec());
            assert!(WorkerMsg::decode(t).is_err(), "truncated at {cut}");
        }
        // Every single-bit flip: must error, or — when the flip lands in
        // varint overflow bits that don't change the decoded value —
        // decode to the *identical* message. Never a different one.
        let reference = msg.encode_body();
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut m = good.to_vec();
                m[byte] ^= 1 << bit;
                if let Ok(decoded) = WorkerMsg::decode(Bytes::from(m)) {
                    assert_eq!(
                        decoded.encode_body(),
                        reference,
                        "bit flip at byte {byte} bit {bit} decoded to a different message"
                    );
                }
            }
        }
    }

    #[test]
    fn aggregator_death_without_final_frame_terminates_root_loop() {
        // Regression for the root-merge-loop hang: a worker whose
        // aggregation node dies without ever shipping a final frame (here:
        // every frame it sends is dropped) must be detected by the
        // liveness sweep — the query errors out instead of hanging.
        let mut cfg = ClusterConfig::test();
        cfg.worker_timeout = Duration::from_millis(200);
        let c = {
            let mut sources = SourceRegistry::new();
            sources.register(Arc::new(FnSource::new("nums", |w, _n, _mp, _snap| {
                let t = Table::builder()
                    .column(
                        "X",
                        ColumnKind::Int,
                        Column::Int(I64Column::from_options(
                            (0..10_000).map(|i| Some((i + w as i64 * 10_000) % 100)),
                        )),
                    )
                    .build()
                    .unwrap();
                Ok(vec![t])
            })));
            Cluster::new(cfg, sources, UdfRegistry::with_builtins())
        };
        let ds = load(&c);
        // Drop every frame worker 1's node sends, finals included.
        c.arm_faults(FaultPlan::scripted((0..64).map(|i| {
            (
                FaultSite::Frame {
                    worker: 1,
                    index: i,
                },
                FaultAction::DropFrame,
            )
        })));
        let started = Instant::now();
        let e = c
            .run_erased(ds, &erase(CountSketch::rows()), &QueryOptions::default())
            .unwrap_err();
        assert_eq!(e, EngineError::WorkerDown(1));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "liveness sweep bounded the wait"
        );
    }

    #[test]
    fn injected_leaf_panic_surfaces_structured() {
        let c = cluster(2);
        let ds = load(&c);
        c.arm_faults(FaultPlan::scripted([(
            FaultSite::Leaf {
                worker: 0,
                partition: 0,
                lo: 0,
            },
            FaultAction::PanicLeaf,
        )]));
        let e = c
            .run_erased(ds, &erase(CountSketch::rows()), &QueryOptions::default())
            .unwrap_err();
        match e {
            EngineError::LeafPanicked { worker, message } => {
                assert_eq!(worker, 0);
                assert!(message.contains("injected leaf panic"), "{message}");
            }
            other => panic!("expected LeafPanicked, got {other:?}"),
        }
        // The panic was isolated: disarm and the same cluster still works.
        c.disarm_faults();
        let o = c
            .run_erased(ds, &erase(CountSketch::rows()), &QueryOptions::default())
            .unwrap();
        let s = CountSummary::from_bytes(o.bytes).unwrap();
        assert_eq!(s.rows, 20_000);
    }

    #[test]
    fn duplicated_and_corrupted_frames_do_not_skew_results() {
        // Duplicate every frame worker 0 sends (finals included — the
        // duplicate-final guard is what keeps the count exact) and corrupt
        // worker 1's first frame. A stalled leaf on worker 1 guarantees
        // its frame 0 is a partial/heartbeat, not the final: the corrupt
        // frame is dropped by the checksum and later frames carry the
        // result through.
        let c = cluster(2);
        let ds = load(&c);
        let mut rules: Vec<(FaultSite, FaultAction)> = Vec::new();
        for i in 0..64 {
            rules.push((
                FaultSite::Frame {
                    worker: 0,
                    index: i,
                },
                FaultAction::DuplicateFrame,
            ));
        }
        rules.push((
            FaultSite::Frame {
                worker: 1,
                index: 0,
            },
            FaultAction::CorruptFrame(0xDEAD_BEEF),
        ));
        rules.push((
            FaultSite::Leaf {
                worker: 1,
                partition: 0,
                lo: 0,
            },
            FaultAction::StallLeaf(Duration::from_millis(50)),
        ));
        c.arm_faults(FaultPlan::scripted(rules));
        let o = c
            .run_erased(ds, &erase(CountSketch::rows()), &QueryOptions::default())
            .unwrap();
        let s = CountSummary::from_bytes(o.bytes).unwrap();
        assert_eq!(s.rows, 20_000, "exact despite dup + corrupt frames");
        assert_eq!(o.coverage, 1.0);
        assert!(o.failed_workers.is_empty());
    }

    #[test]
    fn tolerate_mode_folds_survivors_with_honest_coverage() {
        let c = cluster(2);
        let ds = load(&c);
        c.worker(1).kill();
        let opts = QueryOptions {
            tolerate_failures: true,
            ..Default::default()
        };
        let o = c
            .run_erased(ds, &erase(CountSketch::rows()), &opts)
            .unwrap();
        let s = CountSummary::from_bytes(o.bytes).unwrap();
        assert_eq!(s.rows, 10_000, "survivor's shard only");
        assert_eq!(o.failed_workers, vec![1]);
        assert!(
            o.coverage > 0.0 && o.coverage < 1.0,
            "coverage honestly strict: {}",
            o.coverage
        );
    }

    #[test]
    fn tolerate_mode_with_no_survivors_errors() {
        let c = cluster(2);
        let ds = load(&c);
        c.worker(0).kill();
        c.worker(1).kill();
        let opts = QueryOptions {
            tolerate_failures: true,
            ..Default::default()
        };
        let e = c
            .run_erased(ds, &erase(CountSketch::rows()), &opts)
            .unwrap_err();
        assert!(matches!(e, EngineError::WorkerDown(_)));
    }

    #[test]
    fn deadline_exceeded_is_structured_and_bounded() {
        let c = cluster(2);
        let ds = load(&c);
        // Stall every initial leaf long enough to blow a tiny deadline.
        let rules: Vec<(FaultSite, FaultAction)> = (0..2)
            .flat_map(|w| {
                (0..10u32).map(move |p| {
                    (
                        FaultSite::Leaf {
                            worker: w,
                            partition: p,
                            lo: 0,
                        },
                        FaultAction::StallLeaf(Duration::from_millis(120)),
                    )
                })
            })
            .collect();
        c.arm_faults(FaultPlan::scripted(rules));
        let opts = QueryOptions {
            deadline: Some(Duration::from_millis(40)),
            ..Default::default()
        };
        let started = Instant::now();
        let e = c
            .run_erased(ds, &erase(CountSketch::rows()), &opts)
            .unwrap_err();
        assert!(matches!(e, EngineError::DeadlineExceeded { .. }), "{e}");
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}
