//! The simulated cluster and its execution trees.
//!
//! A query runs as the paper's two-phase tree (Fig. 1): the root broadcasts
//! the sketch to every worker's aggregation node; each aggregation node
//! fans leaf tasks onto the worker's thread pool, merges completions, and
//! — every [`ClusterConfig::batch_interval`] — ships its current partial
//! merge to the root ("nodes periodically propagate partially merged
//! results of the vizketch without waiting for all children to respond",
//! §5.3). The root folds per-worker partials, streams progressive results
//! to the client callback, and returns the final merge. Every edge message
//! is wire-encoded and byte-counted.
//!
//! ## Intra-partition parallelism
//!
//! A leaf is no longer one task per micropartition: for splittable
//! sketches, the initial per-partition task *recursively splits* its
//! row range in balanced halves (`SplittableSelection`) until each piece
//! holds at most [`ClusterConfig::leaf_grain_rows`] selected rows, pushing
//! the peeled halves onto the pool's work-stealing deques. Idle pool
//! threads steal the largest pending pieces, so one skewed micropartition
//! saturates every core instead of serializing the query.
//!
//! Sub-task partials arrive in completion order and feed the progressive
//! partial stream, but the *final* worker summary folds them sorted by
//! `(partition, range start)`. Split boundaries depend only on the
//! membership shape and the (fixed) grain, so the folded result is a pure
//! function of `(data, sketch, seed, grain)` — bit-identical across thread
//! counts, steal interleavings, and replay after failures (§5.8). Progress
//! is reported in row-weighted work units per completed sub-task.

use crate::dataset::{DatasetId, SourceRegistry, SourceSpec};
use crate::erased::ErasedSketch;
use crate::error::{EngineError, EngineResult};
use crate::progress::{CancellationToken, Partial, PartialCallback};
use crate::worker::Worker;
use bytes::Bytes;
use hillview_columnar::udf::UdfRegistry;
use hillview_columnar::Predicate;
use hillview_net::{link_pair, LinkConfig, LinkSender, Wire as _, WireReader, WireWriter};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cluster topology and timing parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated servers.
    pub workers: usize,
    /// Pool threads per server (the paper's cores).
    pub threads_per_worker: usize,
    /// Rows per micropartition (paper §5.3: 10–20M; scaled down here).
    pub micropartition_rows: usize,
    /// Partial-result aggregation window (paper §5.3: 100 ms).
    pub batch_interval: Duration,
    /// Delay model for tree edges.
    pub link: LinkConfig,
    /// Target selected rows per leaf sub-task: a splittable sketch's
    /// partition is recursively halved until each piece holds at most this
    /// many rows. Must be a pure config constant (never derived from load
    /// or thread count) — the split plan determines the floating-point
    /// fold structure, so it must be identical across runs and replays for
    /// results to reproduce bit-for-bit (§5.8).
    pub leaf_grain_rows: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 2,
            threads_per_worker: 2,
            micropartition_rows: 50_000,
            batch_interval: Duration::from_millis(100),
            link: LinkConfig::instant(),
            leaf_grain_rows: 65_536,
        }
    }
}

impl ClusterConfig {
    /// Small fast topology for unit tests.
    pub fn test() -> Self {
        ClusterConfig {
            workers: 2,
            threads_per_worker: 2,
            micropartition_rows: 1_000,
            batch_interval: Duration::from_millis(2),
            link: LinkConfig::instant(),
            leaf_grain_rows: 65_536,
        }
    }
}

/// Per-query options.
#[derive(Clone, Default)]
pub struct QueryOptions {
    /// Seed for randomized sketches (logged for replay determinism, §5.8).
    pub seed: u64,
    /// Cooperative cancellation.
    pub cancel: CancellationToken,
    /// Client callback for progressive results.
    pub on_partial: Option<PartialCallback>,
    /// Computation-cache key; `Some` caches the per-worker merged summary
    /// (only sound for deterministic queries, §5.4).
    pub cache_key: Option<u64>,
}

impl std::fmt::Debug for QueryOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "QueryOptions(seed={}, cache={:?})",
            self.seed, self.cache_key
        )
    }
}

/// Outcome of one query: the final summary bytes plus traffic/timing stats.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Final merged summary, wire-encoded.
    pub bytes: Bytes,
    /// Wall-clock duration.
    pub duration: Duration,
    /// Bytes received by the root across the query.
    pub root_bytes: u64,
    /// Messages received by the root.
    pub root_messages: u64,
    /// Time until the first partial result reached the client.
    pub first_partial: Option<Duration>,
    /// Number of partial updates delivered.
    pub partials: usize,
}

/// One message from a worker's aggregation node to the root. Progress is
/// in row-weighted work units (selected rows + 1 per micropartition), so
/// split sub-tasks advance the bar smoothly.
struct WorkerMsg {
    worker: u32,
    work_done: u64,
    work_total: u64,
    is_final: bool,
    payload: MsgPayload,
}

enum MsgPayload {
    Summary(Vec<u8>),
    DatasetMissing(u64),
    WorkerDown,
    Error(String),
}

impl WorkerMsg {
    fn encode(&self) -> Bytes {
        let mut w = WireWriter::new();
        w.put_varint(self.worker as u64);
        w.put_varint(self.work_done);
        w.put_varint(self.work_total);
        w.put_u8(self.is_final as u8);
        match &self.payload {
            MsgPayload::Summary(b) => {
                w.put_u8(0);
                w.put_bytes(b);
            }
            MsgPayload::DatasetMissing(d) => {
                w.put_u8(1);
                w.put_varint(*d);
            }
            MsgPayload::WorkerDown => w.put_u8(2),
            MsgPayload::Error(e) => {
                w.put_u8(3);
                w.put_str(e);
            }
        }
        w.finish()
    }

    fn decode(bytes: Bytes) -> EngineResult<Self> {
        let mut r = WireReader::new(bytes);
        let worker = u32::decode(&mut r)?;
        let work_done = r.get_varint()?;
        let work_total = r.get_varint()?;
        let is_final = r.get_u8()? != 0;
        let payload = match r.get_u8()? {
            0 => MsgPayload::Summary(r.get_bytes()?),
            1 => MsgPayload::DatasetMissing(r.get_varint()?),
            2 => MsgPayload::WorkerDown,
            3 => MsgPayload::Error(r.get_str()?),
            tag => {
                return Err(EngineError::Wire(format!("bad WorkerMsg tag {tag}")));
            }
        };
        Ok(WorkerMsg {
            worker,
            work_done,
            work_total,
            is_final,
            payload,
        })
    }
}

/// The simulated cluster: N workers plus the root's view of them.
pub struct Cluster {
    cfg: ClusterConfig,
    workers: Vec<Arc<Worker>>,
}

impl Cluster {
    /// Build a cluster; every worker shares the source and UDF registries.
    pub fn new(cfg: ClusterConfig, sources: SourceRegistry, udfs: UdfRegistry) -> Arc<Self> {
        let workers = (0..cfg.workers)
            .map(|id| {
                Arc::new(Worker::new(
                    id,
                    cfg.workers,
                    cfg.threads_per_worker,
                    cfg.micropartition_rows,
                    sources.clone(),
                    udfs.clone(),
                ))
            })
            .collect();
        Arc::new(Cluster { cfg, workers })
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Access a worker (tests, fault injection).
    pub fn worker(&self, i: usize) -> &Arc<Worker> {
        &self.workers[i]
    }

    /// Total rows of `dataset` across live workers.
    pub fn dataset_rows(&self, dataset: DatasetId) -> usize {
        self.workers.iter().map(|w| w.dataset_rows(dataset)).sum()
    }

    /// Total encoded in-memory bytes of `dataset` across live workers
    /// (compressed columns report their packed size).
    pub fn dataset_heap_bytes(&self, dataset: DatasetId) -> usize {
        self.workers
            .iter()
            .map(|w| w.dataset_heap_bytes(dataset))
            .sum()
    }

    /// Drop all cached data everywhere (cold-start experiments).
    pub fn evict_all(&self) {
        for w in &self.workers {
            w.evict_all();
        }
    }

    /// Execute a dataset-producing operation on every worker in parallel.
    fn on_all_workers(
        &self,
        f: impl Fn(&Arc<Worker>) -> EngineResult<()> + Send + Sync,
    ) -> EngineResult<()> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = self.workers.iter().map(|w| scope.spawn(|| f(w))).collect();
            let mut result = Ok(());
            for h in handles {
                let r = h.join().expect("worker op panicked");
                if result.is_ok() {
                    result = r;
                }
            }
            result
        })
    }

    /// Load a dataset on every worker.
    pub fn load(&self, id: DatasetId, spec: &SourceSpec) -> EngineResult<()> {
        self.on_all_workers(|w| w.load(id, spec))
    }

    /// Load on one worker only (lineage replay).
    pub fn load_on(&self, worker: usize, id: DatasetId, spec: &SourceSpec) -> EngineResult<()> {
        self.workers[worker].load(id, spec)
    }

    /// Filter a dataset on every worker.
    pub fn filter(&self, id: DatasetId, parent: DatasetId, p: &Predicate) -> EngineResult<()> {
        self.on_all_workers(|w| w.filter(id, parent, p))
    }

    /// Filter on one worker only (lineage replay).
    pub fn filter_on(
        &self,
        worker: usize,
        id: DatasetId,
        parent: DatasetId,
        p: &Predicate,
    ) -> EngineResult<()> {
        self.workers[worker].filter(id, parent, p)
    }

    /// Map a dataset on every worker.
    pub fn map(
        &self,
        id: DatasetId,
        parent: DatasetId,
        udf: &str,
        new_column: &str,
    ) -> EngineResult<()> {
        self.on_all_workers(|w| w.map(id, parent, udf, new_column))
    }

    /// Map on one worker only (lineage replay).
    pub fn map_on(
        &self,
        worker: usize,
        id: DatasetId,
        parent: DatasetId,
        udf: &str,
        new_column: &str,
    ) -> EngineResult<()> {
        self.workers[worker].map(id, parent, udf, new_column)
    }

    /// Run an erased sketch over `dataset` as one execution tree.
    pub fn run_erased(
        &self,
        dataset: DatasetId,
        sketch: &Arc<dyn ErasedSketch>,
        opts: &QueryOptions,
    ) -> EngineResult<QueryOutcome> {
        let started = Instant::now();
        let (tx, rx) = link_pair(self.cfg.link);
        // Internal token: stops this tree's outstanding work on errors
        // without cancelling the caller's query (which may retry after
        // recovery). Leaves observe both tokens.
        let tree_cancel = CancellationToken::new();

        // Launch one aggregation node per worker.
        let mut aggregators = Vec::with_capacity(self.workers.len());
        for worker in &self.workers {
            let worker = worker.clone();
            let sketch = sketch.clone();
            let tx = tx.clone();
            let cancel = opts.cancel.clone();
            let tree = tree_cancel.clone();
            let seed = opts.seed;
            let batch = self.cfg.batch_interval;
            let cache_key = opts.cache_key;
            let grain = self.cfg.leaf_grain_rows;
            aggregators.push(std::thread::spawn(move || {
                aggregate_worker(
                    worker, sketch, dataset, seed, cancel, tree, tx, batch, cache_key, grain,
                );
            }));
        }
        drop(tx);

        // Root merge loop.
        let n = self.workers.len();
        let mut latest: Vec<Option<Bytes>> = vec![None; n];
        let mut done = vec![0u64; n];
        let mut total = vec![0u64; n];
        let mut finals = 0usize;
        let mut first_partial = None;
        let mut partials = 0usize;
        let mut error: Option<EngineError> = None;

        while finals < n && error.is_none() {
            if opts.cancel.is_cancelled() {
                break;
            }
            let frame = match rx.recv_timeout(Duration::from_millis(50))? {
                Some(f) => f,
                None => continue,
            };
            let msg = WorkerMsg::decode(frame)?;
            let w = msg.worker as usize;
            match msg.payload {
                MsgPayload::Summary(bytes) => {
                    latest[w] = Some(Bytes::from(bytes));
                    done[w] = msg.work_done;
                    total[w] = msg.work_total;
                    if msg.is_final {
                        finals += 1;
                    }
                    // Progressive delivery to the client.
                    if let Some(cb) = &opts.on_partial {
                        let merged = self.fold(sketch, &latest)?;
                        // Workers that have not reported yet contribute an
                        // estimated work total (the mean of reporting
                        // workers) so early progress is not overstated.
                        let reported: Vec<u64> = total.iter().copied().filter(|&t| t > 0).collect();
                        let mean = (reported.iter().sum::<u64>() as f64
                            / reported.len().max(1) as f64)
                            .max(1.0);
                        let total_work: f64 = total
                            .iter()
                            .map(|&t| if t == 0 { mean } else { t as f64 })
                            .sum();
                        let fraction = if total_work == 0.0 {
                            0.0
                        } else {
                            (done.iter().sum::<u64>() as f64 / total_work).min(1.0)
                        };
                        if first_partial.is_none() {
                            first_partial = Some(started.elapsed());
                        }
                        partials += 1;
                        cb(&Partial {
                            fraction,
                            work_done: done.iter().sum(),
                            work_total: total.iter().sum(),
                            summary: merged,
                        });
                    } else if first_partial.is_none() {
                        first_partial = Some(started.elapsed());
                    }
                }
                MsgPayload::DatasetMissing(d) => {
                    error = Some(EngineError::DatasetMissing {
                        worker: w,
                        dataset: DatasetId(d),
                    });
                }
                MsgPayload::WorkerDown => error = Some(EngineError::WorkerDown(w)),
                MsgPayload::Error(e) => error = Some(EngineError::Sketch(e)),
            }
        }

        // Stop outstanding work, then release aggregator threads.
        if error.is_some() || opts.cancel.is_cancelled() {
            tree_cancel.cancel();
        }
        let root_bytes = rx.metrics().bytes();
        let root_messages = rx.metrics().messages();
        drop(rx);
        for a in aggregators {
            let _ = a.join();
        }
        if let Some(e) = error {
            return Err(e);
        }

        let merged = self.fold(sketch, &latest)?;
        Ok(QueryOutcome {
            bytes: merged,
            duration: started.elapsed(),
            root_bytes,
            root_messages,
            first_partial,
            partials,
        })
    }

    /// Fold per-worker partials with the sketch's merge, starting from its
    /// identity.
    fn fold(
        &self,
        sketch: &Arc<dyn ErasedSketch>,
        latest: &[Option<Bytes>],
    ) -> EngineResult<Bytes> {
        let mut acc = sketch.identity_bytes();
        for slot in latest.iter().flatten() {
            acc = sketch.merge_bytes(&acc, slot)?;
        }
        Ok(acc)
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cluster({} workers)", self.workers.len())
    }
}

/// One sub-task completion flowing from a pool thread to the aggregation
/// node: which partition, where its range started (the fold key), how many
/// work units it covered, and the summary bytes (or `None` if skipped by
/// cancellation).
struct LeafMsg {
    partition: u32,
    lo: usize,
    work: u64,
    result: EngineResult<Option<Bytes>>,
}

/// Execute one leaf sub-task. While the piece is larger than `grain`
/// selected rows, peel off balanced right halves onto the pool — they land
/// on this thread's deque, where idle siblings steal them — then summarize
/// the remaining leftmost piece and report it keyed by range start.
///
/// `bonus` is 1 on the initial per-partition task (the extra work unit
/// that makes empty partitions observable) and 0 on split-off halves;
/// weights are conserved exactly across splits, so the aggregation node
/// detects completion when reported work matches the precomputed total.
#[allow(clippy::too_many_arguments)]
fn run_leaf_task(
    worker: Arc<Worker>,
    view: hillview_sketch::TableView,
    sketch: Arc<dyn ErasedSketch>,
    partition: u32,
    lo: usize,
    hi: usize,
    weight: usize,
    bonus: u64,
    grain: usize,
    seed: u64,
    cancel: CancellationToken,
    tree: CancellationToken,
    tx: crossbeam::channel::Sender<LeafMsg>,
) {
    use hillview_columnar::SplittableSelection;

    worker.note_leaf_task();
    // Cancellation skips pieces not yet started (§5.3) — including any
    // splitting they would have done.
    let cancelled = cancel.is_cancelled() || tree.is_cancelled();
    let (mut lo, mut hi, mut weight) = (lo, hi, weight);
    if !cancelled {
        let mut part = SplittableSelection::with_weight(view.members(), lo, hi, weight);
        while part.weight() > grain {
            let Some((left, right)) = part.split() else {
                break;
            };
            let (rlo, rhi) = right.bounds();
            let rweight = right.weight();
            let w2 = worker.clone();
            let v2 = view.clone();
            let s2 = sketch.clone();
            let c2 = cancel.clone();
            let t2 = tree.clone();
            let tx2 = tx.clone();
            worker.pool().submit(move || {
                run_leaf_task(
                    w2, v2, s2, partition, rlo, rhi, rweight, 0, grain, seed, c2, t2, tx2,
                );
            });
            part = left;
        }
        (lo, hi) = part.bounds();
        weight = part.weight();
    }
    let result = if cancelled {
        Ok(None)
    } else if lo == 0 && hi >= view.members().universe() {
        // Unsplit partition: the plain summarize path, exactly as before.
        sketch.summarize_to_bytes(&view, seed).map(Some)
    } else {
        sketch
            .summarize_range_to_bytes(&view, lo, hi, seed)
            .map(Some)
    };
    let _ = tx.send(LeafMsg {
        partition,
        lo,
        work: weight as u64 + bonus,
        result,
    });
}

/// The aggregation-node body for one worker (paper Fig. 1): fan leaf tasks
/// (splitting oversized partitions into sub-range tasks), merge
/// completions, ship batched partials to the root.
#[allow(clippy::too_many_arguments)]
fn aggregate_worker(
    worker: Arc<Worker>,
    sketch: Arc<dyn ErasedSketch>,
    dataset: DatasetId,
    seed: u64,
    cancel: CancellationToken,
    tree_cancel: CancellationToken,
    tx: LinkSender,
    batch: Duration,
    cache_key: Option<u64>,
    grain: usize,
) {
    let wid = worker.id as u32;
    let send = |msg: WorkerMsg| {
        let _ = tx.send(msg.encode());
    };

    if !worker.is_alive() {
        send(WorkerMsg {
            worker: wid,
            work_done: 0,
            work_total: 0,
            is_final: true,
            payload: MsgPayload::WorkerDown,
        });
        return;
    }

    let views = match worker.partitions(dataset) {
        Some(v) => v,
        None => {
            send(WorkerMsg {
                worker: wid,
                work_done: 0,
                work_total: 0,
                is_final: true,
                payload: MsgPayload::DatasetMissing(dataset.0),
            });
            return;
        }
    };

    if views.is_empty() {
        send(WorkerMsg {
            worker: wid,
            work_done: 0,
            work_total: 0,
            is_final: true,
            payload: MsgPayload::Summary(sketch.identity_bytes().to_vec()),
        });
        return;
    }

    // Work units: selected rows plus one per partition (the +1 keeps empty
    // partitions observable). Split halves conserve their weight exactly,
    // so completion is "reported work == precomputed total".
    let total_work: u64 = views.iter().map(|v| v.len() as u64 + 1).sum();

    // Computation-cache fast path (paper §5.4). Reports the same
    // row-weighted work total as the compute path would, so the root's
    // progress fraction never mixes incomparable units across workers.
    if let Some(key) = cache_key {
        if let Some(hit) = worker.cache_get(dataset, key) {
            send(WorkerMsg {
                worker: wid,
                work_done: total_work,
                work_total: total_work,
                is_final: true,
                payload: MsgPayload::Summary(hit.to_vec()),
            });
            return;
        }
    }
    // Non-splittable sketches run one task per partition, as before.
    let grain = if sketch.splittable() {
        grain.max(1)
    } else {
        usize::MAX
    };

    let (leaf_tx, leaf_rx) = crossbeam::channel::unbounded::<LeafMsg>();
    for (i, view) in views.iter().enumerate() {
        // Leaf seed mixes the query seed with worker and partition indexes
        // so samples are independent yet reproducible (§5.8). Sub-tasks of
        // one partition share its seed: each draws the partition-wide
        // sample and clips it to its range.
        let leaf_seed = seed
            ^ (worker.id as u64).wrapping_mul(0x9E3779B97F4A7C15)
            ^ (i as u64).wrapping_mul(0xC2B2AE3D27D4EB4F);
        let universe = view.members().universe();
        let w2 = worker.clone();
        let v2 = view.clone();
        let s2 = sketch.clone();
        let c2 = cancel.clone();
        let t2 = tree_cancel.clone();
        let tx2 = leaf_tx.clone();
        let weight = view.len();
        worker.pool().submit(move || {
            run_leaf_task(
                w2, v2, s2, i as u32, 0, universe, weight, 1, grain, leaf_seed, c2, t2, tx2,
            );
        });
    }
    drop(leaf_tx);

    // Merge completions; propagate partials every `batch`. The running
    // `acc` merges in completion order and only feeds the transient
    // partial stream; the final summary is folded deterministically below.
    let mut pieces: Vec<(u32, usize, Bytes)> = Vec::new();
    let mut acc = sketch.identity_bytes();
    let mut done_work = 0u64;
    let mut skipped = 0u64;
    let mut dirty = false;
    while done_work < total_work {
        match leaf_rx.recv_timeout(batch) {
            Ok(msg) => {
                match msg.result {
                    Ok(Some(bytes)) => {
                        match sketch.merge_bytes(&acc, &bytes) {
                            Ok(merged) => acc = merged,
                            Err(e) => {
                                send(WorkerMsg {
                                    worker: wid,
                                    work_done: done_work,
                                    work_total: total_work,
                                    is_final: true,
                                    payload: MsgPayload::Error(e.to_string()),
                                });
                                return;
                            }
                        }
                        pieces.push((msg.partition, msg.lo, bytes));
                        dirty = true;
                    }
                    // Cancelled piece: counts as completed-with-nothing.
                    Ok(None) => skipped += 1,
                    Err(e) => {
                        send(WorkerMsg {
                            worker: wid,
                            work_done: done_work,
                            work_total: total_work,
                            is_final: true,
                            payload: MsgPayload::Error(e.to_string()),
                        });
                        return;
                    }
                }
                done_work += msg.work;
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                if dirty {
                    send(WorkerMsg {
                        worker: wid,
                        work_done: done_work,
                        work_total: total_work,
                        is_final: false,
                        payload: MsgPayload::Summary(acc.to_vec()),
                    });
                    dirty = false;
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
        }
    }

    // Deterministic final fold: partials sorted by (partition, range
    // start). The piece set is a pure function of (membership, grain), so
    // this fold — unlike the completion-order `acc` — is bit-identical
    // across thread counts, steal orders, and replays, even for
    // order-sensitive merges (Misra-Gries) and floating-point sums.
    pieces.sort_by_key(|&(p, lo, _)| (p, lo));
    let mut final_acc = sketch.identity_bytes();
    for (_, _, bytes) in &pieces {
        match sketch.merge_bytes(&final_acc, bytes) {
            Ok(merged) => final_acc = merged,
            Err(e) => {
                send(WorkerMsg {
                    worker: wid,
                    work_done: done_work,
                    work_total: total_work,
                    is_final: true,
                    payload: MsgPayload::Error(e.to_string()),
                });
                return;
            }
        }
    }

    // Cache only complete summaries: a tree cancelled mid-flight (user
    // cancel or a sibling worker's failure) leaves the fold partial, and
    // caching it would silently corrupt every later query (§5.4 caches
    // must hold deterministic, complete results).
    if let Some(key) = cache_key {
        if skipped == 0 && !cancel.is_cancelled() && !tree_cancel.is_cancelled() {
            worker.cache_put(dataset, key, final_acc.clone());
        }
    }
    send(WorkerMsg {
        worker: wid,
        work_done: done_work,
        work_total: total_work,
        is_final: true,
        payload: MsgPayload::Summary(final_acc.to_vec()),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::FnSource;
    use crate::erased::erase;
    use hillview_columnar::column::{Column, I64Column};
    use hillview_columnar::{ColumnKind, Table};
    use hillview_sketch::count::{CountSketch, CountSummary};
    use hillview_sketch::histogram::{HistogramSketch, HistogramSummary};
    use hillview_sketch::BucketSpec;

    fn cluster(workers: usize) -> Arc<Cluster> {
        let mut sources = SourceRegistry::new();
        sources.register(Arc::new(FnSource::new("nums", |w, _n, _mp, _snap| {
            let t = Table::builder()
                .column(
                    "X",
                    ColumnKind::Int,
                    Column::Int(I64Column::from_options(
                        (0..10_000).map(|i| Some((i + w as i64 * 10_000) % 100)),
                    )),
                )
                .build()
                .unwrap();
            Ok(vec![t])
        })));
        let mut cfg = ClusterConfig::test();
        cfg.workers = workers;
        Cluster::new(cfg, sources, UdfRegistry::with_builtins())
    }

    fn load(c: &Cluster) -> DatasetId {
        let id = DatasetId(1);
        c.load(
            id,
            &SourceSpec {
                source: Arc::from("nums"),
                snapshot: 0,
            },
        )
        .unwrap();
        id
    }

    #[test]
    fn count_query_spans_workers() {
        let c = cluster(3);
        let ds = load(&c);
        let outcome = c
            .run_erased(ds, &erase(CountSketch::rows()), &QueryOptions::default())
            .unwrap();
        let s = CountSummary::from_bytes(outcome.bytes).unwrap();
        assert_eq!(s.rows, 30_000);
        assert!(outcome.root_bytes > 0);
        assert!(outcome.root_messages >= 3, "≥1 message per worker");
    }

    #[test]
    fn histogram_query_merges_across_partitions() {
        let c = cluster(2);
        let ds = load(&c);
        let sk = HistogramSketch::streaming("X", BucketSpec::numeric(0.0, 100.0, 10));
        let outcome = c
            .run_erased(ds, &erase(sk), &QueryOptions::default())
            .unwrap();
        let s = HistogramSummary::from_bytes(outcome.bytes).unwrap();
        assert_eq!(s.buckets, vec![2000; 10]);
        assert_eq!(s.rows_inspected, 20_000);
    }

    #[test]
    fn partial_results_stream_to_client() {
        let c = cluster(2);
        let ds = load(&c);
        let seen = Arc::new(parking_lot::Mutex::new(Vec::<f64>::new()));
        let seen2 = seen.clone();
        let opts = QueryOptions {
            on_partial: Some(Arc::new(move |p: &Partial| {
                seen2.lock().push(p.fraction);
            })),
            ..Default::default()
        };
        let outcome = c
            .run_erased(ds, &erase(CountSketch::rows()), &opts)
            .unwrap();
        let fractions = seen.lock().clone();
        assert!(!fractions.is_empty(), "client saw partial updates");
        assert!(outcome.first_partial.is_some());
        assert!(
            fractions.windows(2).all(|w| w[0] <= w[1] + 1e-9),
            "monotone progress: {fractions:?}"
        );
        assert!((fractions.last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missing_dataset_reported_with_worker() {
        let c = cluster(2);
        let e = c
            .run_erased(
                DatasetId(99),
                &erase(CountSketch::rows()),
                &QueryOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(e, EngineError::DatasetMissing { .. }));
    }

    #[test]
    fn dead_worker_reported() {
        let c = cluster(2);
        let ds = load(&c);
        c.worker(1).kill();
        let e = c
            .run_erased(ds, &erase(CountSketch::rows()), &QueryOptions::default())
            .unwrap_err();
        assert_eq!(e, EngineError::WorkerDown(1));
    }

    #[test]
    fn sketch_error_propagates_from_leaves() {
        let c = cluster(2);
        let ds = load(&c);
        let e = c
            .run_erased(
                ds,
                &erase(CountSketch::of_column("Nope")),
                &QueryOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(e, EngineError::Sketch(_)));
    }

    #[test]
    fn computation_cache_serves_second_query() {
        let c = cluster(2);
        let ds = load(&c);
        let opts = QueryOptions {
            cache_key: Some(77),
            ..Default::default()
        };
        let a = c
            .run_erased(ds, &erase(CountSketch::rows()), &opts)
            .unwrap();
        let hits_before: u64 = (0..2).map(|i| c.worker(i).cache_hits()).sum();
        let b = c
            .run_erased(ds, &erase(CountSketch::rows()), &opts)
            .unwrap();
        let hits_after: u64 = (0..2).map(|i| c.worker(i).cache_hits()).sum();
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(hits_after - hits_before, 2, "both workers hit their cache");
    }

    #[test]
    fn failed_tree_never_caches_partial_summaries() {
        // Regression: a worker failure cancels the tree; surviving workers
        // skip leaves and must NOT cache their incomplete summaries.
        let c = cluster(2);
        let ds = load(&c);
        c.worker(0).kill();
        let opts = QueryOptions {
            cache_key: Some(123),
            ..Default::default()
        };
        let _ = c.run_erased(ds, &erase(CountSketch::rows()), &opts);
        c.worker(0).restart();
        c.worker(0)
            .load(
                ds,
                &SourceSpec {
                    source: Arc::from("nums"),
                    snapshot: 0,
                },
            )
            .unwrap();
        let outcome = c
            .run_erased(ds, &erase(CountSketch::rows()), &opts)
            .unwrap();
        let s = CountSummary::from_bytes(outcome.bytes).unwrap();
        assert_eq!(s.rows, 20_000, "no stale partial summary served");
    }

    #[test]
    fn cancellation_returns_partial_cleanly() {
        let c = cluster(2);
        let ds = load(&c);
        let cancel = CancellationToken::new();
        cancel.cancel(); // cancel before starting: all leaves skipped
        let opts = QueryOptions {
            cancel: cancel.clone(),
            ..Default::default()
        };
        let outcome = c.run_erased(ds, &erase(CountSketch::rows()), &opts);
        // Either an identity result or an early return; never a hang/panic.
        if let Ok(o) = outcome {
            let s = CountSummary::from_bytes(o.bytes).unwrap();
            assert!(s.rows <= 30_000);
        }
    }

    #[test]
    fn deterministic_across_runs_with_same_seed() {
        let c = cluster(2);
        let ds = load(&c);
        let sk = HistogramSketch::sampled("X", BucketSpec::numeric(0.0, 100.0, 10), 0.2);
        let opts = QueryOptions {
            seed: 42,
            ..Default::default()
        };
        let a = c.run_erased(ds, &erase(sk.clone()), &opts).unwrap();
        let b = c.run_erased(ds, &erase(sk), &opts).unwrap();
        assert_eq!(a.bytes, b.bytes, "same seed ⇒ identical summaries");
    }

    /// Cluster with an explicit thread count and leaf grain, holding one
    /// worker with a 40k-row low-cardinality dataset (8 micropartitions).
    fn split_cluster(threads: usize, grain: usize) -> Arc<Cluster> {
        let mut sources = SourceRegistry::new();
        sources.register(Arc::new(FnSource::new("skewed", |_w, _n, _mp, _snap| {
            let t = Table::builder()
                .column(
                    "X",
                    ColumnKind::Int,
                    Column::Int(I64Column::from_options(
                        (0..40_000).map(|i| Some((i * 7919) % 100)),
                    )),
                )
                .build()
                .unwrap();
            Ok(vec![t])
        })));
        let cfg = ClusterConfig {
            workers: 1,
            threads_per_worker: threads,
            micropartition_rows: 5_000,
            batch_interval: Duration::from_millis(2),
            link: LinkConfig::instant(),
            leaf_grain_rows: grain,
        };
        Cluster::new(cfg, sources, UdfRegistry::with_builtins())
    }

    fn load_skewed(c: &Cluster) -> DatasetId {
        let id = DatasetId(1);
        c.load(
            id,
            &SourceSpec {
                source: Arc::from("skewed"),
                snapshot: 0,
            },
        )
        .unwrap();
        id
    }

    #[test]
    fn split_execution_matches_unsplit_bytes_for_exact_sketches() {
        // Tiny grain (forces ~8 sub-tasks per partition) vs huge grain (no
        // splitting): integer-merge sketches must produce identical bytes.
        use hillview_sketch::heavy::SampledHeavyHittersSketch;
        let split = split_cluster(4, 512);
        let unsplit = split_cluster(2, usize::MAX);
        let (da, db) = (load_skewed(&split), load_skewed(&unsplit));
        let sketches: Vec<Arc<dyn crate::erased::ErasedSketch>> = vec![
            erase(HistogramSketch::streaming(
                "X",
                BucketSpec::numeric(0.0, 100.0, 10),
            )),
            erase(HistogramSketch::sampled(
                "X",
                BucketSpec::numeric(0.0, 100.0, 10),
                0.25,
            )),
            erase(CountSketch::of_column("X")),
            erase(SampledHeavyHittersSketch::new("X", 4, 0.5)),
        ];
        for sk in sketches {
            let opts = QueryOptions {
                seed: 99,
                ..Default::default()
            };
            let a = split.run_erased(da, &sk, &opts).unwrap();
            let b = unsplit.run_erased(db, &sk, &opts).unwrap();
            assert_eq!(a.bytes, b.bytes, "sketch {}", sk.name());
        }
        // The split cluster really did split: more leaf tasks than the 8
        // partitions per query.
        assert!(
            split.worker(0).leaf_tasks_executed() > 4 * 8,
            "leaf tasks {} show no intra-partition splitting",
            split.worker(0).leaf_tasks_executed()
        );
        assert_eq!(unsplit.worker(0).leaf_tasks_executed(), 4 * 8);
    }

    #[test]
    fn split_results_independent_of_thread_count() {
        // Order-sensitive (Misra-Gries) and floating-point (moments)
        // sketches: the split plan and range-ordered fold are fixed, so
        // 1-thread and 4-thread execution produce identical bytes.
        use hillview_sketch::heavy::MisraGriesSketch;
        use hillview_sketch::moments::MomentsSketch;
        let one = split_cluster(1, 700);
        let four = split_cluster(4, 700);
        let (da, db) = (load_skewed(&one), load_skewed(&four));
        let sketches: Vec<Arc<dyn crate::erased::ErasedSketch>> = vec![
            erase(MisraGriesSketch::new("X", 5)),
            erase(MomentsSketch::new("X", 4)),
            erase(HistogramSketch::streaming(
                "X",
                BucketSpec::numeric(0.0, 100.0, 16),
            )),
        ];
        for sk in sketches {
            let opts = QueryOptions::default();
            let a = one.run_erased(da, &sk, &opts).unwrap();
            let b = four.run_erased(db, &sk, &opts).unwrap();
            assert_eq!(a.bytes, b.bytes, "sketch {}", sk.name());
            // Re-running on the same cluster is also stable.
            let a2 = one.run_erased(da, &sk, &opts).unwrap();
            assert_eq!(a.bytes, a2.bytes, "sketch {} re-run", sk.name());
        }
    }

    #[test]
    fn split_progress_reports_row_weighted_work() {
        let c = split_cluster(2, 512);
        let ds = load_skewed(&c);
        let seen = Arc::new(parking_lot::Mutex::new(Vec::<(u64, u64)>::new()));
        let seen2 = seen.clone();
        let opts = QueryOptions {
            on_partial: Some(Arc::new(move |p: &Partial| {
                seen2.lock().push((p.work_done, p.work_total));
            })),
            ..Default::default()
        };
        let sk = erase(HistogramSketch::streaming(
            "X",
            BucketSpec::numeric(0.0, 100.0, 10),
        ));
        c.run_erased(ds, &sk, &opts).unwrap();
        let partials = seen.lock().clone();
        assert!(!partials.is_empty());
        let (done, total) = *partials.last().unwrap();
        // 40k rows + 8 partitions worth of work units.
        assert_eq!(total, 40_000 + 8);
        assert_eq!(done, total, "final partial reports complete work");
        assert!(
            partials.windows(2).all(|w| w[0].0 <= w[1].0),
            "work progress is monotone: {partials:?}"
        );
    }

    #[test]
    fn results_independent_of_worker_count() {
        // Partition-invariance: the same logical dataset spread over 1 vs 4
        // workers yields identical exact summaries.
        let mut sources = SourceRegistry::new();
        sources.register(Arc::new(FnSource::new("span", |w, n, _mp, _snap| {
            // 40k logical rows split contiguously across n workers.
            let per = 40_000 / n as i64;
            let lo = w as i64 * per;
            let t = Table::builder()
                .column(
                    "X",
                    ColumnKind::Int,
                    Column::Int(I64Column::from_options(
                        (lo..lo + per).map(|i| Some(i % 100)),
                    )),
                )
                .build()
                .unwrap();
            Ok(vec![t])
        })));
        let mut results = Vec::new();
        for workers in [1usize, 4] {
            let mut cfg = ClusterConfig::test();
            cfg.workers = workers;
            let c = Cluster::new(cfg, sources.clone(), UdfRegistry::new());
            let ds = DatasetId(5);
            c.load(
                ds,
                &SourceSpec {
                    source: Arc::from("span"),
                    snapshot: 0,
                },
            )
            .unwrap();
            let sk = HistogramSketch::streaming("X", BucketSpec::numeric(0.0, 100.0, 20));
            let o = c
                .run_erased(ds, &erase(sk), &QueryOptions::default())
                .unwrap();
            results.push(o.bytes);
        }
        assert_eq!(results[0], results[1]);
    }
}
